"""Legacy setup shim.

The execution environment ships an older setuptools without the
``wheel`` package, so PEP 517 editable installs fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` perform a
classic ``setup.py develop`` install.  All real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
