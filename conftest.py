"""Repo-root pytest configuration.

Defines the ``slow`` marker and the ``--skip-slow`` option at the
rootdir so they work for every invocation — the tier-1 suite at the
repo root (``python -m pytest -x -q --skip-slow``, what CI runs) as
well as targeted runs inside ``benchmarks/``.
"""

from __future__ import annotations

import pytest


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: heavyweight benchmark (deselect with -m 'not slow' or --skip-slow)",
    )


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--skip-slow", action="store_true", default=False,
        help="skip benchmarks marked slow",
    )


def pytest_collection_modifyitems(config, items) -> None:
    if not config.getoption("--skip-slow"):
        return
    skip = pytest.mark.skip(reason="--skip-slow given")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)
