"""Common result type and registry for baseline algorithms.

Every baseline exposes the same signature::

    baseline(graph, *, seed=None, **kwargs) -> BaselineResult

so the benchmark harness can sweep them uniformly.  All results carry
the number of LOCAL rounds under the same accounting rules as the main
solver (sequential stages add, parallel stages take the max, primitives
report simulated rounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import networkx as nx

from repro.graphs.edges import Edge


@dataclass
class BaselineResult:
    """Outcome of a baseline run.

    Attributes
    ----------
    name:
        Algorithm name (table row label).
    coloring:
        Edge -> color (palette ``{1, ..., 2Δ-1}`` unless noted).
    rounds:
        LOCAL rounds under the library's accounting rules.
    palette_size:
        Size of the palette the algorithm promises (``2Δ-1``).
    details:
        Algorithm-specific observables (e.g. Luby's trial count,
        Linial's intermediate palette).
    """

    name: str
    coloring: dict[Edge, int]
    rounds: int
    palette_size: int
    details: dict[str, object] = field(default_factory=dict)


#: Registry: name -> callable(graph, *, seed) -> BaselineResult
_REGISTRY: dict[str, Callable[..., BaselineResult]] = {}


def register(name: str):
    """Class of decorators adding a baseline to the registry."""

    def decorator(func: Callable[..., BaselineResult]):
        _REGISTRY[name] = func
        return func

    return decorator


def all_baselines() -> dict[str, Callable[..., BaselineResult]]:
    """Return the registered baselines (import side effects included)."""
    # Importing the modules populates the registry.
    from repro.baselines import (  # noqa: F401  (import for side effects)
        greedy_sequential,
        kuhn_soda20,
        kuhn_wattenhofer,
        panconesi_rizzi,
        linial_greedy,
        randomized_luby,
    )

    return dict(_REGISTRY)


def run_baseline(name: str, graph: nx.Graph, *, seed: int | None = None, **kwargs) -> BaselineResult:
    """Run a registered baseline by name."""
    registry = all_baselines()
    if name not in registry:
        raise KeyError(f"unknown baseline {name!r}; have {sorted(registry)}")
    return registry[name](graph, seed=seed, **kwargs)
