"""Common result type and registry for baseline algorithms.

Every baseline exposes the same signature::

    baseline(graph, *, seed=None, **kwargs) -> BaselineResult

so the benchmark harness can sweep them uniformly.  All results carry
the number of LOCAL rounds under the same accounting rules as the main
solver (sequential stages add, parallel stages take the max, primitives
report simulated rounds).

This per-kind registry is wrapped by the unified algorithm registry in
:mod:`repro.api.registry`, which exposes the baselines *and* the paper
solver behind one interface — new code should go through that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import networkx as nx

from repro.results import RunResult


@dataclass
class BaselineResult(RunResult):
    """Outcome of a baseline run.

    A :class:`repro.results.RunResult` specialisation kept as a named
    class so existing ``from repro.baselines.registry import
    BaselineResult`` imports (and isinstance checks) continue to work.
    Baselines populate ``name``, ``coloring``, ``rounds``,
    ``palette_size`` and ``details``; see the base class for field
    semantics.
    """


#: Registry: name -> callable(graph, *, seed) -> BaselineResult
_REGISTRY: dict[str, Callable[..., BaselineResult]] = {}


def register(name: str):
    """Class of decorators adding a baseline to the registry."""

    def decorator(func: Callable[..., BaselineResult]):
        _REGISTRY[name] = func
        return func

    return decorator


def all_baselines() -> dict[str, Callable[..., BaselineResult]]:
    """Return the registered baselines (import side effects included)."""
    # Importing the modules populates the registry.
    from repro.baselines import (  # noqa: F401  (import for side effects)
        greedy_sequential,
        kuhn_soda20,
        kuhn_wattenhofer,
        panconesi_rizzi,
        linial_greedy,
        randomized_luby,
    )

    return dict(_REGISTRY)


def run_baseline(name: str, graph: nx.Graph, *, seed: int | None = None, **kwargs) -> BaselineResult:
    """Run a registered baseline by name."""
    registry = all_baselines()
    if name not in registry:
        raise KeyError(f"unknown baseline {name!r}; have {sorted(registry)}")
    return registry[name](graph, seed=seed, **kwargs)
