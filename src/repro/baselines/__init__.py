"""Baseline edge coloring algorithms the paper positions itself against.

Each baseline is implemented on the same substrate (same graphs, same
initial colorings, same ledger-based round accounting), producing
``(2Δ-1)``-edge colorings (or ``(deg+1)``-list colorings) that pass the
same validators, so round counts are directly comparable:

=====================  =============================  ======================
module                 algorithm                      round bound
=====================  =============================  ======================
``greedy_sequential``  centralized greedy             (correctness reference)
``linial_greedy``      Linial + class sweep           ``O(Δ̄² + log* n)`` [Lin87]
``kuhn_wattenhofer``   Linial + KW reduction          ``O(Δ̄ log Δ̄ + log* n)`` [SV93, KW06]
``kuhn_soda20``        recursion with constant p      ``2^{O(√log Δ̄)}``-style [Kuh20]
``panconesi_rizzi``    vertex-class domination        ``O(Δ)``-stage sweep [PR01]
``randomized_luby``    random trials                  ``O(log n)`` w.h.p. [ABI86, Lub86]
=====================  =============================  ======================

The RACE benchmark sweeps all of them plus the paper's algorithm over
Δ and reports measured rounds and structural counters.
"""

from repro.baselines.greedy_sequential import greedy_sequential_coloring
from repro.baselines.linial_greedy import linial_greedy_coloring
from repro.baselines.kuhn_wattenhofer import kuhn_wattenhofer_coloring
from repro.baselines.kuhn_soda20 import kuhn_soda20_coloring
from repro.baselines.panconesi_rizzi import panconesi_rizzi_coloring
from repro.baselines.randomized_luby import randomized_luby_coloring
from repro.baselines.registry import BaselineResult, all_baselines, run_baseline

__all__ = [
    "greedy_sequential_coloring",
    "linial_greedy_coloring",
    "kuhn_wattenhofer_coloring",
    "kuhn_soda20_coloring",
    "panconesi_rizzi_coloring",
    "randomized_luby_coloring",
    "BaselineResult",
    "all_baselines",
    "run_baseline",
]
