"""Centralized sequential greedy edge coloring.

The correctness reference: every edge has at most ``2Δ - 2`` neighbors,
so scanning edges in any order and picking the smallest free color from
``{1, ..., 2Δ - 1}`` always succeeds (the observation the paper opens
with).  It is *not* a distributed algorithm; its "round count" is the
number of edges, reported for scale only.
"""

from __future__ import annotations

import networkx as nx

from repro.baselines.registry import BaselineResult, register
from repro.coloring.lists import uniform_lists
from repro.coloring.palette import Palette
from repro.coloring.edge_coloring import PartialEdgeColoring
from repro.errors import AlgorithmInvariantError
from repro.graphs.edges import edge_set
from repro.graphs.properties import max_degree


@register("greedy_sequential")
def greedy_sequential_coloring(
    graph: nx.Graph, *, seed: int | None = None
) -> BaselineResult:
    """Color edges greedily in sorted order with ``2Δ - 1`` colors.

    ``seed`` is accepted for registry uniformity and ignored (the scan
    order is deterministic).
    """
    delta = max_degree(graph)
    palette = Palette.of_size(max(1, 2 * delta - 1))
    lists = uniform_lists(graph, palette)
    coloring = PartialEdgeColoring(graph, lists)
    for edge in edge_set(graph):
        residual = coloring.residual_list(edge)
        if not residual:  # pragma: no cover — 2Δ-1 always suffices
            raise AlgorithmInvariantError(
                f"greedy ran out of colors at {edge!r}"
            )
        coloring.assign(edge, min(residual))
    return BaselineResult(
        name="greedy_sequential",
        coloring=coloring.as_dict(),
        rounds=graph.number_of_edges(),
        palette_size=len(palette),
        details={"note": "centralized reference; rounds = edges scanned"},
    )
