"""The randomized ``O(log n)`` baseline [ABI86, Lub86 style].

The introduction's framing: a trivial randomized algorithm colors
edges in ``O(log n)`` rounds w.h.p. — each round, every uncolored edge
picks a uniformly random color from its residual list (``2Δ-1`` palette
minus neighbor-used colors) and keeps it if no conflicting neighbor
picked the same color this round.  A constant fraction of edges
survives each round in expectation, so ``O(log n)`` rounds suffice.

This is the only randomized algorithm in the library (the paper — and
everything else here — is deterministic); it exists to reproduce the
randomized-vs-deterministic gap the introduction discusses.
"""

from __future__ import annotations

import random

import networkx as nx

from repro.baselines.registry import BaselineResult, register
from repro.coloring.lists import uniform_lists
from repro.coloring.palette import Palette
from repro.coloring.edge_coloring import PartialEdgeColoring
from repro.errors import RoundLimitExceededError
from repro.graphs.properties import max_degree


@register("randomized_luby")
def randomized_luby_coloring(
    graph: nx.Graph,
    *,
    seed: int | None = None,
    max_rounds: int = 10_000,
) -> BaselineResult:
    """``(2Δ-1)``-edge coloring by random trials, ``O(log n)`` w.h.p."""
    rng = random.Random(0 if seed is None else seed)
    delta = max_degree(graph)
    palette = Palette.of_size(max(1, 2 * delta - 1))
    lists = uniform_lists(graph, palette)
    coloring = PartialEdgeColoring(graph, lists)

    rounds = 0
    while not coloring.is_complete():
        if rounds >= max_rounds:
            raise RoundLimitExceededError(
                f"randomized coloring did not finish in {max_rounds} rounds"
            )
        rounds += 1
        pending = coloring.uncolored_edges()
        proposals: dict = {}
        for edge in pending:
            residual = coloring.residual_list(edge)
            # Residual lists are never empty: (2Δ-1)-lists always
            # dominate deg(e)+1.
            proposals[edge] = rng.choice(sorted(residual))
        for edge in pending:
            color = proposals[edge]
            conflict = any(
                proposals.get(neighbor) == color
                for neighbor in coloring.neighbors(edge)
                if not coloring.is_colored(neighbor)
            )
            if not conflict:
                coloring.assign(edge, color)

    return BaselineResult(
        name="randomized_luby",
        coloring=coloring.as_dict(),
        rounds=rounds,
        palette_size=len(palette),
        details={"seed": seed, "note": "randomized; rounds are one sample"},
    )
