"""The ``O(Δ log Δ + log* n)`` baseline [SV93, KW06].

Linial's ``O(Δ̄²)``-edge coloring followed by the Kuhn-Wattenhofer
parallel color reduction down to ``Δ̄ + 1`` classes
(:func:`repro.primitives.color_reduction.kuhn_wattenhofer_reduction`),
then a greedy sweep over the ``Δ̄ + 1`` classes.  Total:
``O(log* n) + O(Δ̄ log Δ̄) + O(Δ̄)`` rounds — the strongest
linear-in-Δ̄-family baseline the paper cites (Panconesi-Rizzi's
``O(Δ + log* n)`` differs by the ``log Δ̄`` factor).
"""

from __future__ import annotations

import networkx as nx

from repro.baselines.registry import BaselineResult, register
from repro.coloring.lists import uniform_lists
from repro.coloring.palette import Palette
from repro.coloring.edge_coloring import PartialEdgeColoring
from repro.core.solver import compute_initial_edge_coloring
from repro.graphs.line_graph import line_graph_adjacency
from repro.graphs.properties import max_degree
from repro.primitives.color_reduction import kuhn_wattenhofer_reduction
from repro.primitives.greedy_class import greedy_by_classes


@register("kuhn_wattenhofer")
def kuhn_wattenhofer_coloring(
    graph: nx.Graph, *, seed: int | None = None
) -> BaselineResult:
    """``(2Δ-1)``-edge coloring in ``O(Δ̄ log Δ̄ + log* n)`` rounds."""
    delta = max_degree(graph)
    palette = Palette.of_size(max(1, 2 * delta - 1))
    lists = uniform_lists(graph, palette)
    coloring = PartialEdgeColoring(graph, lists)

    classes, class_palette, linial_rounds = compute_initial_edge_coloring(
        graph, seed=seed
    )
    adjacency = line_graph_adjacency(graph)
    kw_rounds = 0
    if adjacency:
        reduction = kuhn_wattenhofer_reduction(adjacency, classes)
        classes = reduction.colors
        class_palette = reduction.palette_size
        kw_rounds = reduction.rounds

    sweep = greedy_by_classes(coloring, classes, class_count=class_palette)
    return BaselineResult(
        name="kuhn_wattenhofer",
        coloring=coloring.as_dict(),
        rounds=linial_rounds + kw_rounds + sweep.rounds,
        palette_size=len(palette),
        details={
            "linial_rounds": linial_rounds,
            "kw_rounds": kw_rounds,
            "final_classes": class_palette,
            "sweep_rounds": sweep.rounds,
        },
    )
