"""The Kuhn [SODA'20]-style baseline: recursion with constant split arity.

Kuhn's SODA'20 algorithm — the state of the art this paper improves on
— solves list edge coloring in ``2^{O(√log Δ̄)} + O(log* n)`` rounds
using the same two ingredients (slack reduction via defective colorings
and list color space reduction), but with a *constant-factor* color
space split per level, giving ``Θ(log Δ̄)`` recursion levels instead of
``Θ(log log Δ̄)``.

We model it faithfully-in-spirit by running the shared recursive
machinery under :func:`repro.core.params.kuhn20_style_policy`
(``p = 2``, constant β), so the RACE and ABL-P benchmarks compare the
two recursion shapes on identical substrates — exactly the comparison
the paper's contribution section draws.
"""

from __future__ import annotations

import networkx as nx

from repro.baselines.registry import BaselineResult, register
from repro.core.params import kuhn20_style_policy
from repro.core.solver import solve_edge_coloring
from repro.graphs.properties import max_degree


@register("kuhn_soda20")
def kuhn_soda20_coloring(
    graph: nx.Graph, *, seed: int | None = None
) -> BaselineResult:
    """``(2Δ-1)``-edge coloring via the constant-arity recursion."""
    result = solve_edge_coloring(graph, policy=kuhn20_style_policy(), seed=seed)
    delta = max_degree(graph)
    return BaselineResult(
        name="kuhn_soda20",
        coloring=result.coloring,
        rounds=result.rounds,
        palette_size=max(1, 2 * delta - 1),
        details={
            "policy": result.policy_name,
            "initial_palette": result.initial_palette,
            "relaxed_invocations": result.stats.get("relaxed_invocations", 0),
        },
    )
