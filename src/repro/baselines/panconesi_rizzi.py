"""A Panconesi-Rizzi-style ``O(Δ)``-stage edge coloring baseline.

Panconesi and Rizzi [PR01] obtain ``(2Δ-1)``-edge coloring in
``O(Δ + log* n)`` rounds; the paper cites this as the classic
linear-in-Δ bound.  This module implements the *stage structure* of
that family of algorithms on our substrate:

1. compute a proper ``(Δ+1)``-vertex coloring (here: Linial on ``G``
   followed by the Kuhn-Wattenhofer reduction — ``O(log* n + Δ log Δ)``
   rounds on our substrate; PR's own vertex-coloring subroutine saves
   the ``log Δ`` factor);
2. sweep the vertex classes: in stage ``k`` every class-``k`` node
   *dominates* its still-uncolored incident edges and proposes distinct
   colors that are free at both endpoints (at most ``2Δ - 2``
   constraints against a ``2Δ - 1`` palette, so a proposal always
   exists);
3. two same-stage dominators may propose the same color at a shared
   neighbor ``w``; ``w`` accepts the smallest-ID proposer per color and
   the losers retry in the next sub-round.  Every rejection coincides
   with an accepted coloring at ``w``, so a stage finishes after at
   most ``Δ`` sub-rounds (measured: almost always 1-2).

The measured round count is reported honestly: this implementation's
worst case is ``O(Δ log Δ + log* n)`` because of the vertex-coloring
substrate, with the PR stage sweep contributing ``Θ(Δ)`` stages.
"""

from __future__ import annotations

import networkx as nx

from repro.baselines.registry import BaselineResult, register
from repro.coloring.edge_coloring import PartialEdgeColoring
from repro.coloring.lists import uniform_lists
from repro.coloring.palette import Palette
from repro.errors import AlgorithmInvariantError
from repro.graphs.edges import edge_key, other_endpoint
from repro.graphs.properties import assign_unique_ids, max_degree
from repro.primitives.color_reduction import kuhn_wattenhofer_reduction
from repro.primitives.linial import linial_reduce
from repro.utils.logstar import log_star


def _vertex_coloring(graph: nx.Graph, seed: int | None):
    """Proper (Δ+1)-vertex coloring via Linial + KW; returns rounds."""
    adjacency = {node: sorted(graph.neighbors(node), key=repr) for node in graph.nodes()}
    ids = assign_unique_ids(graph, seed=seed)
    linial = linial_reduce(adjacency, ids)
    colors, rounds = linial.colors, linial.rounds
    degree = max_degree(graph)
    if linial.palette_size > degree + 1:
        reduction = kuhn_wattenhofer_reduction(adjacency, colors)
        colors = reduction.colors
        rounds += reduction.rounds
    return colors, rounds


@register("panconesi_rizzi")
def panconesi_rizzi_coloring(
    graph: nx.Graph, *, seed: int | None = None
) -> BaselineResult:
    """``(2Δ-1)``-edge coloring via PR-style vertex-class domination."""
    delta = max_degree(graph)
    palette = Palette.of_size(max(1, 2 * delta - 1))
    lists = uniform_lists(graph, palette)
    coloring = PartialEdgeColoring(graph, lists)
    ids = assign_unique_ids(graph, seed=seed)

    if graph.number_of_edges() == 0:
        return BaselineResult(
            name="panconesi_rizzi", coloring={}, rounds=0,
            palette_size=len(palette),
        )

    vertex_colors, setup_rounds = _vertex_coloring(graph, seed)
    class_count = max(vertex_colors.values()) + 1

    sweep_rounds = 0
    max_sub_rounds = 0
    for stage in range(class_count):
        dominators = sorted(
            (node for node, c in vertex_colors.items() if c == stage),
            key=lambda node: ids[node],
        )
        pending = {
            node: [
                edge_key(node, neighbor)
                for neighbor in graph.neighbors(node)
                if not coloring.is_colored(edge_key(node, neighbor))
            ]
            for node in dominators
        }
        sub_rounds = 0
        while any(pending.values()):
            sub_rounds += 1
            if sub_rounds > max(4, delta + 2):  # pragma: no cover
                raise AlgorithmInvariantError(
                    f"stage {stage} exceeded the Δ sub-round bound"
                )
            # Phase 1: every dominator proposes distinct free colors.
            proposals: dict = {}  # (other endpoint, color) -> (id, edge)
            for node in dominators:
                taken_here: set[int] = set()
                for edge in pending[node]:
                    other = other_endpoint(edge, node)
                    free = [
                        color
                        for color in sorted(coloring.residual_list(edge))
                        if color not in taken_here
                    ]
                    if not free:  # pragma: no cover — 2Δ-1 suffices
                        raise AlgorithmInvariantError(
                            f"no proposable color for {edge!r}"
                        )
                    color = free[0]
                    taken_here.add(color)
                    key = (other, color)
                    incumbent = proposals.get(key)
                    if incumbent is None or ids[node] < incumbent[0]:
                        proposals[key] = (ids[node], edge, node)
            # Phase 2: receivers accept one proposal per color;
            # winners color their edges, losers retry.
            winners = {
                (edge, node) for (_k, (_id, edge, node)) in proposals.items()
            }
            for edge, node in sorted(winners, key=repr):
                coloring.assign(edge, _proposed_color(proposals, edge))
                pending[node].remove(edge)
        sweep_rounds += max(1, 2 * sub_rounds)  # propose + resolve
        max_sub_rounds = max(max_sub_rounds, sub_rounds)

    if not coloring.is_complete():  # pragma: no cover — sweep is total
        raise AlgorithmInvariantError("PR sweep left edges uncolored")

    return BaselineResult(
        name="panconesi_rizzi",
        coloring=coloring.as_dict(),
        rounds=setup_rounds + sweep_rounds,
        palette_size=len(palette),
        details={
            "setup_rounds": setup_rounds,
            "vertex_classes": class_count,
            "sweep_rounds": sweep_rounds,
            "max_sub_rounds_per_stage": max_sub_rounds,
            "note": "PR01 stage structure; vertex coloring via "
                    "Linial+KW on this substrate",
        },
    )


def _proposed_color(proposals: dict, edge) -> int:
    for (other, color), (_id, proposed_edge, _node) in proposals.items():
        if proposed_edge == edge:
            return color
    raise AlgorithmInvariantError(f"no proposal recorded for {edge!r}")
