"""The ``O(Δ² + log* n)`` baseline: Linial classes + greedy sweep.

The algorithm the paper attributes to Linial's framework [Lin87]:
compute an ``O(Δ̄²)``-edge coloring in ``O(log* n)`` rounds, then sweep
its classes — each class simultaneously picks the smallest free color
from ``{1, ..., 2Δ-1}``.  The sweep costs one round per class, giving
``O(Δ̄²)`` rounds total after the ``log*`` start.
"""

from __future__ import annotations

import networkx as nx

from repro.baselines.registry import BaselineResult, register
from repro.coloring.lists import uniform_lists
from repro.coloring.palette import Palette
from repro.coloring.edge_coloring import PartialEdgeColoring
from repro.core.solver import compute_initial_edge_coloring
from repro.graphs.properties import max_degree
from repro.primitives.greedy_class import greedy_by_classes


@register("linial_greedy")
def linial_greedy_coloring(
    graph: nx.Graph, *, seed: int | None = None
) -> BaselineResult:
    """``(2Δ-1)``-edge coloring in ``O(Δ̄² + log* n)`` rounds."""
    delta = max_degree(graph)
    palette = Palette.of_size(max(1, 2 * delta - 1))
    lists = uniform_lists(graph, palette)
    coloring = PartialEdgeColoring(graph, lists)

    classes, class_palette, linial_rounds = compute_initial_edge_coloring(
        graph, seed=seed
    )
    sweep = greedy_by_classes(coloring, classes, class_count=class_palette)
    return BaselineResult(
        name="linial_greedy",
        coloring=coloring.as_dict(),
        rounds=linial_rounds + sweep.rounds,
        palette_size=len(palette),
        details={
            "linial_rounds": linial_rounds,
            "class_palette": class_palette,
            "sweep_rounds": sweep.rounds,
        },
    )
