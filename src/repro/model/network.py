"""The simulated communication network.

A :class:`Network` fixes the graph, the unique node IDs and the port
numbering — the "hardware" a LOCAL algorithm runs on.  Port numbering
maps each node's incident edges to ports ``0 .. deg-1`` in sorted
neighbor order (any fixed order is a valid LOCAL port assignment; a
deterministic one keeps simulations reproducible).

Compilation
-----------
Construction runs a one-time *compilation pass* so the scheduler's hot
path is pure list indexing:

* nodes are sorted **once** by ``repr`` (the library's canonical total
  order) and given dense integer indices ``0 .. n-1``;
* neighbor/port order is derived from the same single sort (sorting
  neighbors by their dense rank yields exactly the old per-node
  ``sorted(..., key=repr)`` order, so the deterministic port-numbering
  contract is unchanged);
* ``n``, ``Δ``, per-node degrees and IDs are cached in flat tables;
* a *delivery table* maps ``(sender_index, port)`` to
  ``(receiver_index, receiver_port)``, so delivering a message costs
  two list indexings instead of two dictionary lookups.

None of this changes observable behavior: ordering, IDs and ports are
bit-identical to the uncompiled implementation (the scheduler
equivalence tests enforce this); the compilation only moves work from
the per-round/per-node hot paths to construction time.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

import networkx as nx

from repro.errors import InvalidInstanceError, ModelViolationError
from repro.graphs.properties import assign_unique_ids, sorted_nodes, validate_simple_graph


class Network:
    """A static synchronous network over a simple graph.

    Parameters
    ----------
    graph:
        The communication graph.
    ids:
        Optional node -> unique ID mapping.  Defaults to a fresh
        assignment via :func:`repro.graphs.properties.assign_unique_ids`.
    """

    def __init__(
        self,
        graph: nx.Graph,
        ids: Mapping[Hashable, int] | None = None,
    ) -> None:
        validate_simple_graph(graph)
        self._graph = graph
        # --- compilation pass (single sort; everything else derives) ---
        self._sorted_nodes: list[Hashable] = sorted_nodes(graph)
        self._n = len(self._sorted_nodes)
        if ids is None:
            ids = assign_unique_ids(graph, ordered_nodes=self._sorted_nodes)
        self._validate_ids(graph, ids)
        self._ids = dict(ids)

        index_of: dict[Hashable, int] = {
            node: index for index, node in enumerate(self._sorted_nodes)
        }
        self._index_of = index_of
        rank = index_of.__getitem__

        # Port tables: node -> list of neighbors in port order, and the
        # inverse lookup (node, neighbor) -> port.  Sorting neighbors by
        # dense rank reproduces the repr order without re-repring.
        self._ports: dict[Hashable, list[Hashable]] = {}
        self._port_of: dict[tuple[Hashable, Hashable], int] = {}
        self._degrees: list[int] = [0] * self._n
        for index, node in enumerate(self._sorted_nodes):
            neighbors = sorted(graph.neighbors(node), key=rank)
            self._ports[node] = neighbors
            self._degrees[index] = len(neighbors)
            for port, neighbor in enumerate(neighbors):
                self._port_of[(node, neighbor)] = port

        # Delivery table: _delivery[i][port] == (receiver_index,
        # receiver_port).  The scheduler's per-message hot path is two
        # list indexings into this structure.
        self._delivery: list[list[tuple[int, int]]] = [
            [
                (rank(neighbor), self._port_of[(neighbor, node)])
                for neighbor in self._ports[node]
            ]
            for node in self._sorted_nodes
        ]
        self._max_degree = max(self._degrees, default=0)
        self._ids_by_index: list[int] = [
            self._ids[node] for node in self._sorted_nodes
        ]

    @staticmethod
    def _validate_ids(graph: nx.Graph, ids: Mapping[Hashable, int]) -> None:
        nodes = set(graph.nodes())
        if set(ids) != nodes:
            raise InvalidInstanceError("ids must cover exactly the graph's nodes")
        values = list(ids.values())
        if len(set(values)) != len(values):
            raise InvalidInstanceError("node IDs must be unique")
        if any(v < 1 for v in values):
            raise InvalidInstanceError("node IDs must be positive integers")

    # ------------------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    @property
    def n(self) -> int:
        return self._n

    @property
    def max_degree(self) -> int:
        return self._max_degree

    def nodes(self) -> list[Hashable]:
        """Return the nodes in deterministic (sorted) order."""
        return list(self._sorted_nodes)

    def id_of(self, node: Hashable) -> int:
        return self._ids[node]

    def ids(self) -> dict[Hashable, int]:
        """Return a copy of the full ID assignment."""
        return dict(self._ids)

    def max_id(self) -> int:
        """Return the largest assigned ID (the ``X`` of ``log* X`` terms)."""
        return max(self._ids_by_index) if self._ids_by_index else 0

    def degree(self, node: Hashable) -> int:
        return self._degrees[self._index_of[node]]

    def neighbors_in_port_order(self, node: Hashable) -> list[Hashable]:
        """Return the neighbors of ``node`` indexed by port."""
        return list(self._ports[node])

    def neighbor_at_port(self, node: Hashable, port: int) -> Hashable:
        """Return the neighbor reached through ``port`` of ``node``."""
        ports = self._ports[node]
        if not 0 <= port < len(ports):
            raise ModelViolationError(
                f"node {node!r} has no port {port} (degree {len(ports)})"
            )
        return ports[port]

    def port_towards(self, node: Hashable, neighbor: Hashable) -> int:
        """Return the port of ``node`` that leads to ``neighbor``."""
        try:
            return self._port_of[(node, neighbor)]
        except KeyError:
            raise ModelViolationError(
                f"{neighbor!r} is not a neighbor of {node!r}"
            ) from None

    # --- compiled (indexed) accessors ---------------------------------

    def index_of(self, node: Hashable) -> int:
        """Return the dense index (``0 .. n-1``) of ``node``."""
        return self._index_of[node]

    def node_at(self, index: int) -> Hashable:
        """Return the node at dense ``index`` (inverse of :meth:`index_of`)."""
        return self._sorted_nodes[index]

    def degree_table(self) -> list[int]:
        """Per-index degrees (do not mutate; shared with the scheduler)."""
        return self._degrees

    def ids_by_index(self) -> list[int]:
        """Per-index unique IDs (do not mutate; shared with the scheduler)."""
        return self._ids_by_index

    def delivery_table(self) -> list[list[tuple[int, int]]]:
        """The compiled delivery structure (do not mutate).

        ``delivery_table()[i][port] == (j, receiver_port)`` means: a
        message sent by node index ``i`` through ``port`` arrives at
        node index ``j`` on ``receiver_port``.
        """
        return self._delivery


def network_from_edges(
    edges: Iterable[tuple[Hashable, Hashable]],
    ids: Mapping[Hashable, int] | None = None,
) -> Network:
    """Build a :class:`Network` from an edge list (convenience)."""
    graph = nx.Graph()
    graph.add_edges_from(edges)
    return Network(graph, ids=ids)
