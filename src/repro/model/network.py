"""The simulated communication network.

A :class:`Network` fixes the graph, the unique node IDs and the port
numbering — the "hardware" a LOCAL algorithm runs on.  Port numbering
maps each node's incident edges to ports ``0 .. deg-1`` in sorted
neighbor order (any fixed order is a valid LOCAL port assignment; a
deterministic one keeps simulations reproducible).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

import networkx as nx

from repro.errors import InvalidInstanceError, ModelViolationError
from repro.graphs.properties import assign_unique_ids, max_degree, validate_simple_graph


class Network:
    """A static synchronous network over a simple graph.

    Parameters
    ----------
    graph:
        The communication graph.
    ids:
        Optional node -> unique ID mapping.  Defaults to a fresh
        assignment via :func:`repro.graphs.properties.assign_unique_ids`.
    """

    def __init__(
        self,
        graph: nx.Graph,
        ids: Mapping[Hashable, int] | None = None,
    ) -> None:
        validate_simple_graph(graph)
        self._graph = graph
        if ids is None:
            ids = assign_unique_ids(graph)
        self._validate_ids(graph, ids)
        self._ids = dict(ids)
        # Port tables: node -> list of neighbors in port order, and the
        # inverse lookup (node, neighbor) -> port.
        self._ports: dict[Hashable, list[Hashable]] = {}
        self._port_of: dict[tuple[Hashable, Hashable], int] = {}
        for node in graph.nodes():
            neighbors = sorted(graph.neighbors(node), key=repr)
            self._ports[node] = neighbors
            for port, neighbor in enumerate(neighbors):
                self._port_of[(node, neighbor)] = port

    @staticmethod
    def _validate_ids(graph: nx.Graph, ids: Mapping[Hashable, int]) -> None:
        nodes = set(graph.nodes())
        if set(ids) != nodes:
            raise InvalidInstanceError("ids must cover exactly the graph's nodes")
        values = list(ids.values())
        if len(set(values)) != len(values):
            raise InvalidInstanceError("node IDs must be unique")
        if any(v < 1 for v in values):
            raise InvalidInstanceError("node IDs must be positive integers")

    # ------------------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    @property
    def n(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def max_degree(self) -> int:
        return max_degree(self._graph)

    def nodes(self) -> list[Hashable]:
        """Return the nodes in deterministic (sorted) order."""
        return sorted(self._graph.nodes(), key=repr)

    def id_of(self, node: Hashable) -> int:
        return self._ids[node]

    def ids(self) -> dict[Hashable, int]:
        """Return a copy of the full ID assignment."""
        return dict(self._ids)

    def max_id(self) -> int:
        """Return the largest assigned ID (the ``X`` of ``log* X`` terms)."""
        return max(self._ids.values()) if self._ids else 0

    def degree(self, node: Hashable) -> int:
        return self._graph.degree(node)

    def neighbors_in_port_order(self, node: Hashable) -> list[Hashable]:
        """Return the neighbors of ``node`` indexed by port."""
        return list(self._ports[node])

    def neighbor_at_port(self, node: Hashable, port: int) -> Hashable:
        """Return the neighbor reached through ``port`` of ``node``."""
        ports = self._ports[node]
        if not 0 <= port < len(ports):
            raise ModelViolationError(
                f"node {node!r} has no port {port} (degree {len(ports)})"
            )
        return ports[port]

    def port_towards(self, node: Hashable, neighbor: Hashable) -> int:
        """Return the port of ``node`` that leads to ``neighbor``."""
        try:
            return self._port_of[(node, neighbor)]
        except KeyError:
            raise ModelViolationError(
                f"{neighbor!r} is not a neighbor of {node!r}"
            ) from None


def network_from_edges(
    edges: Iterable[tuple[Hashable, Hashable]],
    ids: Mapping[Hashable, int] | None = None,
) -> Network:
    """Build a :class:`Network` from an edge list (convenience)."""
    graph = nx.Graph()
    graph.add_edges_from(edges)
    return Network(graph, ids=ids)
