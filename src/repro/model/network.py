"""The simulated communication network.

A :class:`Network` fixes the graph, the unique node IDs and the port
numbering — the "hardware" a LOCAL algorithm runs on.  Port numbering
maps each node's incident edges to ports ``0 .. deg-1`` in sorted
neighbor order (any fixed order is a valid LOCAL port assignment; a
deterministic one keeps simulations reproducible).

Compilation
-----------
Construction runs a one-time *compilation pass* so the scheduler's hot
path is pure list indexing:

* nodes are sorted **once** by ``repr`` (the library's canonical total
  order) and given dense integer indices ``0 .. n-1``;
* neighbor/port order is derived from the same single sort (sorting
  neighbors by their dense rank yields exactly the old per-node
  ``sorted(..., key=repr)`` order, so the deterministic port-numbering
  contract is unchanged);
* ``n``, ``Δ``, per-node degrees and IDs are cached in flat tables;
* the delivery structure is compiled into **columnar flat buffers** in
  CSR layout: ``row_start`` (per-sender offsets, length ``n + 1``) plus
  three parallel columns of length ``2m`` indexed by
  ``row_start[i] + port`` — receiver index, receiver port, and the
  *destination slot* ``row_start[j] + receiver_port`` a message lands
  in.  Delivering a message is then pure flat-list indexing, and the
  scheduler's per-round inbox arena is addressed by the very same
  slots (see :mod:`repro.model.scheduler`);
* the nested *delivery table* view (``(sender_index, port) ->
  (receiver_index, receiver_port)``) is derived from the columns on
  demand for callers that prefer the row-per-node shape.

None of this changes observable behavior: ordering, IDs and ports are
bit-identical to the uncompiled implementation (the scheduler
equivalence tests enforce this); the compilation only moves work from
the per-round/per-node hot paths to construction time.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

import networkx as nx

from repro.errors import InvalidInstanceError, ModelViolationError
from repro.graphs.properties import assign_unique_ids, sorted_nodes, validate_simple_graph


class Network:
    """A static synchronous network over a simple graph.

    Parameters
    ----------
    graph:
        The communication graph.
    ids:
        Optional node -> unique ID mapping.  Defaults to a fresh
        assignment via :func:`repro.graphs.properties.assign_unique_ids`.
    """

    def __init__(
        self,
        graph: nx.Graph,
        ids: Mapping[Hashable, int] | None = None,
    ) -> None:
        validate_simple_graph(graph)
        self._graph = graph
        # --- compilation pass (single sort; everything else derives) ---
        self._sorted_nodes: list[Hashable] = sorted_nodes(graph)
        self._n = len(self._sorted_nodes)
        if ids is None:
            ids = assign_unique_ids(graph, ordered_nodes=self._sorted_nodes)
        self._validate_ids(graph, ids)
        self._ids = dict(ids)

        index_of: dict[Hashable, int] = {
            node: index for index, node in enumerate(self._sorted_nodes)
        }
        self._index_of = index_of
        rank = index_of.__getitem__

        # Port tables: node -> list of neighbors in port order, and the
        # inverse lookup (node, neighbor) -> port.  Sorting neighbors by
        # dense rank reproduces the repr order without re-repring.
        self._ports: dict[Hashable, list[Hashable]] = {}
        self._port_of: dict[tuple[Hashable, Hashable], int] = {}
        self._degrees: list[int] = [0] * self._n
        for index, node in enumerate(self._sorted_nodes):
            neighbors = sorted(graph.neighbors(node), key=rank)
            self._ports[node] = neighbors
            self._degrees[index] = len(neighbors)
            for port, neighbor in enumerate(neighbors):
                self._port_of[(node, neighbor)] = port

        # Columnar delivery layout (CSR).  Slot row_start[i] + port
        # holds the delivery facts for a message sent by node index i
        # through that port: receiver index, receiver port, and the
        # flat destination slot (row_start[receiver] + receiver_port)
        # the payload lands in on the receiving side.
        row_start: list[int] = [0] * (self._n + 1)
        for index in range(self._n):
            row_start[index + 1] = row_start[index] + self._degrees[index]
        self._row_start = row_start
        col_receiver: list[int] = []
        col_receiver_port: list[int] = []
        for node in self._sorted_nodes:
            for neighbor in self._ports[node]:
                col_receiver.append(rank(neighbor))
                col_receiver_port.append(self._port_of[(neighbor, node)])
        self._col_receiver = col_receiver
        self._col_receiver_port = col_receiver_port
        self._col_dest_slot: list[int] = [
            row_start[receiver] + port
            for receiver, port in zip(col_receiver, col_receiver_port)
        ]
        self._delivery: list[list[tuple[int, int]]] | None = None
        self._neighbor_rows: list[list[int]] | None = None
        self._columns_np: tuple | None = None
        self._max_degree = max(self._degrees, default=0)
        self._ids_by_index: list[int] = [
            self._ids[node] for node in self._sorted_nodes
        ]

    @staticmethod
    def _validate_ids(graph: nx.Graph, ids: Mapping[Hashable, int]) -> None:
        nodes = set(graph.nodes())
        if set(ids) != nodes:
            raise InvalidInstanceError("ids must cover exactly the graph's nodes")
        values = list(ids.values())
        if len(set(values)) != len(values):
            raise InvalidInstanceError("node IDs must be unique")
        if any(v < 1 for v in values):
            raise InvalidInstanceError("node IDs must be positive integers")

    # ------------------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    @property
    def n(self) -> int:
        return self._n

    @property
    def max_degree(self) -> int:
        return self._max_degree

    def nodes(self) -> list[Hashable]:
        """Return the nodes in deterministic (sorted) order."""
        return list(self._sorted_nodes)

    def id_of(self, node: Hashable) -> int:
        return self._ids[node]

    def ids(self) -> dict[Hashable, int]:
        """Return a copy of the full ID assignment."""
        return dict(self._ids)

    def max_id(self) -> int:
        """Return the largest assigned ID (the ``X`` of ``log* X`` terms)."""
        return max(self._ids_by_index) if self._ids_by_index else 0

    def degree(self, node: Hashable) -> int:
        return self._degrees[self._index_of[node]]

    def neighbors_in_port_order(self, node: Hashable) -> list[Hashable]:
        """Return the neighbors of ``node`` indexed by port."""
        return list(self._ports[node])

    def neighbor_at_port(self, node: Hashable, port: int) -> Hashable:
        """Return the neighbor reached through ``port`` of ``node``."""
        ports = self._ports[node]
        if not 0 <= port < len(ports):
            raise ModelViolationError(
                f"node {node!r} has no port {port} (degree {len(ports)})"
            )
        return ports[port]

    def port_towards(self, node: Hashable, neighbor: Hashable) -> int:
        """Return the port of ``node`` that leads to ``neighbor``."""
        try:
            return self._port_of[(node, neighbor)]
        except KeyError:
            raise ModelViolationError(
                f"{neighbor!r} is not a neighbor of {node!r}"
            ) from None

    # --- compiled (indexed) accessors ---------------------------------

    def index_of(self, node: Hashable) -> int:
        """Return the dense index (``0 .. n-1``) of ``node``."""
        return self._index_of[node]

    def node_at(self, index: int) -> Hashable:
        """Return the node at dense ``index`` (inverse of :meth:`index_of`)."""
        return self._sorted_nodes[index]

    def degree_table(self) -> list[int]:
        """Per-index degrees (do not mutate; shared with the scheduler)."""
        return self._degrees

    def ids_by_index(self) -> list[int]:
        """Per-index unique IDs (do not mutate; shared with the scheduler)."""
        return self._ids_by_index

    def delivery_table(self) -> list[list[tuple[int, int]]]:
        """The nested delivery view (do not mutate).

        ``delivery_table()[i][port] == (j, receiver_port)`` means: a
        message sent by node index ``i`` through ``port`` arrives at
        node index ``j`` on ``receiver_port``.  Derived from the
        columnar layout on first use (see :meth:`delivery_columns`).
        """
        if self._delivery is None:
            row_start = self._row_start
            pairs = list(zip(self._col_receiver, self._col_receiver_port))
            self._delivery = [
                pairs[row_start[index] : row_start[index + 1]]
                for index in range(self._n)
            ]
        return self._delivery

    def row_start_table(self) -> list[int]:
        """CSR row offsets (length ``n + 1``; do not mutate).

        Node index ``i`` owns the flat slots
        ``row_start_table()[i] .. row_start_table()[i + 1] - 1`` — one
        per port, in port order.  ``row_start_table()[n]`` is the total
        number of directed slots (``2m``).
        """
        return self._row_start

    def delivery_columns(
        self,
    ) -> tuple[list[int], list[int], list[int], list[int]]:
        """The columnar delivery layout (do not mutate any column).

        Returns ``(row_start, receiver, receiver_port, dest_slot)``.
        For the flat index ``idx = row_start[i] + port`` of a sender-
        side slot:

        * ``receiver[idx]`` is the dense index of the receiving node;
        * ``receiver_port[idx]`` is the port the message arrives on;
        * ``dest_slot[idx] == row_start[receiver[idx]] +
          receiver_port[idx]`` is the flat *receiver-side* slot the
          payload lands in — the address the scheduler's inbox arena is
          indexed by.

        Port symmetry holds by construction: following ``dest_slot``
        twice is the identity (``dest_slot[dest_slot[idx]] == idx``).
        """
        return (
            self._row_start,
            self._col_receiver,
            self._col_receiver_port,
            self._col_dest_slot,
        )

    def delivery_columns_np(self):
        """The columnar delivery layout as ``int64`` ndarrays.

        Same four columns as :meth:`delivery_columns` —
        ``(row_start, receiver, receiver_port, dest_slot)`` — compiled
        once into contiguous ``numpy.int64`` arrays so the vectorized
        engine (:mod:`repro.model.engine_numpy`) can gather and scatter
        whole rounds with fancy indexing instead of per-message list
        indexing.  Derived lazily from the list columns (numpy is an
        optional dependency of the model layer); do not mutate.

        Raises :class:`~repro.errors.EngineUnavailableError` when numpy
        cannot be imported.
        """
        if self._columns_np is None:
            from repro.model.scheduler import require_numpy

            np = require_numpy()
            self._columns_np = (
                np.asarray(self._row_start, dtype=np.int64),
                np.asarray(self._col_receiver, dtype=np.int64),
                np.asarray(self._col_receiver_port, dtype=np.int64),
                np.asarray(self._col_dest_slot, dtype=np.int64),
            )
        return self._columns_np

    def neighbor_index_rows(self) -> list[list[int]]:
        """Per-node neighbor *indices* in port order (do not mutate).

        ``neighbor_index_rows()[j][q]`` is the dense index of the node
        reached through port ``q`` of node index ``j`` — the receiver
        column resliced per node.  Because port numbering is symmetric,
        this is also the sender a message arriving on port ``q`` came
        from; the scheduler's pull-side (broadcast) delivery reads it.
        """
        if self._neighbor_rows is None:
            row_start = self._row_start
            col_receiver = self._col_receiver
            self._neighbor_rows = [
                col_receiver[row_start[index] : row_start[index + 1]]
                for index in range(self._n)
            ]
        return self._neighbor_rows


def network_from_edges(
    edges: Iterable[tuple[Hashable, Hashable]],
    ids: Mapping[Hashable, int] | None = None,
) -> Network:
    """Build a :class:`Network` from an edge list (convenience)."""
    graph = nx.Graph()
    graph.add_edges_from(edges)
    return Network(graph, ids=ids)
