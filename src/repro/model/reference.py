"""The original (seed) round loop, preserved as the reference oracle.

This module keeps the pre-optimization scheduler implementation alive
for two jobs:

* **Equivalence testing.**  The fast path in
  :mod:`repro.model.scheduler` must produce bit-identical ``rounds``,
  ``messages_sent`` and ``outputs``; the property-style tests in
  ``tests/test_model_scheduler_equivalence.py`` run both loops on
  random graphs and diff the results.
* **Perf baselining.**  ``benchmarks/bench_scheduler_core.py`` and the
  ``python -m repro bench-core`` command time this loop against the
  fast path to record the before/after trajectory in
  ``BENCH_scheduler.json``.

It deliberately reproduces the seed's cost profile, not just its
semantics: ``max_degree`` is recomputed from the raw graph once per
node during context setup (the old O(n²) hotspot), delivery goes
through the ``neighbor_at_port`` / ``port_towards`` dictionary API,
every node gets an inbox dict every round whether or not it is halted,
global halting is an O(n) ``all()`` scan per round, and every message
is wrapped in a :class:`~repro.model.message.Message` envelope whose
``repr`` size is computed eagerly.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.errors import RoundLimitExceededError
from repro.graphs.properties import max_degree as _graph_max_degree
from repro.model.algorithm import NodeAlgorithm, NodeContext
from repro.model.message import Message
from repro.model.network import Network
from repro.model.scheduler import ExecutionResult


def reference_run(
    network: Network,
    algorithm: NodeAlgorithm,
    *,
    max_rounds: int = 10_000,
    record_trace: bool = False,
) -> ExecutionResult:
    """Execute ``algorithm`` with the seed scheduler loop.

    Semantically equal to ``Scheduler(network, ...).run(algorithm)``;
    kept only as the slow oracle (see module docstring).
    """
    contexts: dict[Hashable, NodeContext] = {}
    for node in network.nodes():
        contexts[node] = NodeContext(
            node=node,
            unique_id=network.id_of(node),
            degree=network.degree(node),
            n=network.n,
            # The seed recomputed Δ from scratch for every node; keep
            # that cost so "before" timings are honest.
            max_degree=_graph_max_degree(network.graph),
        )
        algorithm.initialize(contexts[node])

    rounds = 0
    messages_sent = 0
    max_message_size = 0
    trace: list[Message] = []

    while not all(ctx.halted for ctx in contexts.values()):
        if rounds >= max_rounds:
            stuck = [n for n, c in contexts.items() if not c.halted][:5]
            raise RoundLimitExceededError(
                f"round budget {max_rounds} exhausted; "
                f"non-halted nodes include {stuck!r}"
            )
        rounds += 1

        # Phase 1: all nodes compose against start-of-round state.
        inboxes: dict[Hashable, dict[int, Any]] = {
            node: {} for node in contexts
        }
        for node, ctx in contexts.items():
            if ctx.halted:
                continue
            outbox = algorithm.compose_messages(ctx)
            for port, payload in outbox.items():
                ctx.require_port(port)
                receiver = network.neighbor_at_port(node, port)
                receiver_port = network.port_towards(receiver, node)
                inboxes[receiver][receiver_port] = payload
                messages_sent += 1
                message = Message(
                    sender=node,
                    receiver=receiver,
                    round_index=rounds,
                    payload=payload,
                )
                max_message_size = max(max_message_size, message.size_estimate())
                if record_trace:
                    trace.append(message)

        # Phase 2: simultaneous delivery and state transition.
        for node, ctx in contexts.items():
            if ctx.halted:
                continue
            algorithm.receive_messages(ctx, inboxes[node])

    outputs = {node: algorithm.output(ctx) for node, ctx in contexts.items()}
    return ExecutionResult(
        rounds=rounds,
        messages_sent=messages_sent,
        outputs=outputs,
        trace=trace,
        _max_message_size=max_message_size,
    )
