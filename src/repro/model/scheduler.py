"""The synchronous round loop.

The scheduler realises the LOCAL model's semantics exactly:

* rounds are global and synchronous;
* in a round, every non-halted node first *composes* its outgoing
  messages against its state at the start of the round, then all
  messages are delivered simultaneously, then every node *receives*;
* the execution ends when all nodes have halted (or the round budget
  is exhausted, which raises — silent truncation would corrupt round
  measurements).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.errors import RoundLimitExceededError
from repro.model.algorithm import NodeAlgorithm, NodeContext
from repro.model.message import Message
from repro.model.network import Network


@dataclass
class ExecutionResult:
    """Outcome of one simulated execution.

    Attributes
    ----------
    rounds:
        Number of synchronous rounds until global halting.
    messages_sent:
        Total messages delivered over the whole execution.
    outputs:
        Mapping node -> the node's declared output.
    max_message_size:
        Largest payload ``repr`` size observed (LOCAL ignores message
        size; reported so experiments can discuss CONGEST-feasibility).
    trace:
        Optional list of all messages (populated when tracing is on).
    """

    rounds: int
    messages_sent: int
    outputs: dict[Hashable, Any]
    max_message_size: int = 0
    trace: list[Message] = field(default_factory=list)


class Scheduler:
    """Runs a :class:`NodeAlgorithm` on a :class:`Network`.

    Parameters
    ----------
    network:
        The network to run on.
    max_rounds:
        Hard budget; exceeding it raises :class:`RoundLimitExceededError`.
    record_trace:
        When ``True``, every message is kept in the result's trace
        (memory-heavy; meant for tests and small demos).
    """

    def __init__(
        self,
        network: Network,
        *,
        max_rounds: int = 10_000,
        record_trace: bool = False,
    ) -> None:
        self._network = network
        self._max_rounds = max_rounds
        self._record_trace = record_trace

    def run(self, algorithm: NodeAlgorithm) -> ExecutionResult:
        """Execute ``algorithm`` to global halting and return the result."""
        network = self._network
        contexts: dict[Hashable, NodeContext] = {}
        for node in network.nodes():
            contexts[node] = NodeContext(
                node=node,
                unique_id=network.id_of(node),
                degree=network.degree(node),
                n=network.n,
                max_degree=network.max_degree,
            )
            algorithm.initialize(contexts[node])

        rounds = 0
        messages_sent = 0
        max_message_size = 0
        trace: list[Message] = []

        while not all(ctx.halted for ctx in contexts.values()):
            if rounds >= self._max_rounds:
                stuck = [n for n, c in contexts.items() if not c.halted][:5]
                raise RoundLimitExceededError(
                    f"round budget {self._max_rounds} exhausted; "
                    f"non-halted nodes include {stuck!r}"
                )
            rounds += 1

            # Phase 1: all nodes compose against start-of-round state.
            inboxes: dict[Hashable, dict[int, Any]] = {
                node: {} for node in contexts
            }
            for node, ctx in contexts.items():
                if ctx.halted:
                    continue
                outbox = algorithm.compose_messages(ctx)
                for port, payload in outbox.items():
                    ctx.require_port(port)
                    receiver = network.neighbor_at_port(node, port)
                    receiver_port = network.port_towards(receiver, node)
                    inboxes[receiver][receiver_port] = payload
                    messages_sent += 1
                    message = Message(
                        sender=node,
                        receiver=receiver,
                        round_index=rounds,
                        payload=payload,
                    )
                    max_message_size = max(max_message_size, message.size_estimate())
                    if self._record_trace:
                        trace.append(message)

            # Phase 2: simultaneous delivery and state transition.
            for node, ctx in contexts.items():
                if ctx.halted:
                    continue
                algorithm.receive_messages(ctx, inboxes[node])

        outputs = {node: algorithm.output(ctx) for node, ctx in contexts.items()}
        return ExecutionResult(
            rounds=rounds,
            messages_sent=messages_sent,
            outputs=outputs,
            max_message_size=max_message_size,
            trace=trace,
        )


def run_on_graph(
    algorithm: NodeAlgorithm,
    graph,
    *,
    ids=None,
    max_rounds: int = 10_000,
    record_trace: bool = False,
) -> ExecutionResult:
    """One-shot convenience wrapper: build the network and run."""
    network = Network(graph, ids=ids)
    scheduler = Scheduler(
        network, max_rounds=max_rounds, record_trace=record_trace
    )
    return scheduler.run(algorithm)
