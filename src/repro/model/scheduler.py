"""The synchronous round loop (fast path).

The scheduler realises the LOCAL model's semantics exactly:

* rounds are global and synchronous;
* in a round, every non-halted node first *composes* its outgoing
  messages against its state at the start of the round, then all
  messages are delivered simultaneously, then every node *receives*;
* the execution ends when all nodes have halted (or the round budget
  is exhausted, which raises — silent truncation would corrupt round
  measurements).

Fast path
---------
This implementation is the compiled counterpart of the original
reference loop (preserved verbatim-in-behavior in
:mod:`repro.model.reference` and pinned by the scheduler-equivalence
tests).  What is precomputed, and why determinism is preserved:

* **Indexed contexts.**  Contexts live in a flat list aligned with the
  network's dense node indices; ``n``/``Δ``/degrees/IDs come from the
  network's compiled tables, so setup is O(n + m) instead of the old
  O(n²) (the reference recomputed ``max_degree`` per node).
* **Delivery by table.**  A message send is two list indexings into
  :meth:`Network.delivery_table` — no ``neighbor_at_port`` /
  ``port_towards`` dictionary lookups on the hot path.  The table is
  built from the same single canonical sort, so receivers and ports
  are bit-identical to the reference.
* **Active set.**  Only non-halted nodes are iterated, in the same
  deterministic (sorted) order as the reference — the active list is
  a monotone subsequence of the initial order, so compose/receive
  callbacks fire in the identical sequence.  Global halting is a
  counter-free emptiness check on the active list; no O(n) ``all()``
  scan per round.
* **Inboxes per receiver.**  Inbox dicts are allocated only for nodes
  that actually receive something this round (plus a fresh empty dict
  for silent active receivers); halted nodes get none.  Messages
  addressed to halted nodes are still *counted* (the reference counts
  them too) — they are simply never received.
* **Memoized size accounting.**  No ``Message`` envelope is built
  unless tracing is on.  With ``audit_message_sizes=True`` (the
  default) the running ``max_message_size`` is kept exactly as the
  reference does, but the ``repr`` size of each *distinct* payload
  value is computed once and memoized — distributed algorithms resend
  the same few payloads constantly, so the audit costs one dict probe
  per message instead of a ``repr`` per message (and, unlike retaining
  payload references for a deferred audit, it is exact even for
  payloads mutated after sending).  Passing
  ``audit_message_sizes=False`` opts out entirely (the attribute then
  reports 0, unless a recorded trace allows deriving it).

Because every reordering-sensitive choice (node order, port order,
iteration order of the round loop) is inherited from the same single
canonical sort, ``rounds``, ``messages_sent`` and ``outputs`` are
bit-identical to the reference loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.errors import RoundLimitExceededError
from repro.model.algorithm import NodeAlgorithm, NodeContext
from repro.model.message import Message
from repro.model.network import Network


@dataclass
class ExecutionResult:
    """Outcome of one simulated execution.

    Attributes
    ----------
    rounds:
        Number of synchronous rounds until global halting.
    messages_sent:
        Total messages delivered over the whole execution.
    outputs:
        Mapping node -> the node's declared output.
    max_message_size:
        Largest payload ``repr`` size observed (LOCAL ignores message
        size; reported so experiments can discuss CONGEST-feasibility).
        0 when the scheduler ran with ``audit_message_sizes=False``
        and no trace was recorded.
    trace:
        Optional list of all messages (populated when tracing is on).
    """

    rounds: int
    messages_sent: int
    outputs: dict[Hashable, Any]
    trace: list[Message] = field(default_factory=list)
    _max_message_size: int | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def max_message_size(self) -> int:
        if self._max_message_size is None:
            if self.trace:
                # Auditing was off but a trace exists — derive from it.
                self._max_message_size = max(
                    message.size_estimate() for message in self.trace
                )
            else:
                self._max_message_size = 0
        return self._max_message_size


class Scheduler:
    """Runs a :class:`NodeAlgorithm` on a :class:`Network`.

    Parameters
    ----------
    network:
        The network to run on.
    max_rounds:
        Hard budget; exceeding it raises :class:`RoundLimitExceededError`.
    record_trace:
        When ``True``, every message is kept in the result's trace
        (memory-heavy; meant for tests and small demos).
    audit_message_sizes:
        When ``True`` (default), ``ExecutionResult.max_message_size``
        is tracked with a per-distinct-payload ``repr`` memo (one dict
        probe per message).  ``False`` skips the audit entirely — the
        fastest mode for pure LOCAL runs that never inspect message
        sizes.
    """

    def __init__(
        self,
        network: Network,
        *,
        max_rounds: int = 10_000,
        record_trace: bool = False,
        audit_message_sizes: bool = True,
    ) -> None:
        self._network = network
        self._max_rounds = max_rounds
        self._record_trace = record_trace
        self._audit_message_sizes = audit_message_sizes

    def run(self, algorithm: NodeAlgorithm) -> ExecutionResult:
        """Execute ``algorithm`` to global halting and return the result."""
        network = self._network
        nodes = network.nodes()
        degrees = network.degree_table()
        ids = network.ids_by_index()
        delivery = network.delivery_table()
        n = network.n
        delta = network.max_degree

        contexts: list[NodeContext] = []
        initialize = algorithm.initialize
        for index in range(n):
            ctx = NodeContext(
                node=nodes[index],
                unique_id=ids[index],
                degree=degrees[index],
                n=n,
                max_degree=delta,
            )
            contexts.append(ctx)
            initialize(ctx)

        # Active set: indices of non-halted nodes, always in ascending
        # (canonical) order so callback sequence matches the reference.
        active = [index for index in range(n) if not contexts[index].halted]

        rounds = 0
        messages_sent = 0
        trace: list[Message] = []
        record_trace = self._record_trace
        audit = self._audit_message_sizes
        # repr-size memo keyed by type then value: equal payloads of
        # different types (1 vs 1.0 vs True) repr differently.
        size_memo: dict[type, dict[Any, int]] = {}
        max_message_size = 0
        max_rounds = self._max_rounds
        compose = algorithm.compose_messages
        receive = algorithm.receive_messages

        while active:
            if rounds >= max_rounds:
                stuck = [nodes[index] for index in active[:5]]
                raise RoundLimitExceededError(
                    f"round budget {max_rounds} exhausted; "
                    f"non-halted nodes include {stuck!r}"
                )
            rounds += 1

            # Phase 1: all active nodes compose against start-of-round
            # state.  Inboxes spring into existence on first delivery.
            inboxes: dict[int, dict[int, Any]] = {}
            for index in active:
                ctx = contexts[index]
                if ctx.halted:
                    continue
                outbox = compose(ctx)
                if not outbox:
                    continue
                row = delivery[index]
                degree = ctx.degree
                for port, payload in outbox.items():
                    if not 0 <= port < degree:
                        ctx.require_port(port)  # raises ModelViolationError
                    receiver_index, receiver_port = row[port]
                    inbox = inboxes.get(receiver_index)
                    if inbox is None:
                        inboxes[receiver_index] = inbox = {}
                    inbox[receiver_port] = payload
                    messages_sent += 1
                    if audit:
                        try:
                            size = size_memo[payload.__class__][payload]
                        except TypeError:  # unhashable: size it directly
                            size = len(repr(payload))
                        except KeyError:
                            size = len(repr(payload))
                            try:
                                size_memo.setdefault(
                                    payload.__class__, {}
                                )[payload] = size
                            except TypeError:  # unhashable: no memo entry
                                pass
                        if size > max_message_size:
                            max_message_size = size
                    if record_trace:
                        trace.append(
                            Message(
                                sender=nodes[index],
                                receiver=nodes[receiver_index],
                                round_index=rounds,
                                payload=payload,
                            )
                        )

            # Phase 2: simultaneous delivery and state transition.  A
            # node that halted during its own compose is skipped, same
            # as the reference.
            next_active: list[int] = []
            for index in active:
                ctx = contexts[index]
                if ctx.halted:
                    continue
                inbox = inboxes.get(index)
                receive(ctx, inbox if inbox is not None else {})
                if not ctx.halted:
                    next_active.append(index)
            active = next_active

        output = algorithm.output
        outputs = {ctx.node: output(ctx) for ctx in contexts}
        return ExecutionResult(
            rounds=rounds,
            messages_sent=messages_sent,
            outputs=outputs,
            trace=trace,
            _max_message_size=max_message_size if audit else None,
        )


def run_on_graph(
    algorithm: NodeAlgorithm,
    graph,
    *,
    ids=None,
    max_rounds: int = 10_000,
    record_trace: bool = False,
) -> ExecutionResult:
    """One-shot convenience wrapper: build the network and run."""
    network = Network(graph, ids=ids)
    scheduler = Scheduler(
        network, max_rounds=max_rounds, record_trace=record_trace
    )
    return scheduler.run(algorithm)
