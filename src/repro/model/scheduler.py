"""The synchronous round loop (columnar fast path).

The scheduler realises the LOCAL model's semantics exactly:

* rounds are global and synchronous;
* in a round, every non-halted node first *composes* its outgoing
  messages against its state at the start of the round, then all
  messages are delivered simultaneously, then every node *receives*;
* the execution ends when all nodes have halted (or the round budget
  is exhausted, which raises — silent truncation would corrupt round
  measurements).

Columnar round engine
---------------------
This implementation is the compiled counterpart of the original
reference loop (preserved verbatim-in-behavior in
:mod:`repro.model.reference` and pinned by the scheduler-equivalence
tests).  Delivery runs over **flat parallel buffers** addressed by the
network's compiled column layout (:meth:`Network.delivery_columns`)
instead of per-node dictionaries.

Buffer layout
~~~~~~~~~~~~~
The network's CSR layout assigns every directed (node, port) pair a
*slot*: node index ``i`` owns slots ``row_start[i] ..
row_start[i+1]-1``, one per port, in port order.  The engine keeps
three flat buffers over those ``2m`` slots plus three per-node
columns:

* ``payload_buf[slot]`` — the payload delivered *into* ``slot`` (a
  receiver-side address: ``row_start[j] + receiver_port``);
* ``stamp_buf[slot]`` — the round stamp at which that payload was
  written; a slot is live only while its stamp equals the current
  round's stamp, so buffers never need clearing between rounds or
  runs;
* ``recv_stamp[j]`` — the last stamp at which node ``j`` had a payload
  *pushed* to one of its slots, so silent receivers cost O(1), not a
  port scan;
* ``bcast_payload[i]`` / ``bcast_stamp[i]`` — the **broadcast
  column**: when a node's outbox sends one identical payload through
  every port (the dominant shape of distributed algorithms — floods,
  color announcements, class sweeps), the engine records the whole
  outbox as a single stamped per-*sender* cell instead of ``deg(i)``
  per-slot writes.  Send cost for a broadcast round is O(active
  nodes), not O(messages).

Delivery is therefore push *or* pull per sender: a mixed or partial
outbox is *pushed* — the compiled ``dest_slot`` column maps the
sender-side index ``row_start[i] + port`` straight to the receiver's
flat slot, three list indexings per message, no inbox dict in sight —
while a uniform full outbox is *pulled* by its receivers from the
broadcast column.

Inboxes as slices
~~~~~~~~~~~~~~~~~
At receive time each node materialises its inbox from contiguous
columns in one pass.  A receiver of pushed messages reads its own
slice ``payload_buf[row_start[j] : row_start[j+1]]``; a receiver of
broadcasts gathers ``bcast_payload`` through its neighbor-index row
(:meth:`Network.neighbor_index_rows` — the receiver column resliced
per node) with C-level ``map``/``count``, and the common full-inbox
case is built with ``dict(enumerate(...))`` without an interpreted
per-message loop at all.  Rounds that mixed pushes and broadcasts
merge the two sources port by port (each port has exactly one sender,
so the union is disjoint).  Nodes that received nothing get a fresh
empty dict.

Determinism argument
~~~~~~~~~~~~~~~~~~~~
The reference loop builds each inbox dict by inserting messages in
ascending *sender* order (all nodes compose in the single canonical
sort order).  Ports are numbered in ascending neighbor-rank order, so
for a fixed receiver the map ``sender rank -> receiver port`` is
strictly increasing: iterating a receiver's slots in port order visits
exactly the reference's insertion order.  Slice- and gather-built
inboxes are therefore *order-identical* to the reference dicts, not
just equal-as-mappings, and every reordering-sensitive choice (node
order, port order, round iteration) still derives from the one
canonical sort — ``rounds``, ``messages_sent`` and ``outputs`` stay
bit-identical to the reference loop.  The broadcast column never
changes observable behavior either: it is only taken when every port
carries the *same payload object* (a C-level ``id`` set — ==-equal
but distinct payloads such as ``1`` vs ``1.0`` keep exact per-port
delivery and size accounting) and the outbox keys equal the canonical
port set ``{0 .. deg-1}`` (a C set-equality against a precomputed
frozenset — out-of-range or fractional ports route to the push path,
whose validation raises exactly where the reference raises), so the
pulled inbox entry is the very object the reference would have
delivered, and ``messages_sent`` still counts ``deg(i)`` messages per
broadcast.  Messages addressed to halted nodes are stored and
*counted* (the reference counts them too) but never materialised into
an inbox.  One deliberate nicety remains: a uniform outbox keyed by
*integral* floats (``{0.0: x, 1.0: x}``) hashes equal to the port set
and is delivered by key equality where the reference happens to raise
``TypeError``; real algorithms use integer ports and never hit the
difference.

Arenas
~~~~~~
The flat buffers live in a :class:`RoundArena` and are sized by the
network's slot count.  By default each ``run`` leases a private arena;
sweeps that execute many runs can share one arena across cells (see
:func:`shared_arena` and the harness), so buffer allocation happens
once per sweep instead of once per cell.  Stamps come from the arena's
monotone clock and are never reused, so a recycled buffer cannot leak
stale payloads into a later run — sharing is observably free.

Size accounting
~~~~~~~~~~~~~~~
With ``audit_message_sizes=True`` (the default) the running
``max_message_size`` is kept exactly as the reference does, but the
``repr`` size of each *distinct* payload value is computed once and
memoized, and consecutive sends of the *same object* within one outbox
(broadcasts) are audited once — no user code runs between the ports of
one outbox, so the object cannot change size in between.  Passing
``audit_message_sizes=False`` opts out entirely (the attribute then
reports 0, unless a recorded trace allows deriving it).  A cheaper
columnar alternative to the full ``record_trace`` is
``record_send_log=True``, which retains the per-message send columns
``(round, sender_slot, payload)`` without building ``Message``
envelopes — the CONGEST audit reads those columns.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator, Protocol

from repro.errors import EngineUnavailableError, RoundLimitExceededError
from repro.model.algorithm import NodeAlgorithm, NodeContext
from repro.model.message import Message
from repro.model.network import Network

#: The engine names :class:`Scheduler` accepts.  ``list`` is the
#: always-correct pinned fallback (the columnar engine below);
#: ``numpy`` is the vectorized backend (:mod:`repro.model.engine_numpy`);
#: ``auto`` picks numpy only when it imports *and* the algorithm
#: declares scalar payloads (:attr:`NodeAlgorithm.scalar_payloads`),
#: falling back to ``list`` otherwise — auto never raises on a missing
#: numpy.
ENGINES = ("list", "numpy", "auto")

#: Memoized numpy importability; ``None`` = not probed yet.  Tests
#: reset this to re-probe under a monkeypatched import failure.
_NUMPY_MEMO: bool | None = None


def numpy_available() -> bool:
    """True when numpy can be imported (probed once, memoized)."""
    global _NUMPY_MEMO
    if _NUMPY_MEMO is None:
        try:
            import numpy  # noqa: F401
        except Exception:
            _NUMPY_MEMO = False
        else:
            _NUMPY_MEMO = True
    return _NUMPY_MEMO


def require_numpy():
    """Import and return numpy, or raise :class:`EngineUnavailableError`."""
    if not numpy_available():
        raise EngineUnavailableError(
            "engine='numpy' requested but numpy cannot be imported; "
            "use engine='list' (the always-correct fallback) or "
            "engine='auto' (which degrades to it silently)"
        )
    import numpy

    return numpy

#: One composed message: ``(sender_index, port, payload)`` — the unit
#: the delivery-hook seam gates.  Sender index and port are the dense
#: network coordinates; ``row_start[sender] + port`` is the flat CSR
#: slot the engine flushes through.
Send = tuple[int, int, Any]


class DeliveryHook(Protocol):
    """The narrow seam adversarial execution models plug into.

    A hook never forks the engine: the scheduler still composes,
    flushes through the same flat stamp/payload columns, and
    materialises inboxes from them — the hook only decides *which*
    composed messages flush *when*, and which nodes the adversary
    crashes.  :mod:`repro.scenarios.models` implements the concrete
    models (bounded asynchrony, crash-stop, lossy links) on top of it.

    Contract notes:

    * ``gate`` receives this round's freshly composed sends and returns
      the sends to flush now; anything withheld (a backlog the hook
      owns) must resurface through a later ``gate`` or be reported via
      its own bookkeeping.  Dropping and duplicating are the hook's
      business — the engine delivers exactly what ``gate`` returns,
      except that a link (sender, port) carries at most one message per
      round: surplus sends on a busy link are handed back through
      ``requeue`` and should be re-gated later.
    * ``round_crashes`` is consulted once per round *before* compose;
      returned node indices are halted immediately and excluded from
      the run's outputs.  ``initially_crashed`` lets a hook re-apply
      crashes at the start of a follow-up run on the same agents
      (multi-stage programs keep one adversary timeline).
    """

    def begin_run(self, network: Network) -> None: ...

    def initially_crashed(self) -> Iterable[int]: ...

    def round_crashes(self, round_index: int) -> Iterable[int]: ...

    def gate(self, round_index: int, new_sends: list[Send]) -> list[Send]: ...

    def requeue(self, round_index: int, sends: list[Send]) -> None: ...

    def end_run(self, rounds: int, delivered: int) -> None: ...


@dataclass
class ExecutionResult:
    """Outcome of one simulated execution.

    Attributes
    ----------
    rounds:
        Number of synchronous rounds until global halting.
    messages_sent:
        Total messages delivered over the whole execution.
    outputs:
        Mapping node -> the node's declared output.
    max_message_size:
        Largest payload ``repr`` size observed (LOCAL ignores message
        size; reported so experiments can discuss CONGEST-feasibility).
        0 when the scheduler ran with ``audit_message_sizes=False``
        and no trace was recorded.
    trace:
        Optional list of all messages (populated when tracing is on).
    """

    rounds: int
    messages_sent: int
    outputs: dict[Hashable, Any]
    trace: list[Message] = field(default_factory=list)
    _max_message_size: int | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def max_message_size(self) -> int:
        if self._max_message_size is None:
            if self.trace:
                # Auditing was off but a trace exists — derive from it.
                self._max_message_size = max(
                    message.size_estimate() for message in self.trace
                )
            else:
                self._max_message_size = 0
        return self._max_message_size


class RoundArena:
    """Reusable flat buffers for the columnar round engine.

    One arena holds the receiver-side payload/stamp buffers and the
    per-node receive stamps, sized to the largest network seen so far
    (buffers only grow).  Its monotone ``clock`` supplies round stamps
    that are unique across every run sharing the arena, which is what
    makes reuse safe: a slot written by an earlier run can never carry
    a stamp equal to a later run's round.

    An arena is single-occupancy: nested runs (an algorithm that spins
    up an inner simulation from inside a callback) automatically fall
    back to a private arena instead of corrupting the outer run's
    buffers.
    """

    def __init__(self) -> None:
        self._payload_buf: list[Any] = []
        self._stamp_buf: list[int] = []
        self._recv_stamp: list[int] = []
        self._bcast_payload: list[Any] = []
        self._bcast_stamp: list[int] = []
        self._clock = 0
        self._in_use = False

    def lease(
        self, slots: int, n: int
    ) -> tuple[list[Any], list[int], list[int], list[Any], list[int]]:
        """Return the five buffers, grown to fit.

        ``(payload_buf, stamp_buf, recv_stamp, bcast_payload,
        bcast_stamp)`` — the first two sized by ``slots`` (directed
        slot count), the rest by ``n``.
        """
        if len(self._stamp_buf) < slots:
            grow = slots - len(self._stamp_buf)
            self._stamp_buf.extend([0] * grow)
            self._payload_buf.extend([None] * grow)
        if len(self._recv_stamp) < n:
            grow = n - len(self._recv_stamp)
            self._recv_stamp.extend([0] * grow)
            self._bcast_payload.extend([None] * grow)
            self._bcast_stamp.extend([0] * grow)
        return (
            self._payload_buf,
            self._stamp_buf,
            self._recv_stamp,
            self._bcast_payload,
            self._bcast_stamp,
        )

    def tick(self) -> int:
        """Advance the monotone clock and return a fresh round stamp."""
        self._clock += 1
        return self._clock

    def clear(self) -> None:
        """Drop payload references (stamps and the clock are kept).

        Payload slots retain references to the last run's payloads
        until overwritten; call this after a sweep so a long-lived
        arena does not pin large payloads in memory.
        """
        self._payload_buf = [None] * len(self._payload_buf)
        self._bcast_payload = [None] * len(self._bcast_payload)


#: The ambient shared arena, if a sweep installed one (see
#: :func:`shared_arena`).  ``None`` means every run leases a private
#: arena.
_ACTIVE_ARENA: ContextVar[RoundArena | None] = ContextVar(
    "repro_round_arena", default=None
)

#: The ambient engine choice.  A :class:`Scheduler` constructed without
#: an explicit ``engine=`` reads this, so callers that never construct
#: schedulers themselves (the spec executor, deep solver internals) can
#: still select the backend for everything beneath them (see
#: :func:`engine_override`).  The default is the list engine — the
#: pinned, always-correct fallback.
_ACTIVE_ENGINE: ContextVar[str] = ContextVar("repro_engine", default="list")


@contextmanager
def engine_override(engine: str | None) -> Iterator[str]:
    """Install ``engine`` as the ambient engine for the ``with`` block.

    Every :class:`Scheduler` constructed without an explicit
    ``engine=`` inside the block uses it — the seam the batch executor
    (:func:`repro.api.run`'s ``engine=``) selects backends through
    without touching spec fingerprints.  ``None`` is a no-op (the
    ambient engine is left as is), so callers can pass their own
    optional engine argument straight through.
    """
    if engine is None:
        yield _ACTIVE_ENGINE.get()
        return
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    token = _ACTIVE_ENGINE.set(engine)
    try:
        yield engine
    finally:
        _ACTIVE_ENGINE.reset(token)


def resolve_engine(requested: str | None, algorithm: NodeAlgorithm) -> str:
    """Resolve an engine request to the backend that will actually run.

    ``None`` reads the ambient engine (:func:`engine_override`,
    default ``list``).  ``numpy`` is loud: it raises
    :class:`~repro.errors.EngineUnavailableError` when numpy is
    missing.  ``auto`` is silent: numpy only when it imports *and*
    ``algorithm`` declares scalar payloads
    (:attr:`~repro.model.algorithm.NodeAlgorithm.scalar_payloads`) —
    the regime where the vectorized payload columns apply — and the
    list engine otherwise.
    """
    engine = _ACTIVE_ENGINE.get() if requested is None else requested
    if engine == "list":
        return "list"
    if engine == "numpy":
        require_numpy()
        return "numpy"
    if engine == "auto":
        if numpy_available() and getattr(algorithm, "scalar_payloads", False):
            return "numpy"
        return "list"
    raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")


@contextmanager
def shared_arena(arena: RoundArena | None = None) -> Iterator[RoundArena]:
    """Install ``arena`` (or a fresh one) as the ambient arena.

    Every :class:`Scheduler` constructed without an explicit ``arena=``
    inside the ``with`` block reuses these buffers, so a sweep of many
    cells pays for buffer allocation once.  The arena's payload slots
    are cleared on exit.
    """
    active = arena if arena is not None else RoundArena()
    token = _ACTIVE_ARENA.set(active)
    try:
        yield active
    finally:
        _ACTIVE_ARENA.reset(token)
        active.clear()


def build_contexts(
    network: Network, algorithm: NodeAlgorithm
) -> tuple[list[NodeContext], list[int]]:
    """Batched context construction for one run.

    Builds all :class:`NodeContext` objects from the network's compiled
    tables in one pass, runs ``initialize`` on each, and returns the
    contexts (indexed by dense node index) plus the initial active set
    (indices of nodes that did not halt during initialisation, in
    canonical order).
    """
    nodes = network.nodes()
    degrees = network.degree_table()
    ids = network.ids_by_index()
    n = network.n
    delta = network.max_degree
    contexts = [
        NodeContext(
            node=nodes[index],
            unique_id=ids[index],
            degree=degrees[index],
            n=n,
            max_degree=delta,
        )
        for index in range(n)
    ]
    initialize = algorithm.initialize
    for ctx in contexts:
        initialize(ctx)
    active = [index for index in range(n) if not contexts[index].halted]
    return contexts, active


#: Sentinel for the per-outbox "same object as the previous payload"
#: audit skip; never a user payload.
_UNSEEN = object()


class Scheduler:
    """Runs a :class:`NodeAlgorithm` on a :class:`Network`.

    Parameters
    ----------
    network:
        The network to run on.
    max_rounds:
        Hard budget; exceeding it raises :class:`RoundLimitExceededError`.
    record_trace:
        When ``True``, every message is kept in the result's trace
        (memory-heavy; meant for tests and small demos).
    audit_message_sizes:
        When ``True`` (default), ``ExecutionResult.max_message_size``
        is tracked with a per-distinct-payload ``repr`` memo (at most
        one dict probe per message, one per *distinct consecutive*
        payload within an outbox).  ``False`` skips the audit entirely
        — the fastest mode for pure LOCAL runs that never inspect
        message sizes.
    record_send_log:
        When ``True``, the raw send columns ``(round, sender_slot,
        payload)`` of every message are retained on the scheduler
        (:meth:`send_log`) — the columnar, envelope-free alternative to
        ``record_trace`` that the CONGEST audit reads.
    arena:
        Buffer arena to lease from.  ``None`` uses the ambient arena
        installed by :func:`shared_arena`, or a private one.  (The
        numpy engine leases its own
        :class:`~repro.model.engine_numpy.NumpyRoundArena` instead;
        pass one explicitly — or install one via
        :func:`~repro.model.engine_numpy.shared_numpy_arena` — to
        share buffers across numpy runs.)
    engine:
        Execution backend: ``"list"`` (the pinned always-correct
        columnar engine below), ``"numpy"`` (the vectorized backend,
        :mod:`repro.model.engine_numpy`; raises
        :class:`~repro.errors.EngineUnavailableError` when numpy is
        missing), or ``"auto"`` (numpy only when it imports and the
        algorithm declares
        :attr:`~repro.model.algorithm.NodeAlgorithm.scalar_payloads`).
        ``None`` (the default) reads the ambient engine installed by
        :func:`engine_override` — ``"list"`` unless overridden.
        Engine choice never changes observable results: the
        equivalence suite pins numpy == list == reference bit for bit.
    delivery_hook:
        Optional :class:`DeliveryHook` realising an adversarial
        execution model (see :mod:`repro.scenarios`).  ``None`` (the
        default) runs the untouched synchronous fast path — the hooked
        loop is a separate method, so the hook costs nothing when
        absent.  With a hook installed, ``messages_sent`` counts
        messages actually *flushed* into the delivery columns (dropped
        and still-deferred messages are the hook's bookkeeping), the
        trace/send-log record deliveries rather than sends, and
        ``ExecutionResult.outputs`` covers surviving (non-crashed)
        nodes only.
    """

    def __init__(
        self,
        network: Network,
        *,
        max_rounds: int = 10_000,
        record_trace: bool = False,
        audit_message_sizes: bool = True,
        record_send_log: bool = False,
        arena: RoundArena | None = None,
        engine: str | None = None,
        delivery_hook: DeliveryHook | None = None,
    ) -> None:
        if engine is not None and engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
        self._network = network
        self._max_rounds = max_rounds
        self._record_trace = record_trace
        self._audit_message_sizes = audit_message_sizes
        self._record_send_log = record_send_log
        self._arena = arena
        self._engine = engine
        self._delivery_hook = delivery_hook
        self._send_log: tuple[list[int], list[int], list[Any]] | None = None

    def send_log(self) -> tuple[list[int], list[int], list[Any]]:
        """The last run's send columns ``(round, sender_slot, payload)``.

        ``sender_slot`` is the flat CSR index ``row_start[i] + port``
        of the sending (node, port) pair; resolve it against
        :meth:`Network.delivery_columns` / :meth:`Network.row_start_table`.
        Only populated when the scheduler was built with
        ``record_send_log=True``.
        """
        if self._send_log is None:
            raise RuntimeError(
                "no send log recorded; construct the Scheduler with "
                "record_send_log=True and run it first"
            )
        return self._send_log

    def run(self, algorithm: NodeAlgorithm) -> ExecutionResult:
        """Execute ``algorithm`` to global halting and return the result."""
        if resolve_engine(self._engine, algorithm) == "numpy":
            from repro.model import engine_numpy

            return engine_numpy.execute(self, algorithm)
        if self._delivery_hook is not None:
            return self._run_hooked(algorithm)
        network = self._network
        nodes = network.nodes()
        degrees = network.degree_table()
        row_start, col_receiver, _col_port, col_dest = (
            network.delivery_columns()
        )
        neighbor_rows = network.neighbor_index_rows()
        n = network.n

        contexts, active = build_contexts(network, algorithm)

        arena = self._arena
        if arena is None:
            arena = _ACTIVE_ARENA.get()
        if arena is None or arena._in_use:
            arena = RoundArena()
        payload_buf, stamp_buf, recv_stamp, bcast_payload, bcast_stamp = (
            arena.lease(row_start[n], n)
        )
        bcast_payload_get = bcast_payload.__getitem__
        bcast_stamp_get = bcast_stamp.__getitem__
        arena._in_use = True
        # Canonical port sets per degree: a full outbox keyed exactly
        # by {0 .. deg-1} is eligible for the broadcast column.  The
        # keys-view comparison is one C set-equality per sender with no
        # allocation.
        port_sets = {
            degree: frozenset(range(degree)) for degree in set(degrees)
        }

        rounds = 0
        messages_sent = 0
        trace: list[Message] = []
        trace_append = trace.append
        record_trace = self._record_trace
        audit = self._audit_message_sizes
        # repr-size memo keyed by type then value: equal payloads of
        # different types (1 vs 1.0 vs True) repr differently.
        size_memo: dict[type, dict[Any, int]] = {}
        max_message_size = 0
        max_rounds = self._max_rounds
        compose = algorithm.compose_messages
        receive = algorithm.receive_messages
        # A failed run must not leave an earlier run's log readable.
        self._send_log = None
        log_cols: tuple[list[int], list[int], list[Any]] | None = None
        if self._record_send_log:
            log_cols = ([], [], [])
            log_round_append = log_cols[0].append
            log_slot_append = log_cols[1].append
            log_payload_append = log_cols[2].append
        # Tracing needs one record per message in send order, so it
        # forces every outbox through the per-message push path.
        slow_path = record_trace or log_cols is not None

        try:
            while active:
                if rounds >= max_rounds:
                    stuck = [nodes[index] for index in active[:5]]
                    raise RoundLimitExceededError(
                        f"round budget {max_rounds} exhausted; "
                        f"non-halted nodes include {stuck!r}"
                    )
                rounds += 1
                stamp = arena.tick()
                any_broadcast = False
                any_push = False

                # Phase 1: all active nodes compose against start-of-
                # round state.  A uniform full outbox lands in the
                # broadcast column in O(1); anything else is pushed
                # payload by payload into flat receiver slots.  No
                # inbox dicts exist during the send phase.
                for index in active:
                    ctx = contexts[index]
                    if ctx.halted:
                        continue
                    outbox = compose(ctx)
                    if not outbox:
                        continue
                    degree = degrees[index]
                    broadcast = None
                    if (
                        len(outbox) == degree
                        and not slow_path
                        and outbox.keys() == port_sets[degree]
                    ):
                        # Identity, not equality: every port must carry
                        # the *same object* (checked at C speed via the
                        # id set), so ==-equal but distinct payloads
                        # (1 vs 1.0, per-port tuples) keep the exact
                        # per-port delivery and size accounting of the
                        # reference.
                        values = list(outbox.values())
                        candidate = values[0]
                        if degree == 1 or len(set(map(id, values))) == 1:
                            broadcast = candidate
                    if broadcast is not None:
                        bcast_payload[index] = broadcast
                        bcast_stamp[index] = stamp
                        any_broadcast = True
                        messages_sent += degree
                        payload = broadcast
                    else:
                        any_push = True
                        base = row_start[index]
                        prev = _UNSEEN
                        for port, payload in outbox.items():
                            if not 0 <= port < degree:
                                ctx.require_port(port)  # raises
                            idx = base + port
                            slot = col_dest[idx]
                            payload_buf[slot] = payload
                            stamp_buf[slot] = stamp
                            receiver = col_receiver[idx]
                            if recv_stamp[receiver] != stamp:
                                recv_stamp[receiver] = stamp
                            if audit and payload is not prev:
                                prev = payload
                                try:
                                    size = size_memo[payload.__class__][
                                        payload
                                    ]
                                except TypeError:  # unhashable
                                    size = len(repr(payload))
                                except KeyError:
                                    size = len(repr(payload))
                                    try:
                                        size_memo.setdefault(
                                            payload.__class__, {}
                                        )[payload] = size
                                    except TypeError:  # unhashable
                                        pass
                                if size > max_message_size:
                                    max_message_size = size
                            if slow_path:
                                if record_trace:
                                    trace_append(
                                        Message(
                                            sender=nodes[index],
                                            receiver=nodes[receiver],
                                            round_index=rounds,
                                            payload=payload,
                                        )
                                    )
                                if log_cols is not None:
                                    log_round_append(rounds)
                                    log_slot_append(idx)
                                    log_payload_append(payload)
                        messages_sent += len(outbox)
                        continue
                    # Broadcast audit: every copy is the same object,
                    # so one memo probe accounts for all deg messages.
                    if audit:
                        try:
                            size = size_memo[payload.__class__][payload]
                        except TypeError:  # unhashable: size directly
                            size = len(repr(payload))
                        except KeyError:
                            size = len(repr(payload))
                            try:
                                size_memo.setdefault(
                                    payload.__class__, {}
                                )[payload] = size
                            except TypeError:  # unhashable: no memo
                                pass
                        if size > max_message_size:
                            max_message_size = size

                # Phase 2: simultaneous delivery and state transition.
                # Each receiver materialises its inbox from contiguous
                # columns in one pass — pushed slices, pulled broadcast
                # gathers, or a port-by-port merge of both.  A node that
                # halted during its own compose is skipped, same as the
                # reference.
                next_active: list[int] = []
                next_active_append = next_active.append
                for index in active:
                    ctx = contexts[index]
                    if ctx.halted:
                        continue
                    pushed = any_push and recv_stamp[index] == stamp
                    if not any_broadcast:
                        if not pushed:
                            receive(ctx, {})
                            if not ctx.halted:
                                next_active_append(index)
                            continue
                        base = row_start[index]
                        end = row_start[index + 1]
                        stamps = stamp_buf[base:end]
                        width = end - base
                        if stamps.count(stamp) == width:
                            inbox = dict(enumerate(payload_buf[base:end]))
                        else:
                            payloads = payload_buf[base:end]
                            inbox = {
                                port: payloads[port]
                                for port in range(width)
                                if stamps[port] == stamp
                            }
                    else:
                        sources = neighbor_rows[index]
                        pulled = list(map(bcast_stamp_get, sources))
                        width = len(sources)
                        if not pushed:
                            hits = pulled.count(stamp)
                            if hits == width:
                                inbox = dict(
                                    enumerate(
                                        map(bcast_payload_get, sources)
                                    )
                                )
                            elif hits == 0:
                                inbox = {}
                            else:
                                inbox = {
                                    port: bcast_payload[source]
                                    for port, source in enumerate(sources)
                                    if pulled[port] == stamp
                                }
                        else:
                            # Mixed round: each port has exactly one
                            # sender, so push and pull entries are
                            # disjoint; merge in port order.
                            base = row_start[index]
                            inbox = {}
                            for port in range(width):
                                slot = base + port
                                if stamp_buf[slot] == stamp:
                                    inbox[port] = payload_buf[slot]
                                elif pulled[port] == stamp:
                                    inbox[port] = bcast_payload[
                                        sources[port]
                                    ]
                    receive(ctx, inbox)
                    if not ctx.halted:
                        next_active_append(index)
                active = next_active
        finally:
            arena._in_use = False

        if log_cols is not None:
            self._send_log = log_cols
        output = algorithm.output
        outputs = {ctx.node: output(ctx) for ctx in contexts}
        return ExecutionResult(
            rounds=rounds,
            messages_sent=messages_sent,
            outputs=outputs,
            trace=trace,
            _max_message_size=max_message_size if audit else None,
        )

    def _run_hooked(self, algorithm: NodeAlgorithm) -> ExecutionResult:
        """The gated round loop behind the delivery-hook seam.

        Same compose → flush → receive cycle over the same flat
        stamp/payload columns as the fast path, with three differences:
        every outbox takes the per-message push path (a hook gates
        individual messages, so the broadcast column does not apply),
        composed sends are flushed only when the hook's ``gate``
        releases them (withheld sends carry over inside the hook and
        re-enter through later gates — the monotone stamps make late
        flushes indistinguishable from fresh ones), and the hook may
        crash nodes at the start of any round.  Crashed nodes stop
        composing and receiving immediately and are excluded from
        ``outputs``; survivors keep running against whatever stale
        state their inboxes reflect.
        """
        network = self._network
        nodes = network.nodes()
        degrees = network.degree_table()
        row_start, col_receiver, _col_port, col_dest = (
            network.delivery_columns()
        )
        n = network.n
        hook = self._delivery_hook
        assert hook is not None

        contexts, active = build_contexts(network, algorithm)

        arena = self._arena
        if arena is None:
            arena = _ACTIVE_ARENA.get()
        if arena is None or arena._in_use:
            arena = RoundArena()
        payload_buf, stamp_buf, recv_stamp, _bcast_payload, _bcast_stamp = (
            arena.lease(row_start[n], n)
        )
        arena._in_use = True

        hook.begin_run(network)
        crashed: set[int] = set()
        for index in hook.initially_crashed():
            crashed.add(index)
            contexts[index].halt()
        if crashed:
            active = [index for index in active if index not in crashed]

        rounds = 0
        messages_sent = 0
        trace: list[Message] = []
        trace_append = trace.append
        record_trace = self._record_trace
        audit = self._audit_message_sizes
        size_memo: dict[type, dict[Any, int]] = {}
        max_message_size = 0
        max_rounds = self._max_rounds
        compose = algorithm.compose_messages
        receive = algorithm.receive_messages
        self._send_log = None
        log_cols: tuple[list[int], list[int], list[Any]] | None = None
        if self._record_send_log:
            log_cols = ([], [], [])

        try:
            while active:
                if rounds >= max_rounds:
                    stuck = [nodes[index] for index in active[:5]]
                    raise RoundLimitExceededError(
                        f"round budget {max_rounds} exhausted; "
                        f"non-halted nodes include {stuck!r}"
                    )
                rounds += 1
                stamp = arena.tick()

                # Adversary phase: crashes take effect before compose,
                # so a node crashed in round r sends nothing in r.
                for index in hook.round_crashes(rounds):
                    if index not in crashed:
                        crashed.add(index)
                        contexts[index].halt()

                # Compose phase: collect this round's sends without
                # touching the buffers — delivery is the gate's call.
                new_sends: list[Send] = []
                new_sends_append = new_sends.append
                for index in active:
                    ctx = contexts[index]
                    if ctx.halted:
                        continue
                    outbox = compose(ctx)
                    if not outbox:
                        continue
                    degree = degrees[index]
                    for port, payload in outbox.items():
                        if not 0 <= port < degree:
                            ctx.require_port(port)  # raises
                        new_sends_append((index, port, payload))

                # Flush phase: exactly the sends the hook releases land
                # in the flat columns.  A link carries one message per
                # round — surplus sends on a busy link go back to the
                # hook and re-enter through a later gate.
                busy: list[Send] = []
                for send in hook.gate(rounds, new_sends):
                    sender, port, payload = send
                    idx = row_start[sender] + port
                    slot = col_dest[idx]
                    if stamp_buf[slot] == stamp:
                        busy.append(send)
                        continue
                    payload_buf[slot] = payload
                    stamp_buf[slot] = stamp
                    receiver = col_receiver[idx]
                    if recv_stamp[receiver] != stamp:
                        recv_stamp[receiver] = stamp
                    messages_sent += 1
                    if audit:
                        try:
                            size = size_memo[payload.__class__][payload]
                        except TypeError:  # unhashable
                            size = len(repr(payload))
                        except KeyError:
                            size = len(repr(payload))
                            try:
                                size_memo.setdefault(
                                    payload.__class__, {}
                                )[payload] = size
                            except TypeError:  # unhashable
                                pass
                        if size > max_message_size:
                            max_message_size = size
                    if record_trace:
                        trace_append(
                            Message(
                                sender=nodes[sender],
                                receiver=nodes[receiver],
                                round_index=rounds,
                                payload=payload,
                            )
                        )
                    if log_cols is not None:
                        log_cols[0].append(rounds)
                        log_cols[1].append(idx)
                        log_cols[2].append(payload)
                if busy:
                    hook.requeue(rounds, busy)

                # Receive phase: pushed slices only (no broadcast
                # column in hooked mode), same stamp-gated materialise
                # as the fast path's push branch.
                next_active: list[int] = []
                next_active_append = next_active.append
                for index in active:
                    ctx = contexts[index]
                    if ctx.halted:
                        continue
                    if recv_stamp[index] == stamp:
                        base = row_start[index]
                        end = row_start[index + 1]
                        stamps = stamp_buf[base:end]
                        payloads = payload_buf[base:end]
                        inbox = {
                            port: payloads[port]
                            for port in range(end - base)
                            if stamps[port] == stamp
                        }
                    else:
                        inbox = {}
                    receive(ctx, inbox)
                    if not ctx.halted:
                        next_active_append(index)
                active = next_active
        finally:
            arena._in_use = False
            hook.end_run(rounds, messages_sent)

        if log_cols is not None:
            self._send_log = log_cols
        output = algorithm.output
        outputs = {
            ctx.node: output(ctx)
            for index, ctx in enumerate(contexts)
            if index not in crashed
        }
        return ExecutionResult(
            rounds=rounds,
            messages_sent=messages_sent,
            outputs=outputs,
            trace=trace,
            _max_message_size=max_message_size if audit else None,
        )


def run_on_graph(
    algorithm: NodeAlgorithm,
    graph,
    *,
    ids=None,
    max_rounds: int = 10_000,
    record_trace: bool = False,
) -> ExecutionResult:
    """One-shot convenience wrapper: build the network and run."""
    network = Network(graph, ids=ids)
    scheduler = Scheduler(
        network, max_rounds=max_rounds, record_trace=record_trace
    )
    return scheduler.run(algorithm)
