"""Synchronous LOCAL-model simulator.

The paper's computational model (Section 2.2) is the standard LOCAL
model: a synchronous message-passing network where, per round, every
node may exchange one unbounded message with each neighbor and perform
arbitrary local computation.  This package implements that model
directly:

* :class:`repro.model.network.Network` — the communication graph with
  unique IDs and port numbering;
* :class:`repro.model.algorithm.NodeAlgorithm` — the programming
  interface a distributed algorithm implements (init / send / receive /
  halt / output);
* :class:`repro.model.scheduler.Scheduler` — the synchronous round
  loop, with round and message accounting and a round budget.  This is
  the *columnar round engine*: delivery runs over the flat CSR columns
  the network compiles at construction (dense node indices,
  receiver / destination-slot columns, cached ``n``/``Δ``), uniform
  broadcasts collapse into a per-sender column, inboxes materialise
  from contiguous buffer slices, and the flat buffers pool in a
  :class:`repro.model.scheduler.RoundArena` that sweeps share across
  cells (:func:`repro.model.scheduler.shared_arena`);
* :func:`repro.model.reference.reference_run` — the original seed loop
  kept as the slow oracle; equivalence tests pin the fast path to it
  bit-for-bit (``rounds``, ``messages_sent``, ``outputs``);
* :mod:`repro.model.edge_network` — adapter to run node algorithms on
  the *line graph*, which is how the edge coloring subroutines execute
  (one line-graph round costs O(1) rounds of the underlying graph,
  since both endpoints of an edge can relay for it).

The *primitive* subroutines (Cole-Vishkin, the Linial color reduction
step, the greedy class sweep) ship in two equivalent forms: a
message-passing :class:`NodeAlgorithm` that runs on this simulator, and
a faster functional form used inside the recursive solver.  Tests
cross-validate the two forms round-for-round on shared instances.
"""

from repro.model.algorithm import NodeAlgorithm, NodeContext
from repro.model.message import Message
from repro.model.network import Network
from repro.model.reference import reference_run
from repro.model.scheduler import (
    ExecutionResult,
    RoundArena,
    Scheduler,
    shared_arena,
)
from repro.model.edge_network import line_graph_network

__all__ = [
    "NodeAlgorithm",
    "NodeContext",
    "Message",
    "Network",
    "ExecutionResult",
    "RoundArena",
    "Scheduler",
    "line_graph_network",
    "reference_run",
    "shared_arena",
]
