"""Running node algorithms on the line graph.

The paper's edge coloring subroutines are naturally *vertex* algorithms
on the line graph ``L(G)``: each edge acts as an agent, and two agents
are adjacent iff their edges share a node of ``G``.  In the LOCAL model
a round of ``L(G)`` costs ``O(1)`` rounds of ``G`` (each endpoint of an
edge relays for it), so measuring rounds on the line-graph network
preserves asymptotics exactly — this is the standard reduction and the
paper uses it implicitly throughout.

Edge IDs are derived from endpoint IDs via a pairing into the range
``{1, ..., (2 * max_id)^2}``, preserving the model's polynomial ID
space (edge IDs are ``n^{O(1)}`` whenever node IDs are).

The returned :class:`~repro.model.network.Network` is a *compiled*
network like any other: the line graph's (tuple-labelled) nodes are
sorted once, indexed densely, and get the full columnar delivery
layout (CSR ``row_start`` plus receiver / receiver-port / destination-
slot columns — see :meth:`~repro.model.network.Network.delivery_columns`),
so edge-agent simulations run on the same columnar scheduler path as
node simulations, flat buffers and all.
"""

from __future__ import annotations

from typing import Hashable, Mapping

import networkx as nx

from repro.graphs.edges import Edge, edge_set
from repro.graphs.line_graph import line_graph
from repro.graphs.properties import sorted_nodes
from repro.model.network import Network


def edge_identifier(
    edge: Edge, node_ids: Mapping[Hashable, int], max_id: int
) -> int:
    """Return a unique positive ID for ``edge`` from its endpoint IDs.

    Uses the injective pairing ``min_id * (max_id + 1) + max_id_of_edge``
    over the node-ID space, so distinct edges always receive distinct
    IDs and the ID space stays polynomial.
    """
    u, v = edge
    id_u, id_v = node_ids[u], node_ids[v]
    low, high = min(id_u, id_v), max(id_u, id_v)
    return low * (max_id + 1) + high


def line_graph_network(
    graph: nx.Graph, node_ids: Mapping[Hashable, int] | None = None
) -> Network:
    """Return a :class:`Network` whose nodes are the edges of ``graph``.

    Parameters
    ----------
    graph:
        The underlying communication graph ``G``.
    node_ids:
        Node IDs of ``G``; defaults to the sorted assignment.  Edge IDs
        are derived from them (see :func:`edge_identifier`).
    """
    if node_ids is None:
        ordered = sorted_nodes(graph)
        node_ids = {node: index + 1 for index, node in enumerate(ordered)}
    max_id = max(node_ids.values(), default=0)
    lg = line_graph(graph)
    ids = {
        edge: edge_identifier(edge, node_ids, max_id) for edge in edge_set(graph)
    }
    return Network(lg, ids=ids)
