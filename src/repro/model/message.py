"""Messages exchanged by simulated nodes.

The LOCAL model places no bound on message size, so payloads are
arbitrary Python objects.  The simulator still wraps them in a
:class:`Message` envelope recording sender and round, both for
debugging traces and so tests can assert on communication patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable


@dataclass(frozen=True)
class Message:
    """A single directed message delivered in one synchronous round.

    Attributes
    ----------
    sender:
        Label of the sending node.
    receiver:
        Label of the receiving node (always a neighbor of ``sender``).
    round_index:
        The 1-based round in which the message was sent (and, the model
        being synchronous, received).
    payload:
        Arbitrary content; the LOCAL model allows unbounded messages.
    """

    sender: Hashable
    receiver: Hashable
    round_index: int
    payload: Any

    def size_estimate(self) -> int:
        """Return a rough payload size (repr length).

        The LOCAL model ignores message size, but the simulator reports
        this in traces so experiments can *observe* how far an
        algorithm is from the CONGEST regime — a question the paper
        explicitly leaves open.

        Computed on first access and cached (``repr`` of a large
        payload is not free; traces that never ask for sizes should
        never pay for them).
        """
        cached = self.__dict__.get("_size_estimate")
        if cached is None:
            cached = len(repr(self.payload))
            # The dataclass is frozen; go through __dict__ directly for
            # the private cache slot.
            object.__setattr__(self, "_size_estimate", cached)
        return cached
