"""The programming interface of a simulated distributed algorithm.

An algorithm is written from the perspective of a single node, exactly
as in the LOCAL model: the node knows ``n``, ``Δ``, its own unique ID,
and its ports; everything else must arrive through messages.  The
scheduler drives all nodes through synchronous rounds:

1. ``initialize(ctx)`` — once, before round 1 (local computation only);
2. per round: ``compose_messages(ctx)`` — return the messages to send
   this round, keyed by port;
3. per round: ``receive_messages(ctx, inbox)`` — handle the messages
   that arrived (keyed by port), update state, possibly halt;
4. ``output(ctx)`` — after halting, the node's part of the solution.

The split into compose/receive enforces the synchronous semantics: all
sends of a round happen against the state at the *start* of the round.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping

from repro.errors import ModelViolationError


@dataclass
class NodeContext:
    """Everything a node legitimately knows, plus its private state.

    Attributes
    ----------
    node:
        The node's label in the simulation (not visible to a real LOCAL
        node; exposed for debugging only — algorithms should key their
        logic on ``unique_id`` and ports).
    unique_id:
        The node's unique identifier from ``{1, ..., n^{O(1)}}``.
    degree:
        Number of incident ports.
    port_count:
        Alias of ``degree`` (ports are ``0 .. degree-1``).
    n:
        Number of nodes in the network (known in the LOCAL model).
    max_degree:
        ``Δ`` of the network (known in the LOCAL model).
    state:
        Private mutable state dictionary for the algorithm.
    halted:
        Set by the algorithm when the node is finished.  A halted node
        neither sends nor receives.
    """

    node: Hashable
    unique_id: int
    degree: int
    n: int
    max_degree: int
    state: dict[str, Any] = field(default_factory=dict)
    halted: bool = False

    @property
    def port_count(self) -> int:
        return self.degree

    def halt(self) -> None:
        """Mark this node as finished (idempotent)."""
        self.halted = True

    def require_port(self, port: int) -> None:
        """Raise unless ``port`` is a valid port number of this node."""
        if not 0 <= port < self.degree:
            raise ModelViolationError(
                f"node {self.node!r} used invalid port {port} "
                f"(has {self.degree} ports)"
            )


class NodeAlgorithm(abc.ABC):
    """Base class for LOCAL algorithms run by the scheduler.

    Subclasses override the three hooks below.  The same *instance* is
    shared across all nodes (algorithms are uniform); all per-node data
    must live in ``ctx.state``.
    """

    #: Declares that every payload this algorithm ever composes is a
    #: plain Python ``int`` (not ``bool``, not arbitrarily large).
    #: Purely an execution hint: ``engine="auto"`` picks the vectorized
    #: numpy backend only for algorithms that opt in here, because
    #: scalar payloads are what its array-typed (and memory-mappable)
    #: payload columns apply to.  The declaration never changes
    #: results — the numpy engine verifies it per round and demotes to
    #: object columns if a non-int payload shows up anyway.
    scalar_payloads: bool = False

    def initialize(self, ctx: NodeContext) -> None:
        """Set up per-node state before the first round (optional)."""

    @abc.abstractmethod
    def compose_messages(self, ctx: NodeContext) -> Mapping[int, Any]:
        """Return this round's outgoing payloads, keyed by port.

        Ports without an entry send nothing.  Returning an empty
        mapping is allowed — a node may stay silent and still receive.
        """

    @abc.abstractmethod
    def receive_messages(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        """Process this round's incoming payloads, keyed by port.

        This is where state transitions happen; call ``ctx.halt()``
        when the node has computed its part of the output.
        """

    @abc.abstractmethod
    def output(self, ctx: NodeContext) -> Any:
        """Return the node's part of the solution (after halting)."""
