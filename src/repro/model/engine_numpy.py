"""The vectorized (numpy) execution backend of :class:`Scheduler`.

This module is the ``engine="numpy"`` target of the engine seam in
:mod:`repro.model.scheduler`.  It runs the *same* synchronous round
semantics as the list engine — compose against start-of-round state,
simultaneous delivery, receive — and is pinned bit-for-bit against it
(and transitively against :mod:`repro.model.reference`) by the
equivalence suite.  What changes is purely *how* the push path moves
payloads:

* the network's CSR delivery columns are compiled once into ``int64``
  ndarrays (:meth:`Network.delivery_columns_np`);
* during compose, pushed sends cost two list appends each (flat
  destination slot + payload) instead of three list indexings and
  three stores;
* at the end of the send phase the whole round flushes as **one
  fancy-indexed scatter** per column: ``stamp_buf[slots] = stamp`` and
  a single payload scatter, with the round's pushed receivers derived
  by a vectorized ``searchsorted`` against ``row_start``;
* inbox materialisation gathers contiguous ndarray slices and converts
  them with ``.tolist()`` (C speed), then reuses the list engine's
  stamp-gated dict construction verbatim.

Payload columns: scalar vs object
---------------------------------
Payloads live in one of two flat columns per round:

* the **scalar column** (``int64``) when every pushed payload of the
  round is a plain Python ``int`` — checked per payload with
  ``type(p) is int``, which deliberately excludes ``bool`` (it would
  silently become ``1``) and anything float-ish (silent truncation);
  an ``int`` too large for 64 bits raises ``OverflowError`` at the
  scatter, which is caught;
* the **object column** otherwise.  The engine starts scalar and
  *demotes* to the object column permanently on the first offending
  payload — demotion needs no copying because the choice is made per
  round before the scatter, and stamp gating means slots written in
  earlier rounds are already dead.

``.tolist()`` at the materialisation boundary converts ``int64`` cells
back to Python ints (bit-identical values) and returns the *original
objects* from the object column, so payload identity semantics are
unchanged where the list engine preserves them.

The broadcast column is **not** vectorized: it stays the list engine's
per-sender Python cell (one stamped write per broadcasting node,
O(active) not O(messages)), both because it is already C-speed and
because it must deliver the sender's original payload object.

Memory-mapped arenas
--------------------
:class:`NumpyRoundArena` owns the flat columns.  For 100k+-node
instances the ``int64`` stamp/scalar columns can be backed by
``np.memmap`` over an anonymous tempfile (``memmap="auto"`` switches
on at :data:`MEMMAP_THRESHOLD_SLOTS` slots), so enormous runs do not
pin resident buffers; the object column cannot be memory-mapped (it
holds references) and stays in RAM, but scalar-payload algorithms —
the regime ``engine="auto"`` vectorizes — never allocate it.  Growing
a leased arena allocates fresh zero buffers: the arena's monotone
clock guarantees a zero stamp is never a live round stamp, so neither
recycling nor regrowth can leak stale payloads (same argument as the
list arena).

Determinism
-----------
Everything order-sensitive is inherited unchanged: nodes compose in
the canonical sort order, inboxes are built in ascending port order
(identical to the reference loop's insertion order), broadcast
eligibility uses the same object-identity and port-set tests, the
audit memo walks payloads in the same order, and the hooked path keeps
the gate's send order with first-occurrence-wins busy-link semantics
(``np.unique(..., return_index=True)``) and original-order requeue.
"""

from __future__ import annotations

import tempfile
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator

from repro.errors import RoundLimitExceededError
from repro.model.algorithm import NodeAlgorithm
from repro.model.message import Message
from repro.model.scheduler import (
    ExecutionResult,
    Send,
    _UNSEEN,
    build_contexts,
    require_numpy,
)

#: ``memmap="auto"`` backs the int64 columns with a tempfile once a
#: network has at least this many directed slots (2m).  2^21 slots is
#: 16 MiB per column — roughly the point where per-run resident buffers
#: start to matter next to the payload objects themselves.
MEMMAP_THRESHOLD_SLOTS = 1 << 21


class NumpyRoundArena:
    """Reusable flat ndarray buffers for the vectorized round engine.

    The numpy counterpart of :class:`~repro.model.scheduler.RoundArena`
    with the same safety story: a monotone ``clock`` stamps every
    round, stamps are never reused across runs sharing the arena, and
    the arena is single-occupancy (a nested run falls back to a private
    arena).  Columns:

    * ``stamp_buf`` — ``int64``, one cell per directed slot;
    * the scalar payload column — ``int64``, allocated lazily on the
      first scalar flush;
    * the object payload column — ``dtype=object``, allocated lazily on
      the first non-scalar flush; never memory-mapped;
    * the broadcast payload/stamp cells — plain Python lists (the
      broadcast path is shared with the list engine).

    Parameters
    ----------
    memmap:
        ``"auto"`` (default) backs the ``int64`` columns with
        ``np.memmap`` over an unlinked tempfile once the slot count
        reaches :data:`MEMMAP_THRESHOLD_SLOTS`; ``True`` always does;
        ``False`` never does.
    """

    def __init__(self, *, memmap: bool | str = "auto") -> None:
        if memmap not in (True, False, "auto"):
            raise ValueError(
                f"memmap must be True, False or 'auto', got {memmap!r}"
            )
        self._memmap = memmap
        self._slots = 0
        self._stamp_buf: Any = None
        self._scalar_buf: Any = None
        self._object_buf: Any = None
        self._bcast_payload: list[Any] = []
        self._bcast_stamp: list[int] = []
        self._files: list[Any] = []
        self._clock = 0
        self._in_use = False

    # -- allocation -----------------------------------------------------

    def _uses_memmap(self, slots: int) -> bool:
        if self._memmap == "auto":
            return slots >= MEMMAP_THRESHOLD_SLOTS
        return bool(self._memmap)

    def _int64_column(self, slots: int):
        np = require_numpy()
        if self._uses_memmap(slots):
            # An unlinked tempfile: freed by the OS when the arena (or
            # the mapping) goes away, invisible in the filesystem.
            backing = tempfile.TemporaryFile()
            self._files.append(backing)
            return np.memmap(backing, dtype=np.int64, mode="w+", shape=(slots,))
        return np.zeros(slots, dtype=np.int64)

    def lease(self, slots: int, n: int):
        """Return ``(stamp_buf, bcast_payload, bcast_stamp)`` grown to fit.

        Growth allocates *fresh zero* buffers (and drops the payload
        columns, which re-allocate lazily at the new size): the clock
        is monotone and never resets, so a zero stamp can never equal a
        live round stamp — recycled and regrown buffers alike cannot
        leak stale payloads into a later run.
        """
        if slots > self._slots or self._stamp_buf is None:
            self._release_files()
            self._stamp_buf = self._int64_column(slots)
            self._scalar_buf = None
            self._object_buf = None
            self._slots = slots
        if len(self._bcast_stamp) < n:
            grow = n - len(self._bcast_stamp)
            self._bcast_payload.extend([None] * grow)
            self._bcast_stamp.extend([0] * grow)
        return self._stamp_buf, self._bcast_payload, self._bcast_stamp

    def scalar_column(self):
        """The ``int64`` payload column (lazily allocated)."""
        if self._scalar_buf is None:
            self._scalar_buf = self._int64_column(self._slots)
        return self._scalar_buf

    def object_column(self):
        """The ``dtype=object`` payload column (lazily allocated, RAM)."""
        if self._object_buf is None:
            np = require_numpy()
            self._object_buf = np.empty(self._slots, dtype=object)
        return self._object_buf

    # -- lifecycle ------------------------------------------------------

    def tick(self) -> int:
        """Advance the monotone clock and return a fresh round stamp."""
        self._clock += 1
        return self._clock

    def clear(self) -> None:
        """Drop payload references (stamps and the clock are kept)."""
        if self._object_buf is not None:
            self._object_buf[:] = None
        for index in range(len(self._bcast_payload)):
            self._bcast_payload[index] = None

    def _release_files(self) -> None:
        for backing in self._files:
            try:
                backing.close()
            except OSError:  # pragma: no cover — close is best-effort
                pass
        self._files = []

    def close(self) -> None:
        """Release the buffers and any memmap backing files."""
        self._stamp_buf = None
        self._scalar_buf = None
        self._object_buf = None
        self._slots = 0
        self._release_files()

    def __del__(self) -> None:  # pragma: no cover — GC timing dependent
        self._release_files()


#: The ambient shared numpy arena, if a sweep installed one (see
#: :func:`shared_numpy_arena`).  ``None`` means every vectorized run
#: leases a private arena.
_ACTIVE_NUMPY_ARENA: ContextVar[NumpyRoundArena | None] = ContextVar(
    "repro_numpy_round_arena", default=None
)


@contextmanager
def shared_numpy_arena(
    arena: NumpyRoundArena | None = None,
) -> Iterator[NumpyRoundArena]:
    """Install ``arena`` (or a fresh one) as the ambient numpy arena.

    The numpy counterpart of
    :func:`~repro.model.scheduler.shared_arena`: every vectorized run
    inside the ``with`` block that has no explicit arena reuses these
    buffers.  Payload references are dropped on exit.
    """
    active = arena if arena is not None else NumpyRoundArena()
    token = _ACTIVE_NUMPY_ARENA.set(active)
    try:
        yield active
    finally:
        _ACTIVE_NUMPY_ARENA.reset(token)
        active.clear()


def _lease(scheduler) -> NumpyRoundArena:
    """Pick the arena for one vectorized run.

    An explicit ``arena=`` on the scheduler is honored only when it is
    a :class:`NumpyRoundArena` (a list-engine ``RoundArena`` holds the
    wrong buffer types; the run silently uses a private numpy arena
    instead — the list arena stays untouched for list runs on the same
    scheduler).  Otherwise the ambient arena
    (:func:`shared_numpy_arena`) is used, falling back to a private
    one when absent or occupied by an outer run.
    """
    arena = scheduler._arena
    if not isinstance(arena, NumpyRoundArena):
        arena = _ACTIVE_NUMPY_ARENA.get()
    if arena is None or arena._in_use:
        arena = NumpyRoundArena()
    return arena


def _audit_size(payload, size_memo, max_message_size: int) -> int:
    """One memoized repr-size probe; returns the updated running max."""
    try:
        size = size_memo[payload.__class__][payload]
    except TypeError:  # unhashable
        size = len(repr(payload))
    except KeyError:
        size = len(repr(payload))
        try:
            size_memo.setdefault(payload.__class__, {})[payload] = size
        except TypeError:  # unhashable
            pass
    if size > max_message_size:
        return size
    return max_message_size


def execute(scheduler, algorithm: NodeAlgorithm) -> ExecutionResult:
    """Run ``algorithm`` on ``scheduler``'s network, vectorized.

    Called by :meth:`Scheduler.run` when the engine seam resolves to
    ``"numpy"``; honors every scheduler option (round budget, tracing,
    size audit, send log, delivery hook) with identical observable
    behavior to the list engine.
    """
    if scheduler._delivery_hook is not None:
        return _execute_hooked(scheduler, algorithm)
    np = require_numpy()
    network = scheduler._network
    nodes = network.nodes()
    degrees = network.degree_table()
    row_start, col_receiver, _col_port, col_dest = network.delivery_columns()
    row_start_np, _recv_np, _port_np, col_dest_np = network.delivery_columns_np()
    neighbor_rows = network.neighbor_index_rows()
    n = network.n

    contexts, active = build_contexts(network, algorithm)

    arena = _lease(scheduler)
    total_slots = row_start[n]
    stamp_buf, bcast_payload, bcast_stamp = arena.lease(total_slots, n)
    bcast_payload_get = bcast_payload.__getitem__
    bcast_stamp_get = bcast_stamp.__getitem__
    arena._in_use = True
    port_sets = {degree: frozenset(range(degree)) for degree in set(degrees)}
    # Canonical port orders per degree: a full outbox iterating exactly
    # 0, 1, .., deg-1 can be pushed *in bulk* (its sender-side slots
    # are the contiguous CSR row), one C-level list comparison per
    # sender.
    port_lists = {degree: list(range(degree)) for degree in set(degrees)}

    rounds = 0
    messages_sent = 0
    trace: list[Message] = []
    trace_append = trace.append
    record_trace = scheduler._record_trace
    audit = scheduler._audit_message_sizes
    size_memo: dict[type, dict[Any, int]] = {}
    max_message_size = 0
    max_rounds = scheduler._max_rounds
    compose = algorithm.compose_messages
    receive = algorithm.receive_messages
    scheduler._send_log = None
    log_cols: tuple[list[int], list[int], list[Any]] | None = None
    if scheduler._record_send_log:
        log_cols = ([], [], [])
        log_round_append = log_cols[0].append
        log_slot_append = log_cols[1].append
        log_payload_append = log_cols[2].append
    slow_path = record_trace or log_cols is not None

    # The payload-column latch: scalar (int64) until the first payload
    # that is not a plain int, object forever after.  Demotion happens
    # before the round's scatter, so no copying is ever needed.
    scalar_mode = True
    # Reusable per-round push accumulators (cleared, not reallocated).
    # The *bulk* accumulators take whole port-ordered outboxes (their
    # sender-side slots are contiguous CSR rows, rebuilt vectorized at
    # flush); the *loose* ones take everything else, one destination
    # slot per message.
    bulk_starts: list[int] = []
    bulk_ends: list[int] = []
    bulk_payloads: list[Any] = []
    bulk_starts_append = bulk_starts.append
    bulk_ends_append = bulk_ends.append
    bulk_payloads_extend = bulk_payloads.extend
    loose_slots: list[int] = []
    loose_payloads: list[Any] = []
    loose_slots_append = loose_slots.append
    loose_payloads_append = loose_payloads.append
    int_type_set = {int}
    empty_set: frozenset[int] = frozenset()

    try:
        while active:
            if rounds >= max_rounds:
                stuck = [nodes[index] for index in active[:5]]
                raise RoundLimitExceededError(
                    f"round budget {max_rounds} exhausted; "
                    f"non-halted nodes include {stuck!r}"
                )
            rounds += 1
            stamp = arena.tick()
            any_broadcast = False

            # Phase 1: compose.  Broadcast detection is byte-identical
            # to the list engine; pushed sends are *collected* (slot +
            # payload appends) instead of delivered, and flush as one
            # scatter below.  The slot comes from the Python dest
            # column — one list indexing that doubles as the port-type
            # check (a fractional port raises TypeError exactly where
            # the list engine raises it).
            for index in active:
                ctx = contexts[index]
                if ctx.halted:
                    continue
                outbox = compose(ctx)
                if not outbox:
                    continue
                degree = degrees[index]
                if (
                    len(outbox) == degree
                    and not slow_path
                    and outbox.keys() == port_sets[degree]
                ):
                    values = list(outbox.values())
                    candidate = values[0]
                    if degree == 1 or len(set(map(id, values))) == 1:
                        bcast_payload[index] = candidate
                        bcast_stamp[index] = stamp
                        any_broadcast = True
                        messages_sent += degree
                        if audit:
                            max_message_size = _audit_size(
                                candidate, size_memo, max_message_size
                            )
                        continue
                    if list(outbox) == port_lists[degree]:
                        # Bulk push: a full outbox iterating in
                        # canonical port order occupies exactly the
                        # sender's contiguous CSR row — record the span
                        # and extend the payloads at C speed; only the
                        # size audit still walks the values (with the
                        # same consecutive-duplicate skip as the list
                        # engine).
                        base = row_start[index]
                        bulk_starts_append(base)
                        bulk_ends_append(base + degree)
                        bulk_payloads_extend(values)
                        if (
                            scalar_mode
                            and set(map(type, values)) != int_type_set
                        ):
                            scalar_mode = False
                        if audit:
                            prev = _UNSEEN
                            for payload in values:
                                if payload is not prev:
                                    prev = payload
                                    try:
                                        size = size_memo[payload.__class__][
                                            payload
                                        ]
                                    except TypeError:  # unhashable
                                        size = len(repr(payload))
                                    except KeyError:
                                        size = len(repr(payload))
                                        try:
                                            size_memo.setdefault(
                                                payload.__class__, {}
                                            )[payload] = size
                                        except TypeError:  # unhashable
                                            pass
                                    if size > max_message_size:
                                        max_message_size = size
                        messages_sent += degree
                        continue
                base = row_start[index]
                prev = _UNSEEN
                for port, payload in outbox.items():
                    if not 0 <= port < degree:
                        ctx.require_port(port)  # raises
                    idx = base + port
                    loose_slots_append(col_dest[idx])
                    loose_payloads_append(payload)
                    if scalar_mode and type(payload) is not int:
                        scalar_mode = False
                    if audit and payload is not prev:
                        prev = payload
                        try:
                            size = size_memo[payload.__class__][payload]
                        except TypeError:  # unhashable
                            size = len(repr(payload))
                        except KeyError:
                            size = len(repr(payload))
                            try:
                                size_memo.setdefault(
                                    payload.__class__, {}
                                )[payload] = size
                            except TypeError:  # unhashable
                                pass
                        if size > max_message_size:
                            max_message_size = size
                    if slow_path:
                        if record_trace:
                            trace_append(
                                Message(
                                    sender=nodes[index],
                                    receiver=nodes[col_receiver[idx]],
                                    round_index=rounds,
                                    payload=payload,
                                )
                            )
                        if log_cols is not None:
                            log_round_append(rounds)
                            log_slot_append(idx)
                            log_payload_append(payload)
                messages_sent += len(outbox)

            # Flush: the whole round's pushes land as one scatter per
            # column.  Slots are unique within a round (each directed
            # link carries at most one message), so the fancy-indexed
            # stores cannot collide.  Bulk spans expand to their
            # contiguous sender rows with a vectorized cumsum trick
            # (concatenated aranges without a Python loop), then map
            # through the compiled dest column in one gather.
            round_scalar = scalar_mode
            if bulk_starts or loose_slots:
                pieces = []
                if bulk_starts:
                    span_count = len(bulk_starts)
                    starts = np.fromiter(
                        bulk_starts, np.int64, count=span_count
                    )
                    ends = np.fromiter(bulk_ends, np.int64, count=span_count)
                    lens = ends - starts
                    total = int(lens.sum())
                    steps = np.ones(total, np.int64)
                    steps[0] = starts[0]
                    if span_count > 1:
                        bounds = np.cumsum(lens)[:-1]
                        steps[bounds] = starts[1:] - ends[:-1] + 1
                    sender_idx_arr = np.cumsum(steps)
                    pieces.append((col_dest_np[sender_idx_arr], bulk_payloads))
                if loose_slots:
                    pieces.append(
                        (
                            np.fromiter(
                                loose_slots, np.int64, count=len(loose_slots)
                            ),
                            loose_payloads,
                        )
                    )
                if len(pieces) == 1:
                    slots_arr, payloads_list = pieces[0]
                else:
                    slots_arr = np.concatenate(
                        [piece[0] for piece in pieces]
                    )
                    payloads_list = bulk_payloads + loose_payloads
                count = len(payloads_list)
                if round_scalar:
                    try:
                        values_arr = np.fromiter(
                            payloads_list, np.int64, count=count
                        )
                    except OverflowError:
                        # An int beyond 64 bits: demote for good.
                        scalar_mode = False
                        round_scalar = False
                if round_scalar:
                    arena.scalar_column()[slots_arr] = values_arr
                else:
                    arena.object_column()[slots_arr] = np.fromiter(
                        payloads_list, dtype=object, count=count
                    )
                stamp_buf[slots_arr] = stamp
                payload_col = (
                    arena.scalar_column()
                    if round_scalar
                    else arena.object_column()
                )
                # Dense rounds (most slots carry a message) convert the
                # whole stamp/payload columns to Python lists once —
                # two C-speed passes — so the receive loop below runs
                # on plain list slices, exactly like the list engine.
                # Sparse rounds keep per-receiver ndarray slices and a
                # membership set of pushed receivers (the node whose
                # CSR row owns each destination slot).
                if count * 4 >= total_slots:
                    stamps_round = stamp_buf[:total_slots].tolist()
                    payloads_round = payload_col[:total_slots].tolist()
                    pushed_nodes = None
                else:
                    stamps_round = None
                    pushed_nodes = set(
                        (
                            np.searchsorted(
                                row_start_np, slots_arr, side="right"
                            )
                            - 1
                        ).tolist()
                    )
                bulk_starts.clear()
                bulk_ends.clear()
                bulk_payloads.clear()
                loose_slots.clear()
                loose_payloads.clear()
            else:
                stamps_round = None
                pushed_nodes = empty_set

            # Phase 2: receive.  Identical stamp-gated dict building to
            # the list engine.  Dense rounds read plain list slices of
            # the round-level materialisation; sparse rounds read
            # `.tolist()`-converted ndarray slices (int64 cells become
            # Python ints; object cells are the original payloads).
            next_active: list[int] = []
            next_active_append = next_active.append
            for index in active:
                ctx = contexts[index]
                if ctx.halted:
                    continue
                if not any_broadcast:
                    if stamps_round is not None:
                        base = row_start[index]
                        end = row_start[index + 1]
                        stamps = stamps_round[base:end]
                        width = end - base
                        hits = stamps.count(stamp)
                        if hits == width and width:
                            inbox = dict(
                                enumerate(payloads_round[base:end])
                            )
                        elif hits == 0:
                            inbox = {}
                        else:
                            payloads = payloads_round[base:end]
                            inbox = {
                                port: payloads[port]
                                for port in range(width)
                                if stamps[port] == stamp
                            }
                    elif index not in pushed_nodes:
                        inbox = {}
                    else:
                        base = row_start[index]
                        end = row_start[index + 1]
                        stamps = stamp_buf[base:end].tolist()
                        width = end - base
                        payloads = payload_col[base:end].tolist()
                        if stamps.count(stamp) == width:
                            inbox = dict(enumerate(payloads))
                        else:
                            inbox = {
                                port: payloads[port]
                                for port in range(width)
                                if stamps[port] == stamp
                            }
                else:
                    sources = neighbor_rows[index]
                    pulled = list(map(bcast_stamp_get, sources))
                    width = len(sources)
                    if stamps_round is not None:
                        # Dense mixed round: merge push and pull port
                        # by port from the round-level lists (entries
                        # are disjoint per port; a pull-only node gets
                        # exactly its pull entries in port order, same
                        # dict as the pull-only branch below).
                        base = row_start[index]
                        stamps = stamps_round[base : base + width]
                        payloads = payloads_round[base : base + width]
                        inbox = {}
                        for port in range(width):
                            if stamps[port] == stamp:
                                inbox[port] = payloads[port]
                            elif pulled[port] == stamp:
                                inbox[port] = bcast_payload[sources[port]]
                    elif index not in pushed_nodes:
                        hits = pulled.count(stamp)
                        if hits == width:
                            inbox = dict(
                                enumerate(map(bcast_payload_get, sources))
                            )
                        elif hits == 0:
                            inbox = {}
                        else:
                            inbox = {
                                port: bcast_payload[source]
                                for port, source in enumerate(sources)
                                if pulled[port] == stamp
                            }
                    else:
                        # Sparse mixed round: same merge, ndarray
                        # slices.
                        base = row_start[index]
                        stamps = stamp_buf[base : base + width].tolist()
                        payloads = payload_col[base : base + width].tolist()
                        inbox = {}
                        for port in range(width):
                            if stamps[port] == stamp:
                                inbox[port] = payloads[port]
                            elif pulled[port] == stamp:
                                inbox[port] = bcast_payload[sources[port]]
                receive(ctx, inbox)
                if not ctx.halted:
                    next_active_append(index)
            active = next_active
    finally:
        arena._in_use = False

    if log_cols is not None:
        scheduler._send_log = log_cols
    output = algorithm.output
    outputs = {ctx.node: output(ctx) for ctx in contexts}
    return ExecutionResult(
        rounds=rounds,
        messages_sent=messages_sent,
        outputs=outputs,
        trace=trace,
        _max_message_size=max_message_size if audit else None,
    )


def _execute_hooked(scheduler, algorithm: NodeAlgorithm) -> ExecutionResult:
    """The vectorized counterpart of ``Scheduler._run_hooked``.

    Compose and the hook protocol are untouched (sends are collected
    and gated exactly as in the list engine); the flush vectorizes the
    busy-link dedup — ``np.unique(slots, return_index=True)`` keeps the
    first send per destination slot, matching the list engine's
    first-write-wins stamp check — and scatters the kept sends in one
    fancy-indexed store per column.  Busy sends are requeued in their
    original gate order; per-message audit/trace walks the kept sends
    in gate order, all exactly as the list engine does.
    """
    np = require_numpy()
    network = scheduler._network
    nodes = network.nodes()
    degrees = network.degree_table()
    row_start, col_receiver, _col_port, col_dest = network.delivery_columns()
    row_start_np = network.delivery_columns_np()[0]
    n = network.n
    hook = scheduler._delivery_hook
    assert hook is not None

    contexts, active = build_contexts(network, algorithm)

    arena = _lease(scheduler)
    stamp_buf, _bcast_payload, _bcast_stamp = arena.lease(row_start[n], n)
    arena._in_use = True

    hook.begin_run(network)
    crashed: set[int] = set()
    for index in hook.initially_crashed():
        crashed.add(index)
        contexts[index].halt()
    if crashed:
        active = [index for index in active if index not in crashed]

    rounds = 0
    messages_sent = 0
    trace: list[Message] = []
    trace_append = trace.append
    record_trace = scheduler._record_trace
    audit = scheduler._audit_message_sizes
    size_memo: dict[type, dict[Any, int]] = {}
    max_message_size = 0
    max_rounds = scheduler._max_rounds
    compose = algorithm.compose_messages
    receive = algorithm.receive_messages
    scheduler._send_log = None
    log_cols: tuple[list[int], list[int], list[Any]] | None = None
    if scheduler._record_send_log:
        log_cols = ([], [], [])

    scalar_mode = True
    empty_set: frozenset[int] = frozenset()

    try:
        while active:
            if rounds >= max_rounds:
                stuck = [nodes[index] for index in active[:5]]
                raise RoundLimitExceededError(
                    f"round budget {max_rounds} exhausted; "
                    f"non-halted nodes include {stuck!r}"
                )
            rounds += 1
            stamp = arena.tick()

            for index in hook.round_crashes(rounds):
                if index not in crashed:
                    crashed.add(index)
                    contexts[index].halt()

            new_sends: list[Send] = []
            new_sends_append = new_sends.append
            for index in active:
                ctx = contexts[index]
                if ctx.halted:
                    continue
                outbox = compose(ctx)
                if not outbox:
                    continue
                degree = degrees[index]
                for port, payload in outbox.items():
                    if not 0 <= port < degree:
                        ctx.require_port(port)  # raises
                    new_sends_append((index, port, payload))

            # Flush: resolve every gated send to its destination slot
            # (Python dest column — validates port types), dedup busy
            # links vectorized, walk the kept sends in gate order for
            # audit/trace, then scatter them in one store per column.
            gated = hook.gate(rounds, new_sends)
            round_scalar = scalar_mode
            if gated:
                sender_idx: list[int] = []
                slots_list: list[int] = []
                for sender, port, _payload in gated:
                    idx = row_start[sender] + port
                    sender_idx.append(idx)
                    slots_list.append(col_dest[idx])
                count = len(gated)
                slots_arr = np.fromiter(slots_list, np.int64, count=count)
                unique_slots, first_pos = np.unique(
                    slots_arr, return_index=True
                )
                if len(unique_slots) == count:
                    keep = None  # no busy links this round
                else:
                    keep_mask = np.zeros(count, dtype=bool)
                    keep_mask[first_pos] = True
                    keep = keep_mask.tolist()
                busy: list[Send] = []
                kept_payloads: list[Any] = []
                for pos, send in enumerate(gated):
                    if keep is not None and not keep[pos]:
                        busy.append(send)
                        continue
                    payload = send[2]
                    kept_payloads.append(payload)
                    if scalar_mode and type(payload) is not int:
                        scalar_mode = False
                        round_scalar = False
                    messages_sent += 1
                    if audit:
                        max_message_size = _audit_size(
                            payload, size_memo, max_message_size
                        )
                    if record_trace:
                        idx = sender_idx[pos]
                        trace_append(
                            Message(
                                sender=nodes[send[0]],
                                receiver=nodes[col_receiver[idx]],
                                round_index=rounds,
                                payload=payload,
                            )
                        )
                    if log_cols is not None:
                        log_cols[0].append(rounds)
                        log_cols[1].append(sender_idx[pos])
                        log_cols[2].append(payload)
                if busy:
                    hook.requeue(rounds, busy)
                    kept_arr = slots_arr[keep_mask]
                else:
                    kept_arr = slots_arr
                kept_count = len(kept_payloads)
                if kept_count:
                    if round_scalar:
                        try:
                            values_arr = np.fromiter(
                                kept_payloads, np.int64, count=kept_count
                            )
                        except OverflowError:
                            scalar_mode = False
                            round_scalar = False
                    if round_scalar:
                        arena.scalar_column()[kept_arr] = values_arr
                    else:
                        arena.object_column()[kept_arr] = np.fromiter(
                            kept_payloads, dtype=object, count=kept_count
                        )
                    stamp_buf[kept_arr] = stamp
                    pushed_nodes = set(
                        (
                            np.searchsorted(
                                row_start_np, kept_arr, side="right"
                            )
                            - 1
                        ).tolist()
                    )
                else:
                    pushed_nodes = empty_set
            else:
                pushed_nodes = empty_set
            if pushed_nodes:
                payload_col = (
                    arena.scalar_column()
                    if round_scalar
                    else arena.object_column()
                )

            next_active: list[int] = []
            next_active_append = next_active.append
            for index in active:
                ctx = contexts[index]
                if ctx.halted:
                    continue
                if index in pushed_nodes:
                    base = row_start[index]
                    end = row_start[index + 1]
                    stamps = stamp_buf[base:end].tolist()
                    payloads = payload_col[base:end].tolist()
                    inbox = {
                        port: payloads[port]
                        for port in range(end - base)
                        if stamps[port] == stamp
                    }
                else:
                    inbox = {}
                receive(ctx, inbox)
                if not ctx.halted:
                    next_active_append(index)
            active = next_active
    finally:
        arena._in_use = False
        hook.end_run(rounds, messages_sent)

    if log_cols is not None:
        scheduler._send_log = log_cols
    output = algorithm.output
    outputs = {
        ctx.node: output(ctx)
        for index, ctx in enumerate(contexts)
        if index not in crashed
    }
    return ExecutionResult(
        rounds=rounds,
        messages_sent=messages_sent,
        outputs=outputs,
        trace=trace,
        _max_message_size=max_message_size if audit else None,
    )
