"""CONGEST-model execution: bandwidth-bounded synchronous rounds.

The paper works in the LOCAL model (unbounded messages).  A natural
follow-up question — explicitly part of the field's agenda — is which
of its building blocks already fit the CONGEST model, where every
message is limited to ``O(log n)`` bits.  This module answers that
*empirically*: it runs any :class:`~repro.model.algorithm.NodeAlgorithm`
under a hard per-message bit budget and reports violations.

Payload sizes are measured exactly for the payload shapes our
primitives send (integers and small tuples of integers), so the verdict
"Linial's reduction is CONGEST-compatible" is a measured fact, not an
estimate (its messages are single colors of ``O(log n + log Δ)`` bits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.errors import ModelViolationError, ParameterError
from repro.model.algorithm import NodeAlgorithm
from repro.model.network import Network
from repro.model.scheduler import ExecutionResult, Scheduler


def payload_bits(payload: Any) -> int:
    """Return the exact bit size of a primitive payload.

    Supported shapes (everything our algorithms send): ``None``, bools,
    non-negative integers, strings, and (nested) tuples/lists of these.
    Integers cost their binary length; containers cost the sum of their
    items plus 2 bits of framing per item (a standard self-delimiting
    encoding surcharge).
    """
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length())
    if isinstance(payload, str):
        return 8 * len(payload.encode())
    if isinstance(payload, (tuple, list, frozenset, set)):
        items = list(payload)
        return sum(payload_bits(item) + 2 for item in items)
    raise ModelViolationError(
        f"cannot size payload of type {type(payload).__name__}; "
        "CONGEST execution supports ints, strings and containers thereof"
    )


@dataclass
class CongestReport:
    """Outcome of a CONGEST execution.

    Attributes
    ----------
    result:
        The underlying execution result (rounds, outputs, ...).
    bandwidth_bits:
        The enforced per-message budget.
    max_bits_seen:
        Largest message observed.
    violations:
        Number of messages over budget (0 when ``strict`` — execution
        would have raised instead).
    """

    result: ExecutionResult
    bandwidth_bits: int
    max_bits_seen: int = 0
    violations: int = 0

    @property
    def congest_compatible(self) -> bool:
        """Did the whole execution fit the budget?"""
        return self.violations == 0


class CongestScheduler(Scheduler):
    """A :class:`Scheduler` that enforces a per-message bit budget.

    Parameters
    ----------
    network:
        The network to run on.
    bandwidth_bits:
        Per-message budget.  The classic CONGEST choice is
        ``c * ceil(log2 n)`` for a small constant ``c``.
    strict:
        When ``True`` an oversized message raises
        :class:`ModelViolationError`; when ``False`` it is delivered
        but counted, so experiments can measure *how far* an algorithm
        is from CONGEST.
    """

    def __init__(
        self,
        network: Network,
        *,
        bandwidth_bits: int,
        strict: bool = True,
        max_rounds: int = 10_000,
    ) -> None:
        if bandwidth_bits < 1:
            raise ParameterError(
                f"bandwidth_bits must be >= 1, got {bandwidth_bits}"
            )
        # The columnar send log replaces the Message-envelope trace:
        # the bit audit reads the same flat columns the engine delivers
        # through, without building an envelope per message (so
        # ``report.result.trace`` is empty — the send log holds the
        # messages).  The repr-size audit stays on so
        # ``report.result.max_message_size`` keeps reporting the LOCAL
        # size metric alongside the bit metric; it costs one memo probe
        # per distinct payload, not per message.
        super().__init__(
            network,
            max_rounds=max_rounds,
            record_send_log=True,
            audit_message_sizes=True,
        )
        self._bandwidth_bits = bandwidth_bits
        self._strict = strict

    def _describe_send(self, sender_slot: int) -> tuple[Any, Any]:
        """Resolve a flat sender slot to (sender node, receiver node)."""
        from bisect import bisect_right

        row_start, col_receiver, _ports, _dest = (
            self._network.delivery_columns()
        )
        sender_index = bisect_right(row_start, sender_slot) - 1
        return (
            self._network.node_at(sender_index),
            self._network.node_at(col_receiver[sender_slot]),
        )

    def run_congest(self, algorithm: NodeAlgorithm) -> CongestReport:
        """Execute and audit every message against the budget.

        The audit walks the engine's recorded send columns ``(round,
        sender_slot, payload)`` — node labels are only reconstructed
        for the error message of a violation.  Distributed algorithms
        resend the same few payloads (colors, IDs) millions of times,
        so sizes of hashable payloads are memoized — the audit costs
        one dict probe per message instead of a recursive traversal.
        """
        result = super().run(algorithm)
        round_col, slot_col, payload_col = self.send_log()
        max_bits = 0
        violations = 0
        # Keyed by type then value: equal payloads of different types
        # (1 vs 1.0) must not share an entry — payload_bits is
        # type-strict and e.g. rejects floats.
        sizes: dict[type, dict[Any, int]] = {}
        for position, payload in enumerate(payload_col):
            try:
                bits = sizes[payload.__class__][payload]
            except TypeError:  # unhashable payload; size it directly
                bits = payload_bits(payload)
            except KeyError:
                bits = payload_bits(payload)
                try:
                    sizes.setdefault(payload.__class__, {})[payload] = bits
                except TypeError:  # unhashable payload: no memo entry
                    pass
            max_bits = max(max_bits, bits)
            if bits > self._bandwidth_bits:
                violations += 1
                if self._strict:
                    sender, receiver = self._describe_send(
                        slot_col[position]
                    )
                    raise ModelViolationError(
                        f"round {round_col[position]}: message "
                        f"{sender!r} -> {receiver!r} "
                        f"uses {bits} bits > budget {self._bandwidth_bits}"
                    )
        return CongestReport(
            result=result,
            bandwidth_bits=self._bandwidth_bits,
            max_bits_seen=max_bits,
            violations=violations,
        )


def standard_bandwidth(n: int, constant: int = 4) -> int:
    """The conventional CONGEST budget ``constant * ceil(log2 n)`` bits."""
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    return max(1, constant * max(1, (n - 1).bit_length()))
