"""Iterated logarithm and integer logarithm helpers.

The paper's round bounds all carry an additive ``O(log* n)`` term, the
number of times ``log2`` must be applied to ``n`` before the value drops
to at most 2.  The simulated primitives (Cole-Vishkin, Linial) realise
that term, and the analysis module uses :func:`log_star` to evaluate the
predicted bounds.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError


def ilog2(x: int) -> int:
    """Return ``floor(log2(x))`` for a positive integer ``x``.

    Uses integer bit tricks, so it is exact for arbitrarily large
    integers (unlike ``math.log2`` which goes through floats).

    >>> ilog2(1), ilog2(2), ilog2(3), ilog2(1024)
    (0, 1, 1, 10)
    """
    if x <= 0:
        raise ParameterError(f"ilog2 requires a positive integer, got {x!r}")
    return x.bit_length() - 1


def ceil_log2(x: int) -> int:
    """Return ``ceil(log2(x))`` for a positive integer ``x``.

    >>> ceil_log2(1), ceil_log2(2), ceil_log2(3), ceil_log2(1024)
    (0, 1, 2, 10)
    """
    if x <= 0:
        raise ParameterError(f"ceil_log2 requires a positive integer, got {x!r}")
    return (x - 1).bit_length()


def log_star(x: float) -> int:
    """Return the iterated logarithm ``log* x`` (base 2).

    ``log* x`` is the number of times ``log2`` must be applied to ``x``
    until the result is at most 2.  By convention ``log* x = 0`` for
    ``x <= 2``.

    >>> [log_star(v) for v in (1, 2, 4, 16, 65536)]
    [0, 0, 1, 2, 3]
    >>> log_star(2 ** 65536)
    4
    """
    if x <= 0:
        raise ParameterError(f"log_star requires a positive argument, got {x!r}")
    count = 0
    # Large integers would overflow float conversion inside math.log2,
    # so peel them down with exact integer arithmetic first.
    while isinstance(x, int) and x > 2**53:
        x = ilog2(x)
        count += 1
    value = float(x)
    while value > 2.0:
        value = math.log2(value)
        count += 1
    return count


def ceil_log(base: float, x: float) -> int:
    """Return ``ceil(log_base(x))`` computed robustly for integers.

    Float ``math.log`` can land epsilon-below an integer boundary, so we
    verify the candidate with exact integer powers when both arguments
    are integers.

    >>> ceil_log(3, 27), ceil_log(3, 28), ceil_log(10, 1)
    (3, 4, 0)
    """
    if base <= 1:
        raise ParameterError(f"ceil_log requires base > 1, got {base!r}")
    if x <= 0:
        raise ParameterError(f"ceil_log requires x > 0, got {x!r}")
    if x <= 1:
        return 0
    candidate = max(0, math.ceil(math.log(x) / math.log(base)) - 2)
    while base**candidate < x:
        candidate += 1
    return candidate
