"""Small numeric and combinatorial helpers shared across the library.

The helpers here implement the mathematical side-machinery the paper
uses freely in its proofs:

* :func:`repro.utils.logstar.log_star` — the iterated logarithm, the
  additive term in every round bound of the paper;
* :func:`repro.utils.harmonic.harmonic_number` — the harmonic numbers
  ``H_p`` appearing in Lemma 4.4 and in the slack bookkeeping of
  Lemma 4.3;
* :mod:`repro.utils.primes` / :mod:`repro.utils.gf` — prime search and
  polynomial evaluation over ``GF(q)`` used by the Linial-style color
  reduction;
* :mod:`repro.utils.chains` — path/cycle ("chain") containers used by
  the defective edge coloring of Section 4.1, whose conflict graphs are
  unions of paths and cycles.
"""

from repro.utils.harmonic import harmonic_number
from repro.utils.logstar import ilog2, log_star
from repro.utils.primes import is_prime, next_prime
from repro.utils.chains import Chain, chains_from_adjacency

__all__ = [
    "harmonic_number",
    "ilog2",
    "log_star",
    "is_prime",
    "next_prime",
    "Chain",
    "chains_from_adjacency",
]
