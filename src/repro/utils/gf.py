"""Polynomial arithmetic over prime fields ``GF(q)``.

The Linial-style one-round color reduction (see
:mod:`repro.primitives.linial`) encodes a color ``c`` from a palette of
size ``m`` as the polynomial over ``GF(q)`` whose coefficients are the
base-``q`` digits of ``c``.  Two distinct colors yield distinct
polynomials of degree ``< k`` (``k = ceil(log_q m)``), which agree on at
most ``k - 1`` field elements — the combinatorial fact the reduction
step rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.utils.primes import is_prime


def digits_base_q(value: int, q: int, length: int) -> tuple[int, ...]:
    """Return the ``length`` base-``q`` digits of ``value``, least significant first.

    >>> digits_base_q(11, 3, 4)
    (2, 0, 1, 0)
    """
    if value < 0:
        raise ParameterError(f"value must be non-negative, got {value}")
    if q < 2:
        raise ParameterError(f"base q must be >= 2, got {q}")
    if length < 1:
        raise ParameterError(f"length must be >= 1, got {length}")
    digits = []
    remaining = value
    for _ in range(length):
        digits.append(remaining % q)
        remaining //= q
    if remaining:
        raise ParameterError(
            f"value {value} does not fit in {length} base-{q} digits"
        )
    return tuple(digits)


@dataclass(frozen=True)
class FieldPolynomial:
    """A polynomial over ``GF(q)`` given by its coefficient tuple.

    ``coefficients[j]`` is the coefficient of ``x**j``; ``q`` must be
    prime so that ``GF(q)`` is a field (distinct polynomials of degree
    ``< k`` then agree on at most ``k - 1`` points, the property the
    Linial step needs).
    """

    coefficients: tuple[int, ...]
    q: int

    def __post_init__(self) -> None:
        if not is_prime(self.q):
            raise ParameterError(f"q must be prime, got {self.q}")
        if not self.coefficients:
            raise ParameterError("a polynomial needs at least one coefficient")
        if any(c < 0 or c >= self.q for c in self.coefficients):
            raise ParameterError(
                f"coefficients must lie in [0, {self.q}), got {self.coefficients}"
            )

    @classmethod
    def from_color(cls, color: int, q: int, k: int) -> "FieldPolynomial":
        """Encode ``color`` as a degree-``< k`` polynomial over ``GF(q)``."""
        return cls(digits_base_q(color, q, k), q)

    @property
    def degree_bound(self) -> int:
        """Number of coefficients ``k`` (the polynomial has degree ``< k``)."""
        return len(self.coefficients)

    def evaluate(self, x: int) -> int:
        """Evaluate the polynomial at ``x`` via Horner's rule.

        >>> FieldPolynomial((2, 0, 1), 5).evaluate(3)
        1
        """
        if x < 0 or x >= self.q:
            raise ParameterError(f"x must lie in [0, {self.q}), got {x}")
        result = 0
        for coefficient in reversed(self.coefficients):
            result = (result * x + coefficient) % self.q
        return result

    def agreement_points(self, other: "FieldPolynomial") -> list[int]:
        """Return all field elements where ``self`` and ``other`` agree.

        For distinct polynomials of degree ``< k`` the result has at
        most ``k - 1`` elements; tests use this to validate the
        collision bound the Linial step relies on.
        """
        if other.q != self.q:
            raise ParameterError(
                f"cannot compare polynomials over GF({self.q}) and GF({other.q})"
            )
        return [x for x in range(self.q) if self.evaluate(x) == other.evaluate(x)]
