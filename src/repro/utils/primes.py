"""Prime search helpers for the Linial-style color reduction.

The one-round Linial color-reduction step encodes colors as low-degree
polynomials over a prime field ``GF(q)``.  The step needs the smallest
prime above a bound derived from the degree and the current palette
size; graph instances at simulation scale never need primes beyond a few
thousand, so simple trial division is more than adequate and keeps the
code dependency-free and obviously correct.
"""

from __future__ import annotations

from repro.errors import ParameterError


def is_prime(n: int) -> bool:
    """Return ``True`` iff ``n`` is a prime number.

    Deterministic trial division by 2, 3 and numbers of the form
    ``6k +- 1`` — exact for all integers (no probabilistic shortcuts).

    >>> [x for x in range(20) if is_prime(x)]
    [2, 3, 5, 7, 11, 13, 17, 19]
    """
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0 or n % 3 == 0:
        return False
    candidate = 5
    while candidate * candidate <= n:
        if n % candidate == 0 or n % (candidate + 2) == 0:
            return False
        candidate += 6
    return True


def next_prime(n: int) -> int:
    """Return the smallest prime ``>= n``.

    >>> next_prime(1), next_prime(8), next_prime(13)
    (2, 11, 13)
    """
    if n <= 2:
        return 2
    candidate = n if n % 2 else n + 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def primes_up_to(n: int) -> list[int]:
    """Return all primes ``<= n`` via a sieve of Eratosthenes.

    Used by tests to cross-check :func:`is_prime` and by the analysis
    module when tabulating Linial step parameters.
    """
    if n < 0:
        raise ParameterError(f"primes_up_to requires n >= 0, got {n}")
    if n < 2:
        return []
    sieve = bytearray([1]) * (n + 1)
    sieve[0] = sieve[1] = 0
    for i in range(2, int(n**0.5) + 1):
        if sieve[i]:
            sieve[i * i :: i] = bytearray(len(sieve[i * i :: i]))
    return [i for i, flag in enumerate(sieve) if flag]
