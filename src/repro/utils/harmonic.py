"""Harmonic numbers ``H_p = sum_{i=1}^{p} 1/i``.

Lemma 4.4 of the paper guarantees, for any list ``L`` and any partition
of the color space into ``p`` parts, an index set ``I`` of size ``k``
whose parts each intersect ``L`` in at least ``|L| / (k * H_p)`` colors.
The harmonic number is therefore part of the *executable* algorithm (it
determines the level of each edge in Lemma 4.3), not just the analysis,
which is why it lives in ``utils`` rather than ``analysis``.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import ParameterError


@lru_cache(maxsize=None)
def harmonic_number(p: int) -> float:
    """Return the ``p``-th harmonic number ``H_p``.

    ``H_0`` is defined as ``0`` (empty sum).  Values are cached because
    the core algorithm evaluates ``H_q`` once per color-space reduction
    and the analysis module evaluates it inside recurrences.

    >>> harmonic_number(1)
    1.0
    >>> round(harmonic_number(4), 6)
    2.083333
    """
    if p < 0:
        raise ParameterError(f"harmonic_number requires p >= 0, got {p}")
    total = 0.0
    for i in range(1, p + 1):
        total += 1.0 / i
    return total


def harmonic_lower_bound(list_size: int, k: int, p: int) -> float:
    """Return the Lemma 4.4 intersection lower bound ``|L| / (k * H_p)``.

    Parameters
    ----------
    list_size:
        ``|L|``, the size of the color list.
    k:
        The size of the index set ``I``.
    p:
        The number of parts in the color-space partition.
    """
    if list_size < 0:
        raise ParameterError(f"list_size must be non-negative, got {list_size}")
    if k < 1 or p < 1:
        raise ParameterError(f"k and p must be >= 1, got k={k}, p={p}")
    return list_size / (k * harmonic_number(p))
