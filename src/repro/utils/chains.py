"""Path/cycle ("chain") decomposition of degree-<=2 conflict graphs.

The defective edge coloring of Section 4.1 produces, for every
temporary color, a conflict graph of maximum degree 2 — a disjoint
union of paths and cycles.  The paper then 3-colors each chain in
``O(log* X)`` rounds with a Cole-Vishkin style procedure.  This module
extracts the chains from an adjacency structure so the chain coloring
primitive (:mod:`repro.primitives.chain_coloring`) can run on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence

from repro.errors import InvalidInstanceError


@dataclass(frozen=True)
class Chain:
    """An ordered path or cycle over arbitrary hashable items.

    Attributes
    ----------
    items:
        The chain's items in path order.  For a cycle the successor of
        ``items[-1]`` is ``items[0]``.
    cyclic:
        ``True`` if the chain is a cycle, ``False`` for a path.
    """

    items: tuple[Hashable, ...]
    cyclic: bool

    def __post_init__(self) -> None:
        if not self.items:
            raise InvalidInstanceError("a chain must contain at least one item")
        if len(set(self.items)) != len(self.items):
            raise InvalidInstanceError("chain items must be distinct")
        if self.cyclic and len(self.items) < 3:
            raise InvalidInstanceError(
                f"a cycle needs at least 3 items, got {len(self.items)}"
            )

    def __len__(self) -> int:
        return len(self.items)

    def successor(self, index: int) -> Hashable | None:
        """Return the successor of ``items[index]``, or ``None`` at a path end."""
        if index == len(self.items) - 1:
            return self.items[0] if self.cyclic else None
        return self.items[index + 1]

    def predecessor(self, index: int) -> Hashable | None:
        """Return the predecessor of ``items[index]``, or ``None`` at a path start."""
        if index == 0:
            return self.items[-1] if self.cyclic else None
        return self.items[index - 1]

    def neighbor_pairs(self) -> list[tuple[Hashable, Hashable]]:
        """Return the adjacent (item, item) pairs along the chain."""
        pairs = [
            (self.items[i], self.items[i + 1]) for i in range(len(self.items) - 1)
        ]
        if self.cyclic:
            pairs.append((self.items[-1], self.items[0]))
        return pairs


def chains_from_adjacency(
    adjacency: Mapping[Hashable, Iterable[Hashable]],
) -> list[Chain]:
    """Decompose a max-degree-2 graph into its paths and cycles.

    Parameters
    ----------
    adjacency:
        Symmetric adjacency mapping; every item must list at most two
        neighbors and the relation must be symmetric.

    Returns
    -------
    list[Chain]
        One chain per connected component.  Isolated items become
        length-1 paths.  Chains are returned in a deterministic order
        (sorted by their smallest item's repr) so simulations are
        reproducible.

    Raises
    ------
    InvalidInstanceError
        If some item has more than two neighbors or the adjacency is
        not symmetric.
    """
    neighbor_sets: dict[Hashable, set[Hashable]] = {}
    for item, neighbors in adjacency.items():
        neighbor_sets[item] = set(neighbors)
        if item in neighbor_sets[item]:
            raise InvalidInstanceError(f"self-loop at chain item {item!r}")
        if len(neighbor_sets[item]) > 2:
            raise InvalidInstanceError(
                f"item {item!r} has degree {len(neighbor_sets[item])} > 2; "
                "not a union of paths and cycles"
            )
    for item, neighbors in neighbor_sets.items():
        for other in neighbors:
            if other not in neighbor_sets or item not in neighbor_sets[other]:
                raise InvalidInstanceError(
                    f"adjacency is not symmetric between {item!r} and {other!r}"
                )

    visited: set[Hashable] = set()
    chains: list[Chain] = []
    ordering = sorted(neighbor_sets, key=repr)

    # First extract paths, starting from degree-<=1 endpoints.
    for start in ordering:
        if start in visited or len(neighbor_sets[start]) > 1:
            continue
        path = _walk_from(start, neighbor_sets, visited)
        chains.append(Chain(tuple(path), cyclic=False))

    # Everything unvisited now lies on cycles.
    for start in ordering:
        if start in visited:
            continue
        cycle = _walk_from(start, neighbor_sets, visited)
        chains.append(Chain(tuple(cycle), cyclic=True))

    return chains


def _walk_from(
    start: Hashable,
    neighbor_sets: Mapping[Hashable, set[Hashable]],
    visited: set[Hashable],
) -> list[Hashable]:
    """Walk a component from ``start``, marking items visited."""
    walk = [start]
    visited.add(start)
    current = start
    while True:
        next_items = [n for n in neighbor_sets[current] if n not in visited]
        if not next_items:
            return walk
        # Deterministic tie-break for the (cycle-start) case with two
        # unvisited neighbors.
        current = min(next_items, key=repr)
        visited.add(current)
        walk.append(current)


def validate_chain_cover(
    chains: Sequence[Chain], items: Iterable[Hashable]
) -> None:
    """Check that ``chains`` partition ``items`` exactly once.

    Raises
    ------
    InvalidInstanceError
        If an item appears in zero or multiple chains, or a chain
        contains an unknown item.
    """
    expected = set(items)
    seen: set[Hashable] = set()
    for chain in chains:
        for item in chain.items:
            if item in seen:
                raise InvalidInstanceError(f"item {item!r} appears in two chains")
            if item not in expected:
                raise InvalidInstanceError(f"unexpected chain item {item!r}")
            seen.add(item)
    missing = expected - seen
    if missing:
        raise InvalidInstanceError(f"items missing from chain cover: {missing!r}")
