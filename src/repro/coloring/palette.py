"""Color palettes and color-space partitioning.

The paper assumes all lists draw colors from a palette
``{1, ..., Δ^c}`` for a constant ``c`` and, inside Lemma 4.3,
partitions a palette of size ``C`` into ``q <= 2p`` subspaces of size
at most ``C / p``.  :func:`split_palette` implements exactly that
partition (contiguous blocks, as in the paper's Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ParameterError


@dataclass(frozen=True)
class Palette:
    """An ordered, duplicate-free collection of color identifiers.

    Colors are plain integers.  The palette retains its order so that
    contiguous-block splitting matches the paper's figures, but
    membership checks use a frozen set.
    """

    colors: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.colors)) != len(self.colors):
            raise ParameterError("palette contains duplicate colors")

    @classmethod
    def of_size(cls, size: int, *, start: int = 1) -> "Palette":
        """Return the palette ``{start, ..., start + size - 1}``.

        The default ``start=1`` matches the paper's ``{1, ..., C}``.
        """
        if size < 0:
            raise ParameterError(f"palette size must be >= 0, got {size}")
        return cls(tuple(range(start, start + size)))

    def __len__(self) -> int:
        return len(self.colors)

    def __iter__(self) -> Iterator[int]:
        return iter(self.colors)

    def __contains__(self, color: int) -> bool:
        return color in self.as_set

    @property
    def as_set(self) -> frozenset[int]:
        return frozenset(self.colors)

    def restrict(self, allowed: Sequence[int]) -> "Palette":
        """Return the sub-palette of colors also present in ``allowed``."""
        allowed_set = set(allowed)
        return Palette(tuple(c for c in self.colors if c in allowed_set))


def split_palette(palette: Palette, p: int) -> list[Palette]:
    """Partition ``palette`` into ``q <= 2p`` blocks of size ``<= ceil(C/p)``.

    This is the partition used at the top of Lemma 4.3: contiguous
    blocks of size ``s = max(1, floor(C / p))``.  With that block size,
    the number of blocks is ``q = ceil(C / s) <= 2p`` whenever
    ``p <= C`` (the lemma's precondition), and each block has size at
    most ``ceil(C / p)``.

    >>> [list(b) for b in split_palette(Palette.of_size(10), 3)]
    [[1, 2, 3], [4, 5, 6], [7, 8, 9], [10]]
    """
    size = len(palette)
    if p < 1:
        raise ParameterError(f"p must be >= 1, got {p}")
    if size == 0:
        return []
    if p > size:
        raise ParameterError(
            f"cannot split a palette of size {size} into p={p} parts "
            "(Lemma 4.3 requires p <= C)"
        )
    block = max(1, size // p)
    blocks: list[Palette] = []
    colors = palette.colors
    for offset in range(0, size, block):
        blocks.append(Palette(colors[offset : offset + block]))
    return blocks
