"""Independent validators for colorings.

These functions re-derive everything from the graph: they do not trust
:class:`~repro.coloring.edge_coloring.PartialEdgeColoring` or any
algorithm's bookkeeping.  Every test and every benchmark funnels its
outputs through this module, realising the DESIGN.md hard rule that
correctness is checked independently of round accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import networkx as nx

from repro.errors import ColoringValidationError
from repro.coloring.lists import ListAssignment
from repro.graphs.edges import Edge, edge_set
from repro.graphs.line_graph import line_graph_adjacency


def check_proper_edge_coloring(
    graph: nx.Graph, coloring: Mapping[Edge, int], *, require_total: bool = True
) -> None:
    """Raise unless ``coloring`` is a proper (partial) edge coloring.

    Parameters
    ----------
    graph:
        Host graph.
    coloring:
        Mapping from canonical edge to color.
    require_total:
        When ``True`` (default) every edge of the graph must be
        colored; when ``False`` the mapping may cover a subset, but
        properness is still enforced on the covered part.
    """
    edges = edge_set(graph)
    edge_lookup = set(edges)
    for edge in coloring:
        if edge not in edge_lookup:
            raise ColoringValidationError(
                f"colored edge {edge!r} does not exist in the graph"
            )
    if require_total:
        missing = [e for e in edges if e not in coloring]
        if missing:
            raise ColoringValidationError(
                f"{len(missing)} edges are uncolored, e.g. {missing[:3]!r}"
            )
    adjacency = line_graph_adjacency(graph)
    for edge, neighbors in adjacency.items():
        if edge not in coloring:
            continue
        for other in neighbors:
            if other in coloring and other > edge:
                if coloring[edge] == coloring[other]:
                    raise ColoringValidationError(
                        f"edges {edge!r} and {other!r} share a node and the "
                        f"color {coloring[edge]}"
                    )


def check_list_edge_coloring(
    graph: nx.Graph,
    lists: ListAssignment,
    coloring: Mapping[Edge, int],
    *,
    require_total: bool = True,
) -> None:
    """Raise unless ``coloring`` is proper *and* respects the lists."""
    check_proper_edge_coloring(graph, coloring, require_total=require_total)
    for edge, color in coloring.items():
        if color not in lists.list_of(edge):
            raise ColoringValidationError(
                f"edge {edge!r} uses color {color} which is not in its list"
            )


def check_palette_bound(
    coloring: Mapping[Edge, int], palette_size: int, *, start: int = 1
) -> None:
    """Raise unless every used color lies in ``{start, ..., start+size-1}``.

    Used by the ``(2Δ - 1)``-edge coloring wrappers, whose contract is a
    bound on the palette rather than per-edge lists.
    """
    for edge, color in coloring.items():
        if color < start or color >= start + palette_size:
            raise ColoringValidationError(
                f"edge {edge!r} uses color {color} outside the palette "
                f"[{start}, {start + palette_size - 1}]"
            )


def measure_defects(
    graph: nx.Graph, assignment: Mapping[Edge, int]
) -> dict[Edge, int]:
    """Return, per edge, the number of same-colored neighboring edges.

    For a *proper* coloring all defects are 0; for a defective coloring
    this is the quantity the paper bounds by ``deg(e) / (2β)``.
    """
    adjacency = line_graph_adjacency(graph)
    defects: dict[Edge, int] = {}
    for edge, neighbors in adjacency.items():
        if edge not in assignment:
            continue
        defects[edge] = sum(
            1
            for other in neighbors
            if other in assignment and assignment[other] == assignment[edge]
        )
    return defects


def check_defective_coloring(
    graph: nx.Graph,
    assignment: Mapping[Edge, int],
    defect_bound: Callable[[int], float],
    *,
    color_bound: int | None = None,
) -> None:
    """Raise unless ``assignment`` is a defective coloring within bounds.

    Parameters
    ----------
    graph:
        Host graph; every edge must be assigned.
    assignment:
        Edge -> defective color.
    defect_bound:
        Callable mapping ``deg(e)`` to the maximum allowed defect for
        an edge of that degree (the paper uses ``deg(e) / (2β)``).
    color_bound:
        If given, the number of distinct colors must not exceed it
        (the paper's ``O(β²)``, instantiated with explicit constants by
        the caller).
    """
    edges = edge_set(graph)
    missing = [e for e in edges if e not in assignment]
    if missing:
        raise ColoringValidationError(
            f"{len(missing)} edges lack a defective color, e.g. {missing[:3]!r}"
        )
    adjacency = line_graph_adjacency(graph)
    defects = measure_defects(graph, assignment)
    for edge, defect in defects.items():
        degree = len(adjacency[edge])
        allowed = defect_bound(degree)
        if defect > allowed:
            raise ColoringValidationError(
                f"edge {edge!r} (deg {degree}) has defect {defect} "
                f"> allowed {allowed}"
            )
    if color_bound is not None:
        used = len(set(assignment.values()))
        if used > color_bound:
            raise ColoringValidationError(
                f"defective coloring uses {used} colors > bound {color_bound}"
            )


@dataclass(frozen=True)
class ColoringReport:
    """Summary statistics of a finished coloring, for benchmark tables."""

    edges: int
    colors_used: int
    max_color: int

    @classmethod
    def from_coloring(cls, coloring: Mapping[Edge, int]) -> "ColoringReport":
        if not coloring:
            return cls(edges=0, colors_used=0, max_color=0)
        values = list(coloring.values())
        return cls(
            edges=len(coloring),
            colors_used=len(set(values)),
            max_color=max(values),
        )
