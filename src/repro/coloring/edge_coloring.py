"""Mutable partial edge colorings with residual-list maintenance.

The implementation of the paper rests on one workhorse invariant:

    **Residual invariant.**  Take any ``(deg(e) + 1)``-list instance
    and any proper partial coloring that respects the lists.  For every
    uncolored edge ``e``, remove from ``L_e`` the colors used by its
    colored neighbors.  Then the *residual* instance — the uncolored
    edges with their reduced lists — is again a ``(deg(e) + 1)``-list
    instance (each colored neighbor removes at most one list color but
    reduces the residual degree by exactly one).

Every stage of the paper's algorithm (the per-class coloring of
Lemma 4.2, the per-subspace recursion of Lemma 4.3, the greedy base
case) colors *some* edges and recurses on the residual, so this class
centralises the bookkeeping: it tracks used colors per edge
neighborhood, exposes residual lists and residual degrees, and refuses
improper assignments outright.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.errors import ColoringValidationError, InvalidInstanceError
from repro.coloring.lists import ListAssignment
from repro.graphs.edges import Edge, edge_set
from repro.graphs.line_graph import line_graph_adjacency


class PartialEdgeColoring:
    """A partial proper list edge coloring under construction.

    Parameters
    ----------
    graph:
        The host graph.
    lists:
        The instance's color lists (must cover every edge of ``graph``).

    Notes
    -----
    The class *enforces* properness and list membership on every
    :meth:`assign`; algorithms cannot corrupt it.  Final results are
    still re-checked by :mod:`repro.coloring.verify` — defence in
    depth, because validators must not trust the data structure they
    are validating.
    """

    def __init__(self, graph: nx.Graph, lists: ListAssignment) -> None:
        self._graph = graph
        self._lists = lists
        self._adjacency = line_graph_adjacency(graph)
        missing = [e for e in self._adjacency if e not in lists]
        if missing:
            raise InvalidInstanceError(
                f"edges without lists: {sorted(missing, key=repr)[:3]!r}"
            )
        self._colors: dict[Edge, int] = {}
        # For each edge, the set of colors already used by its colored
        # neighbors; maintained incrementally on every assignment.
        self._blocked: dict[Edge, set[int]] = {e: set() for e in self._adjacency}

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    @property
    def lists(self) -> ListAssignment:
        return self._lists

    def color_of(self, edge: Edge) -> int | None:
        """Return the color of ``edge`` or ``None`` if uncolored."""
        return self._colors.get(edge)

    def is_colored(self, edge: Edge) -> bool:
        return edge in self._colors

    def colored_edges(self) -> list[Edge]:
        """Return the colored edges (sorted, for determinism)."""
        return sorted(self._colors, key=repr)

    def uncolored_edges(self) -> list[Edge]:
        """Return the uncolored edges (sorted, for determinism)."""
        return sorted(
            (e for e in self._adjacency if e not in self._colors), key=repr
        )

    def is_complete(self) -> bool:
        """Return ``True`` when every edge has a color."""
        return len(self._colors) == len(self._adjacency)

    def residual_list(self, edge: Edge) -> frozenset[int]:
        """Return ``L_e`` minus the colors used by colored neighbors.

        This is the list the *residual instance* gives to ``edge``; the
        paper's procedures always work against residual lists.
        """
        return self._lists.list_of(edge) - frozenset(self._blocked[edge])

    def residual_degree(self, edge: Edge) -> int:
        """Return the number of *uncolored* neighbors of ``edge``."""
        return sum(1 for n in self._adjacency[edge] if n not in self._colors)

    def neighbors(self, edge: Edge) -> list[Edge]:
        """Return the line-graph neighbors of ``edge``."""
        return self._adjacency[edge]

    def as_dict(self) -> dict[Edge, int]:
        """Return a snapshot of the colors assigned so far."""
        return dict(self._colors)

    # ------------------------------------------------------------------
    # Write API
    # ------------------------------------------------------------------

    def assign(self, edge: Edge, color: int) -> None:
        """Color ``edge`` with ``color``; raise on any violation.

        Raises
        ------
        ColoringValidationError
            If the edge is already colored, the color is not in the
            edge's (original) list, or a neighbor already uses it.
        """
        if edge not in self._adjacency:
            raise InvalidInstanceError(f"unknown edge {edge!r}")
        if edge in self._colors:
            raise ColoringValidationError(
                f"edge {edge!r} is already colored with {self._colors[edge]}"
            )
        if color not in self._lists.list_of(edge):
            raise ColoringValidationError(
                f"color {color} is not in the list of edge {edge!r}"
            )
        if color in self._blocked[edge]:
            raise ColoringValidationError(
                f"color {color} is already used by a neighbor of {edge!r}"
            )
        self._colors[edge] = color
        for neighbor in self._adjacency[edge]:
            if neighbor not in self._colors:
                self._blocked[neighbor].add(color)

    def assign_batch(self, assignments: Iterable[tuple[Edge, int]]) -> None:
        """Assign several colors; the batch must be conflict-free.

        Algorithms that color a whole independent class "simultaneously"
        (one simulated round) use this; conflicts inside the batch are
        detected because :meth:`assign` updates blocked sets as it goes.
        """
        for edge, color in assignments:
            self.assign(edge, color)

    # ------------------------------------------------------------------
    # Residual instance extraction
    # ------------------------------------------------------------------

    def residual_instance(self) -> tuple[nx.Graph, ListAssignment]:
        """Return the residual ``(graph, lists)`` on the uncolored edges.

        By the residual invariant (module docstring), if the original
        instance satisfied ``|L_e| >= deg(e) + 1`` then so does the
        returned instance — the basis of every "recurse on the
        leftovers" step in the paper.
        """
        remaining = self.uncolored_edges()
        sub = nx.Graph()
        for u, v in remaining:
            sub.add_edge(u, v)
        residual_lists = {
            edge: self.residual_list(edge) for edge in remaining
        }
        return sub, ListAssignment(residual_lists, self._lists.palette)

    def merge_from(self, other: "PartialEdgeColoring") -> None:
        """Adopt all colors of ``other`` (a coloring of a sub-instance).

        Every adoption goes through :meth:`assign`, so an improper
        merge fails loudly rather than corrupting state.
        """
        for edge in other.colored_edges():
            self.assign(edge, other.color_of(edge))

    def merge_dict(self, colors: dict[Edge, int]) -> None:
        """Adopt a plain ``edge -> color`` mapping (deterministic order)."""
        for edge in sorted(colors, key=repr):
            self.assign(edge, colors[edge])


def empty_coloring(graph: nx.Graph, lists: ListAssignment) -> PartialEdgeColoring:
    """Convenience constructor matching the library's naming style."""
    return PartialEdgeColoring(graph, lists)


def full_coloring_as_dict(
    graph: nx.Graph, coloring: PartialEdgeColoring
) -> dict[Edge, int]:
    """Return the finished coloring as a dict, insisting on completeness."""
    if not coloring.is_complete():
        missing = coloring.uncolored_edges()[:3]
        raise ColoringValidationError(
            f"coloring is incomplete; e.g. uncolored edges {missing!r}"
        )
    result = coloring.as_dict()
    expected = set(edge_set(graph))
    if set(result) != expected:
        raise ColoringValidationError(
            "coloring covers a different edge set than the graph"
        )
    return result
