"""Coloring substrate: lists, palettes, colorings, and validation.

This package defines the data model the algorithms operate on:

* :class:`repro.coloring.lists.ListAssignment` — the per-edge color
  lists of a list edge coloring instance, with slack bookkeeping
  (the paper's ``P(Δ̄, S, C)`` parametrisation);
* :class:`repro.coloring.edge_coloring.PartialEdgeColoring` — a
  mutable partial coloring with residual-list maintenance (the key
  invariant: a partial proper coloring of a ``(deg(e)+1)``-list
  instance always leaves a valid ``(deg(e)+1)``-list instance on the
  uncolored edges);
* :mod:`repro.coloring.verify` — *independent* validators used by every
  test and benchmark.  No algorithm is trusted; every produced coloring
  is re-checked from scratch.
"""

from repro.coloring.lists import ListAssignment, deg_plus_one_lists, uniform_lists
from repro.coloring.palette import Palette, split_palette
from repro.coloring.edge_coloring import PartialEdgeColoring
from repro.coloring.verify import (
    check_defective_coloring,
    check_list_edge_coloring,
    check_proper_edge_coloring,
    measure_defects,
)

__all__ = [
    "ListAssignment",
    "deg_plus_one_lists",
    "uniform_lists",
    "Palette",
    "split_palette",
    "PartialEdgeColoring",
    "check_defective_coloring",
    "check_list_edge_coloring",
    "check_proper_edge_coloring",
    "measure_defects",
]
