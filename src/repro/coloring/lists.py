"""Per-edge color lists — the ``P(Δ̄, S, C)`` instance data.

A list edge coloring instance assigns every edge ``e`` a list
``L_e``; the paper parametrises instances by the maximum edge degree
``Δ̄``, the palette size ``C`` and the *slack* ``S`` — the guarantee
that ``|L_e| > S * deg(e)`` for every edge.  :class:`ListAssignment`
stores the lists and computes the realised slack of an instance, which
the core algorithm's precondition checks and the tests both consume.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import networkx as nx

from repro.errors import InvalidInstanceError, ParameterError
from repro.coloring.palette import Palette
from repro.graphs.edges import Edge, edge_key, edge_set
from repro.graphs.line_graph import edge_degree


@dataclass
class ListAssignment:
    """Color lists for every edge of a graph.

    Attributes
    ----------
    lists:
        Mapping from canonical edge to the *set* of allowed colors.
        Sets (not sequences) because all algorithms only ever test
        membership, intersect with subspaces, and remove used colors.
    palette:
        The ambient color space; every list must be a subset.
    """

    lists: dict[Edge, frozenset[int]]
    palette: Palette

    def __post_init__(self) -> None:
        ambient = self.palette.as_set
        for edge, colors in self.lists.items():
            if not colors <= ambient:
                stray = sorted(colors - ambient)[:3]
                raise InvalidInstanceError(
                    f"list of edge {edge!r} contains colors outside the "
                    f"palette, e.g. {stray!r}"
                )

    def __contains__(self, edge: Edge) -> bool:
        return edge in self.lists

    def list_of(self, edge: Edge) -> frozenset[int]:
        """Return ``L_e`` for a canonical edge ``e``."""
        try:
            return self.lists[edge]
        except KeyError:
            raise InvalidInstanceError(f"no list assigned to edge {edge!r}") from None

    def restrict_to_edges(self, edges: Iterable[Edge]) -> "ListAssignment":
        """Return the assignment restricted to a subset of edges."""
        chosen = set(edges)
        missing = chosen - set(self.lists)
        if missing:
            raise InvalidInstanceError(
                f"edges without lists: {sorted(missing, key=repr)[:3]!r}"
            )
        return ListAssignment(
            {edge: self.lists[edge] for edge in chosen}, self.palette
        )

    def intersect_with(self, subspace: Palette) -> "ListAssignment":
        """Return the assignment with every list intersected with ``subspace``.

        This is the list update ``L_e := L_e ∩ C_i`` of the color-space
        reduction (Lemma 4.3).
        """
        sub = subspace.as_set
        return ListAssignment(
            {edge: colors & sub for edge, colors in self.lists.items()},
            subspace,
        )

    def realized_slack(self, graph: nx.Graph) -> float:
        """Return the instance's slack ``min_e |L_e| / deg(e)``.

        Edges of degree 0 impose no constraint (any nonempty list
        suffices) and are skipped; an instance whose edges all have
        degree 0 reports infinite slack.  An empty list on a positive
        degree edge reports slack 0.
        """
        slack = float("inf")
        for edge, colors in self.lists.items():
            degree = edge_degree(graph, edge)
            if degree == 0:
                continue
            slack = min(slack, len(colors) / degree)
        return slack

    def validate_deg_plus_one(self, graph: nx.Graph) -> None:
        """Raise unless ``|L_e| >= deg(e) + 1`` for every edge.

        This is the slack-1 precondition: ``|L_e| > deg(e)`` (strictly
        greater), i.e. the instance is greedily solvable.
        """
        for edge, colors in self.lists.items():
            degree = edge_degree(graph, edge)
            if len(colors) < degree + 1:
                raise InvalidInstanceError(
                    f"edge {edge!r} has deg(e)={degree} but only "
                    f"{len(colors)} list colors (need at least {degree + 1})"
                )
            if not colors:
                raise InvalidInstanceError(f"edge {edge!r} has an empty list")


def deg_plus_one_lists(
    graph: nx.Graph,
    *,
    palette: Palette | None = None,
    seed: int | None = None,
    extra: int = 0,
) -> ListAssignment:
    """Build a ``(deg(e) + 1 + extra)``-list instance on ``graph``.

    Parameters
    ----------
    graph:
        The input graph.
    palette:
        The ambient color space.  Defaults to ``{1, ..., 2Δ - 1}`` —
        the classic greedy palette, so the default instance subsumes
        the ``(2Δ - 1)``-edge coloring problem.
    seed:
        ``None`` gives each edge the *first* ``deg(e) + 1 + extra``
        palette colors (an adversarially overlapping instance); an
        integer seed samples each list uniformly at random from the
        palette.
    extra:
        Additional colors beyond the minimum, to build slack > 1
        instances for the relaxed problems ``P(Δ̄, S, C)``.

    Raises
    ------
    ParameterError
        If the palette is too small to supply some edge's list.
    """
    if palette is None:
        delta = max((d for _n, d in graph.degree()), default=0)
        palette = Palette.of_size(max(1, 2 * delta - 1))
    rng = random.Random(seed) if seed is not None else None
    lists: dict[Edge, frozenset[int]] = {}
    ordered_palette = list(palette)
    for edge in edge_set(graph):
        need = edge_degree(graph, edge) + 1 + extra
        if need > len(ordered_palette):
            raise ParameterError(
                f"palette of size {len(ordered_palette)} cannot supply a "
                f"list of size {need} for edge {edge!r}"
            )
        if rng is None:
            chosen = ordered_palette[:need]
        else:
            chosen = rng.sample(ordered_palette, need)
        lists[edge] = frozenset(chosen)
    return ListAssignment(lists, palette)


def uniform_lists(graph: nx.Graph, palette: Palette) -> ListAssignment:
    """Give every edge the *full* palette as its list.

    With ``palette = {1, ..., 2Δ - 1}`` this is exactly the classic
    ``(2Δ - 1)``-edge coloring problem stated as a list problem.
    """
    full = frozenset(palette.as_set)
    return ListAssignment({edge: full for edge in edge_set(graph)}, palette)


def lists_from_mapping(
    graph: nx.Graph, mapping: Mapping[tuple, Iterable[int]], palette: Palette
) -> ListAssignment:
    """Build a :class:`ListAssignment` from a user-provided mapping.

    Edge keys in ``mapping`` may be in either endpoint order; they are
    canonicalised here.  Every graph edge must receive a list.
    """
    lists: dict[Edge, frozenset[int]] = {}
    for (u, v), colors in mapping.items():
        lists[edge_key(u, v)] = frozenset(colors)
    missing = [e for e in edge_set(graph) if e not in lists]
    if missing:
        raise InvalidInstanceError(f"edges without lists: {missing[:3]!r}")
    return ListAssignment(lists, palette)
