"""Zero-dependency span tracing into the run-ledger stream.

``with trace("cache.load", fingerprint=fp):`` around an operation
emits one span record — name, nesting (span/parent ids), wall-clock,
ok/error status, caller-supplied fields — into the active trace
directory's ledger files (``kind: "span"`` lines next to the ``kind:
"run"`` lines of :mod:`repro.telemetry.ledger`).

The library pre-instruments its own seams: the executor's attempt
loop and retry backoff, disk-cache load/publish, the cluster worker's
claim/drain/publish, and the service's request handling.  Those call
sites are permanent, so the **disabled path must be free**: when no
trace directory is installed, :func:`trace` returns a shared no-op
context manager without allocating a span — a couple of dict builds
and attribute reads per call, pinned <1% of any real spec execution by
``benchmarks/bench_telemetry.py``.

Enable tracing with :func:`trace_context` (scoped) or by exporting
``REPRO_TRACE_DIR`` before the process starts (how a whole worker
fleet is switched on: workers inherit the coordinator's environment).
Nesting is tracked per thread; spans of concurrent service requests
interleave in the file but chain correct parent ids.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.telemetry.ledger import LEDGER_FORMAT, LedgerWriter, worker_identity

__all__ = [
    "trace",
    "trace_context",
    "tracing_enabled",
]

#: The active trace directory.  ``None`` (the overwhelmingly common
#: state) short-circuits :func:`trace` into the shared no-op — this is
#: a plain module global, not a ContextVar, because the disabled check
#: must cost one attribute read.
_TRACE_DIR: str | None = os.environ.get("REPRO_TRACE_DIR") or None

_IDS = itertools.count(1)
_STACK = threading.local()


def tracing_enabled() -> bool:
    """Whether spans are currently being recorded in this process."""
    return _TRACE_DIR is not None


@contextmanager
def trace_context(directory: str | Path | None) -> Iterator[None]:
    """Record spans under ``directory`` for the ``with`` block.

    ``None`` disables tracing for the block (useful to silence a noisy
    sub-operation).  The previous setting is restored on exit.  The
    switch is process-global (it guards permanent instrumentation in
    hot paths), so scoping it per-thread would buy nothing: enable it
    around whole phases, not around racing fine-grained regions.
    """
    global _TRACE_DIR
    previous = _TRACE_DIR
    _TRACE_DIR = str(directory) if directory is not None else None
    try:
        yield
    finally:
        _TRACE_DIR = previous


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def annotate(self, **fields: Any) -> None:
        """Accept and drop annotations (the live span records them)."""


_NOOP = _NoopSpan()


class _Span:
    """One live span: times the block, links nesting, emits a record."""

    __slots__ = (
        "name",
        "fields",
        "directory",
        "span_id",
        "parent_id",
        "depth",
        "_started",
        "_unix_ts",
    )

    def __init__(self, name: str, directory: str, fields: dict[str, Any]):
        self.name = name
        self.directory = directory
        self.fields = fields

    def annotate(self, **fields: Any) -> None:
        """Attach fields discovered mid-block (e.g. hit/miss outcomes)."""
        self.fields.update(fields)

    def __enter__(self) -> "_Span":
        stack = getattr(_STACK, "spans", None)
        if stack is None:
            stack = _STACK.spans = []
        worker = worker_identity()
        self.span_id = f"{worker}-{next(_IDS)}"
        self.parent_id = stack[-1].span_id if stack else None
        self.depth = len(stack)
        stack.append(self)
        self._unix_ts = time.time()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._started
        stack = getattr(_STACK, "spans", None)
        if stack and stack[-1] is self:
            stack.pop()
        LedgerWriter(self.directory).record(
            {
                "kind": "span",
                "format": LEDGER_FORMAT,
                "name": self.name,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "depth": self.depth,
                "status": "ok" if exc_type is None else exc_type.__name__,
                "fields": self.fields,
                "observed": {
                    "wall_clock_s": round(elapsed, 9),
                    "worker": worker_identity(),
                    "unix_ts": self._unix_ts,
                },
            }
        )
        return False  # never swallow the block's exception


def trace(name: str, **fields: Any) -> _NoopSpan | _Span:
    """A context manager timing ``name``; free when tracing is off.

    ``fields`` are arbitrary JSON-safe annotations recorded on the
    span (keep values small — fingerprint prefixes, counts, shard
    indices).  Use the returned span's ``annotate(**more)`` for
    outcomes only known inside the block; when tracing is disabled the
    shared no-op accepts (and drops) the same calls.
    """
    directory = _TRACE_DIR
    if directory is None:
        return _NOOP
    return _Span(name, directory, fields)
