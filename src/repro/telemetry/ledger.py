"""The run ledger: one append-only JSONL record per executed spec.

The executor (:func:`repro.api.run` and friends) appends one record to
the ledger every time it *resolves* a spec — whether by executing it,
replaying it from a cache layer, or exhausting its failure policy.
Cluster workers default the ledger on (``<job_dir>/ledger/``), so a
sharded job accumulates a complete account of what ran where without
any caller opting in.

**Discipline.**  The ledger is strictly observational, mirroring the
timing-sidecar rules of :mod:`repro.cluster.worker`:

* records live *outside* every sealed file and every fingerprint —
  nothing here can perturb result byte-identity;
* every write is best-effort: an unwritable ledger directory silently
  records nothing rather than failing the run;
* each process appends to its **own** file
  (``<hostname>-<pid>.jsonl``), so concurrent workers never interleave
  partial lines; readers merge all files of a directory.

**Record shape.**  Each line is one JSON object.  Run records keep a
*deterministic core* (spec fingerprint, algorithm, instance/scenario
labels, disposition, result fingerprint, rounds, messages, attempts,
error type) separated from an ``observed`` sub-object (wall-clock,
engine, worker identity, timestamp, environment snapshot).  The core
of a run record is byte-stable across serial / pool / sharded
execution of the same batch; the ``observed`` block is where all the
legitimately non-deterministic accounting lives.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.spec import RunSpec
    from repro.results import RunResult

#: Ledger record format version (bumped on incompatible shape change).
LEDGER_FORMAT = 1

#: The dispositions a run record may carry: how the spec was resolved.
#: The executor writes the first four; ``coalesced`` is written by the
#: service layer for followers that joined a concurrent identical
#: request (those never reach the executor at all).
RUN_DISPOSITIONS = (
    "executed",
    "failed",
    "cache_memory",
    "cache_disk",
    "coalesced",
)

__all__ = [
    "LEDGER_FORMAT",
    "RUN_DISPOSITIONS",
    "LedgerWriter",
    "active_ledger_dir",
    "deterministic_core",
    "ledger_context",
    "read_ledger_rows",
    "record_run",
    "resolve_ledger_dir",
    "snapshot_environment",
]


# --- environment snapshot ---------------------------------------------

_ENVIRONMENT_CACHE: tuple[int, dict[str, Any]] | None = None


def _module_version(name: str) -> str | None:
    try:
        module = __import__(name)
    except Exception:
        return None
    return getattr(module, "__version__", None)


def snapshot_environment() -> dict[str, Any]:
    """A JSON-safe snapshot of the interpreter and host this runs on.

    The provenance block embedded in ledger records and
    ``BENCH_scheduler.json``: enough to answer "which python, which
    numpy, which machine" for any recorded number.  Cached per process
    (the pid key keeps forked pool workers honest); callers get a
    private copy.
    """
    global _ENVIRONMENT_CACHE
    pid = os.getpid()
    if _ENVIRONMENT_CACHE is None or _ENVIRONMENT_CACHE[0] != pid:
        _ENVIRONMENT_CACHE = (
            pid,
            {
                "python": platform.python_version(),
                "implementation": platform.python_implementation(),
                "platform": platform.platform(),
                "machine": platform.machine(),
                "numpy": _module_version("numpy"),
                "networkx": _module_version("networkx"),
                "hostname": socket.gethostname(),
                "pid": pid,
            },
        )
    return dict(_ENVIRONMENT_CACHE[1])


def worker_identity() -> str:
    """``hostname:pid`` — who is writing, at per-process granularity."""
    snapshot = snapshot_environment()
    return f"{snapshot['hostname']}:{snapshot['pid']}"


# --- the ambient seam --------------------------------------------------

#: The ambient ledger directory (the executor's ``ledger_dir=`` default).
#: ``None`` means runs record nothing unless told where to.
_ACTIVE_LEDGER_DIR: ContextVar[str | None] = ContextVar(
    "repro_ledger_dir", default=None
)


@contextmanager
def ledger_context(directory: str | Path | None) -> Iterator[str | None]:
    """Install ``directory`` as the ambient ledger for the ``with`` block.

    The observability sibling of
    :func:`repro.model.scheduler.engine_override`: every
    ``run``/``run_many``/``run_many_iter`` call inside the block that
    does not pass its own ``ledger_dir=`` records there.  ``None`` is a
    no-op (the ambient ledger is left as is), so callers can pass their
    own optional argument straight through.
    """
    if directory is None:
        yield _ACTIVE_LEDGER_DIR.get()
        return
    token = _ACTIVE_LEDGER_DIR.set(str(directory))
    try:
        yield str(directory)
    finally:
        _ACTIVE_LEDGER_DIR.reset(token)


def active_ledger_dir() -> str | None:
    """The ambient ledger directory, or ``None`` when recording is off."""
    return _ACTIVE_LEDGER_DIR.get()


def resolve_ledger_dir(explicit: str | Path | None) -> str | None:
    """An explicit ``ledger_dir=`` wins; otherwise the ambient one."""
    if explicit is not None:
        return str(explicit)
    return _ACTIVE_LEDGER_DIR.get()


# --- writing -----------------------------------------------------------


class LedgerWriter:
    """Append JSON lines to a per-process file in a ledger directory.

    One writer may be constructed per call site — construction is
    cheap and opens nothing.  Every :meth:`record` recomputes the
    target filename from the *current* pid, so a writer that crosses a
    ``fork`` keeps the one-file-per-process invariant.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def path(self) -> Path:
        hostname = snapshot_environment()["hostname"]
        return self.directory / f"{hostname}-{os.getpid()}.jsonl"

    def record(self, row: dict[str, Any]) -> bool:
        """Append one record; returns whether the write landed.

        Best-effort by contract: any :class:`OSError` (read-only
        directory, disk full, a file where the directory should be) is
        swallowed — observability must never fail a run.
        """
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            line = json.dumps(row, sort_keys=True, default=repr)
            with open(self.path(), "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
            return True
        except OSError:
            return False


def _message_count(result: "RunResult") -> int | None:
    """The scheduler's message counter, wherever this result keeps it.

    Scenario executions report ``messages_delivered``; primitive
    pipelines report ``messages``; plain solver runs may report
    neither (``None`` — absence is honest, zero would be a lie).
    """
    for source in (result.details, result.stats):
        for key in ("messages_delivered", "messages"):
            value = source.get(key)
            if isinstance(value, int) and not isinstance(value, bool):
                return value
    return None


def record_run(
    ledger_dir: str | Path | None,
    *,
    spec: "RunSpec",
    fingerprint: str,
    disposition: str,
    result: "RunResult",
    attempts: int = 1,
    wall_clock_s: float | None = None,
    engine: str | None = None,
) -> None:
    """Append one run record; a ``None`` directory records nothing.

    Called by the executor at every resolution site (execution, cache
    hit, capture).  Wrapped in a blanket exception guard beyond the
    writer's own ``OSError`` swallow: a bug in record *construction*
    must not take the run down either.
    """
    if ledger_dir is None:
        return
    try:
        scenario = spec.scenario
        row: dict[str, Any] = {
            "kind": "run",
            "format": LEDGER_FORMAT,
            "fingerprint": fingerprint,
            "algorithm": spec.algorithm,
            "instance": spec.instance.label(),
            "scenario": (
                None
                if scenario is None or scenario.is_identity()
                else scenario.label()
            ),
            "disposition": disposition,
            "result_fingerprint": result.result_fingerprint(),
            "rounds": result.rounds,
            "messages": _message_count(result),
            "attempts": attempts,
            "error_type": getattr(result, "error_type", None),
            "observed": {
                "wall_clock_s": (
                    round(wall_clock_s, 6) if wall_clock_s is not None else None
                ),
                "engine": engine,
                "worker": worker_identity(),
                "unix_ts": time.time(),
                "environment": snapshot_environment(),
            },
        }
        LedgerWriter(ledger_dir).record(row)
    except Exception:
        pass


def deterministic_core(row: dict[str, Any]) -> dict[str, Any]:
    """A run record minus its ``observed`` block.

    What the byte-stability contract covers: the core of the records a
    batch produces is identical across serial / pool / sharded
    execution; everything timing- or host-dependent lives under
    ``observed`` and is excluded here.
    """
    return {key: value for key, value in row.items() if key != "observed"}


# --- reading -----------------------------------------------------------


def read_ledger_rows(directory: str | Path) -> list[dict[str, Any]]:
    """Merge every ``*.jsonl`` file of a ledger directory into one list.

    Files are read in sorted name order, lines in append order.  A
    line that does not parse as a JSON object is skipped — a ledger
    torn by a crashing writer degrades to fewer records, never to a
    read error (the same tolerance every sidecar reader here has).  A
    missing directory is simply an empty ledger.
    """
    root = Path(directory)
    if not root.is_dir():
        return []
    rows: list[dict[str, Any]] = []
    for path in sorted(root.glob("*.jsonl")):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue
            if isinstance(row, dict):
                rows.append(row)
    return rows
