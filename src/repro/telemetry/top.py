"""``python -m repro top``: a refreshing dashboard over a running job.

The read side of the live layer: :mod:`repro.telemetry.events` gives a
resumable event stream, the cluster's ``job_status`` gives the shard
table, and this module folds both into one terminal page — per-shard
state and throughput, per-worker rates, retry / cache-hit /
dead-letter counts, the most recent events, and an ETA extrapolated
from observed throughput.

Two targets, one renderer:

* a **job directory** — read locally via
  :func:`repro.cluster.coordinator.job_status` and
  :func:`repro.telemetry.events.read_events`;
* a **service job URL** (``http://host:port/v1/jobs/<id>``) — polled
  over plain HTTP: the status body carries the same cluster snapshot,
  and ``GET <url>/events?follow=0&after=<cursor>`` returns the event
  backlog one-shot (the cursor makes each poll exactly-once).

``repro shard status --watch N`` reuses the same renderer — one way of
drawing a fleet, however you reach it.  Everything here is read-only
and observational: ``top`` never writes into the job directory.
"""

from __future__ import annotations

import json
import math
import time
from typing import Any, Callable

from repro.telemetry.events import events_dir_of, read_events

__all__ = [
    "fold_events",
    "gather_local",
    "gather_service",
    "new_event_state",
    "render_job_view",
    "run_top",
    "shard_progress_table",
]

#: ANSI sequence clearing the screen and homing the cursor (the
#: refresh between frames; suppressed for one-shot renders).
CLEAR_SCREEN = "\x1b[2J\x1b[H"

#: Events kept in the "recent events" tail of the dashboard.
RECENT_EVENTS = 8


def shard_progress_table(status: dict[str, Any]) -> str:
    """Per-shard progress rows: state, wall-clock, throughput, worker —
    plus the run-ledger's attempt accounting where a ledger exists.

    Timing comes from the observational sidecars workers publish next
    to their sealed results (``job_status``'s ``timing`` map); the
    attempts / retries / cache-hit columns come from the job's run
    ledger (``job_status``'s ``ledger`` map).  Shards with neither
    sidecar nor ledger rows show ``-`` — both sources are best-effort
    by contract.  This is the renderer behind ``repro shard status``,
    ``--watch``, and ``repro top``.
    """
    from repro.analysis.tables import format_table

    states = {}
    for state in ("done", "running", "stale", "pending"):
        for shard in status[state]:
            states[shard] = state
    timing = status.get("timing", {})
    ledger = status.get("ledger", {})
    rows = []
    for shard in range(status["shards"]):
        entry = timing.get(str(shard), {})
        wall = entry.get("wall_clock_s")
        if wall is None and entry.get("elapsed_s") is not None:
            wall = entry["elapsed_s"]
        rate = entry.get("specs_per_s")
        # Display guard mirrors the sidecar guard: anything non-numeric
        # or non-finite renders as "-" (a sub-ms shard has wall 0.0 and
        # rate None — real, just unmeasurable at sidecar resolution).
        wall_ok = isinstance(wall, (int, float)) and math.isfinite(wall)
        rate_ok = isinstance(rate, (int, float)) and math.isfinite(rate)
        accounting = ledger.get(str(shard), {})
        rows.append(
            [
                f"shard-{shard:04d}",
                states.get(shard, "?"),
                f"{wall:.3f}" if wall_ok else "-",
                f"{rate:.1f}" if rate_ok else "-",
                accounting.get("attempts", "-"),
                accounting.get("retries", "-"),
                accounting.get("cache_hits", "-"),
                entry.get("worker") or "-",
            ]
        )
    return format_table(
        [
            "shard",
            "state",
            "wall-clock (s)",
            "specs/s",
            "attempts",
            "retries",
            "cache-hits",
            "worker",
        ],
        rows,
    )


# --- event folding -----------------------------------------------------


def new_event_state() -> dict[str, Any]:
    """A fresh accumulator for :func:`fold_events`."""
    return {"by_type": {}, "heartbeats": {}, "recent": []}


def fold_events(
    state: dict[str, Any], events: list[dict[str, Any]]
) -> dict[str, Any]:
    """Fold a batch of stream events into the accumulated view state.

    Tracks counts per event type, the latest heartbeat progress per
    shard, and the :data:`RECENT_EVENTS` most recent events.  The
    accumulator plus a resume cursor is all a dashboard needs to keep
    between refreshes — each event is folded exactly once.
    """
    for event in events:
        kind = str(event.get("event"))
        state["by_type"][kind] = state["by_type"].get(kind, 0) + 1
        if kind == "shard_heartbeat" and isinstance(event.get("shard"), int):
            state["heartbeats"][event["shard"]] = {
                "done": event.get("done"),
                "total": event.get("total"),
            }
        state["recent"].append(event)
    del state["recent"][:-RECENT_EVENTS]
    return state


def _describe_event(event: dict[str, Any], now: float) -> str:
    """One tail line: age, type, and the payload worth a glance."""
    ts = event.get("unix_ts")
    age = (
        f"{max(0.0, now - ts):6.1f}s"
        if isinstance(ts, (int, float)) and not isinstance(ts, bool)
        else "     ?"
    )
    detail_parts = []
    for key in ("shard", "disposition", "fingerprint", "attempt", "pid"):
        value = event.get(key)
        if value is None:
            continue
        if key == "fingerprint" and isinstance(value, str):
            value = value[:12]
        detail_parts.append(f"{key}={value}")
    worker = event.get("worker")
    detail = " ".join(detail_parts)
    return (
        f"  {age} ago  {str(event.get('event')):<18} {detail}"
        + (f"  [{worker}]" if worker else "")
    )


# --- the view ----------------------------------------------------------


def _eta_s(status: dict[str, Any], state: dict[str, Any]) -> float | None:
    """Remaining-work estimate from observed throughput.

    Throughput is distinct specs finished per second of shard
    wall-clock observed so far (done-shard sidecars plus the elapsed
    time of running shards); progress inside running shards comes from
    their latest heartbeat.  ``None`` until there is any signal — an
    ETA that would be a guess is not shown.
    """
    distinct = status.get("distinct_specs")
    done = status.get("specs_done")
    if not isinstance(distinct, int) or not isinstance(done, int):
        return None
    in_flight = 0
    for shard, beat in state["heartbeats"].items():
        if str(shard) in {str(s) for s in status.get("running", [])} and isinstance(
            beat.get("done"), int
        ):
            in_flight += beat["done"]
    finished = done + in_flight
    remaining = max(0, distinct - finished)
    if remaining == 0:
        return 0.0
    observed_s = 0.0
    for entry in (status.get("timing") or {}).values():
        for key in ("wall_clock_s", "elapsed_s"):
            value = entry.get(key)
            if isinstance(value, (int, float)) and math.isfinite(value):
                observed_s += float(value)
                break
    if finished <= 0 or observed_s <= 0:
        return None
    return remaining / (finished / observed_s)


def render_job_view(
    status: dict[str, Any],
    state: dict[str, Any],
    *,
    job: dict[str, Any] | None = None,
    title: str | None = None,
    clock: Callable[[], float] = time.time,
) -> str:
    """Render one dashboard frame from a status snapshot + event state.

    ``status`` is a :func:`repro.cluster.coordinator.job_status` dict
    (possibly arriving via the service's ``cluster`` field); ``job`` is
    the service-level snapshot when polling over HTTP (state, slots
    done).  Renders header, shard table, counters, per-worker
    throughput, ETA, and the recent-event tail.
    """
    now = clock()
    lines: list[str] = []
    if title:
        lines.append(title)
    if job is not None:
        lines.append(
            f"job {str(job.get('job'))[:12]}… state={job.get('state')} "
            f"slots {job.get('done')}/{job.get('total')}"
        )
    if status.get("shards") is None:
        lines.append("(no cluster plan yet — the job directory is empty)")
        if state["recent"]:
            lines.append("")
            lines.extend(
                _describe_event(event, now) for event in state["recent"]
            )
        return "\n".join(lines)
    lines.append(
        f"plan {str(status.get('plan_fingerprint'))[:12]}: "
        f"{len(status.get('done', []))}/{status['shards']} shards done "
        f"({status.get('specs_done')}/{status.get('distinct_specs')} "
        f"distinct specs), {len(status.get('running', []))} running, "
        f"{len(status.get('stale', []))} stale, "
        f"{len(status.get('pending', []))} pending"
    )
    lines.append(shard_progress_table(status))
    ledger = status.get("ledger") or {}
    cache_hits = sum(
        entry.get("cache_hits", 0)
        for entry in ledger.values()
        if isinstance(entry, dict)
    )
    retries = sum(
        entry.get("retries", 0)
        for entry in ledger.values()
        if isinstance(entry, dict)
    )
    by_type = state["by_type"]
    lines.append(
        f"retries: {max(retries, by_type.get('spec_retry', 0))}   "
        f"cache hits: {cache_hits}   "
        f"dead letters: {len(status.get('failed') or {})}   "
        f"events: {sum(by_type.values())}"
    )
    workers: dict[str, dict[str, float]] = {}
    for entry in (status.get("timing") or {}).values():
        worker = entry.get("worker")
        executed = entry.get("specs_executed")
        wall = entry.get("wall_clock_s")
        if (
            isinstance(worker, str)
            and isinstance(executed, int)
            and isinstance(wall, (int, float))
            and math.isfinite(wall)
        ):
            stats = workers.setdefault(
                worker, {"executed": 0, "wall_clock_s": 0.0}
            )
            stats["executed"] += executed
            stats["wall_clock_s"] += float(wall)
    if workers:
        rates = []
        for worker, stats in sorted(workers.items()):
            rate = (
                f"{stats['executed'] / stats['wall_clock_s']:.1f}/s"
                if stats["wall_clock_s"] > 0
                else "-"
            )
            rates.append(f"{worker}: {stats['executed']} specs @ {rate}")
        lines.append("workers: " + "   ".join(rates))
    eta = _eta_s(status, state)
    if status.get("complete"):
        lines.append("job complete")
    elif eta is not None:
        lines.append(f"eta: ~{eta:.1f}s at observed throughput")
    if state["recent"]:
        lines.append("")
        lines.append("recent events:")
        lines.extend(_describe_event(event, now) for event in state["recent"])
    return "\n".join(lines)


# --- gathering ---------------------------------------------------------


def gather_local(
    job_dir: str, cursor: str, *, lease_ttl: float = 60.0
) -> tuple[dict[str, Any] | None, dict[str, Any], list[dict[str, Any]], str]:
    """One local poll: ``(job, status, new_events, next_cursor)``.

    ``job`` is always ``None`` locally (there is no service snapshot);
    the cluster's own :func:`~repro.cluster.coordinator.job_status`
    provides everything else.  A directory with no plan manifest yet
    (the coordinator hasn't planned, or ``top`` was started first)
    polls as an empty snapshot instead of failing — the dashboard
    fills in once the plan lands.
    """
    from repro.cluster.coordinator import job_status
    from repro.errors import ClusterError

    try:
        status = job_status(job_dir, lease_ttl=lease_ttl)
    except ClusterError:
        status = {}
    events, cursor = read_events(events_dir_of(job_dir), cursor or None)
    return None, status, events, cursor


def gather_service(
    url: str, cursor: str, *, timeout: float = 10.0
) -> tuple[dict[str, Any], dict[str, Any], list[dict[str, Any]], str]:
    """One HTTP poll of a service job URL: ``(job, status, events, cursor)``.

    ``url`` is the job's status URL (``…/v1/jobs/<id>``); events come
    from the sibling ``/events`` route with ``follow=0`` (backlog
    only, no blocking) and the cursor from the last delivered event.
    Plain ``urllib`` — the endpoints are bare-urllib readable by
    contract.
    """
    import urllib.request

    base = url.rstrip("/")
    with urllib.request.urlopen(base, timeout=timeout) as response:
        job = json.loads(response.read())
    status = job.get("cluster") if isinstance(job.get("cluster"), dict) else {}
    events_url = f"{base}/events?follow=0"
    if cursor:
        events_url += f"&after={cursor}"
    events: list[dict[str, Any]] = []
    with urllib.request.urlopen(events_url, timeout=timeout) as response:
        for raw in response:
            line = raw.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict):
                events.append(event)
                if isinstance(event.get("cursor"), str):
                    cursor = event["cursor"]
    return job, status, events, cursor


def _is_url(target: str) -> bool:
    return target.startswith(("http://", "https://"))


def run_top(
    target: str,
    *,
    interval: float = 2.0,
    once: bool = False,
    lease_ttl: float = 60.0,
    iterations: int | None = None,
    clock: Callable[[], float] = time.time,
    sleep: Callable[[float], None] = time.sleep,
    emit: Callable[[str], None] = print,
) -> int:
    """The ``repro top`` loop: poll, fold, render, repeat.

    ``target`` is a job directory or a service job URL.  Exits 0 when
    the job completes (one final frame is drawn), after the first frame
    with ``once=True``, or after ``iterations`` frames (tests).
    ``clock`` / ``sleep`` / ``emit`` are injectable for deterministic
    tests; the default ``emit`` prints frames to stdout, prefixed with
    a screen clear between refreshes.
    """
    cursor = ""
    state = new_event_state()
    frames = 0
    while True:
        if _is_url(target):
            job, status, events, cursor = gather_service(target, cursor)
        else:
            job, status, events, cursor = gather_local(
                target, cursor, lease_ttl=lease_ttl
            )
        fold_events(state, events)
        frame = render_job_view(
            status, state, job=job, title=f"repro top — {target}", clock=clock
        )
        emit((CLEAR_SCREEN if frames and not once else "") + frame)
        frames += 1
        finished = bool(status.get("complete")) or (
            job is not None and job.get("state") in ("done", "failed")
        )
        if once or finished or (iterations is not None and frames >= iterations):
            return 0
        sleep(max(0.1, interval))
