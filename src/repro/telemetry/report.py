"""Fleet rollup: merge run ledgers into benchmark-style tables.

``python -m repro report <job_dir|ledger_dir>`` lands here.  The
input is any directory holding ledger files — a sharded job directory
(whose workers default the ledger on under ``<job>/ledger/``), a
service data directory, or a bare ledger directory — and the output is
the accounting the ROADMAP's benchmark tables use everywhere else:

* per-algorithm / per-scenario latency percentiles (p50/p90/max over
  *executed* records — cache replays are counted separately, never
  mixed into solve latency);
* cache-hit and retry rates;
* specs/sec per worker (``hostname:pid``);
* a dead-letter summary, from ``failed/`` quarantine files when the
  directory is a job dir, falling back to failed ledger records;
* ledger-driven retry advice: flaky-recovery vs poison rates per
  algorithm/scenario and a suggested ``FailurePolicy(retries=…)``
  sized to the worst observed recovery depth.

The rollup reads only observational data and is itself observational:
nothing here feeds back into results or fingerprints.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.telemetry.ledger import read_ledger_rows

__all__ = ["find_ledger_dir", "format_report", "report_smoke", "rollup"]

#: Ledger subdirectory convention shared with the cluster worker and
#: the service (duplicated as a constant to keep this module importable
#: without the cluster layer).
LEDGER_SUBDIR = "ledger"


class TelemetryError(ReproError, RuntimeError):
    """The telemetry smoke found a structural breach in a rollup."""


def find_ledger_dir(path: str | Path) -> Path:
    """Resolve a report target: a job/data dir or a ledger dir itself.

    A directory containing a ``ledger/`` subdirectory reports on that
    (the job-dir and service-data-dir convention); anything else is
    treated as the ledger directory directly.
    """
    root = Path(path)
    nested = root / LEDGER_SUBDIR
    if nested.is_dir():
        return nested
    return root


def _percentile(values: list[float], quantile: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample."""
    rank = max(0, min(len(values) - 1, int(round(quantile * (len(values) - 1)))))
    return values[rank]


def _group_key(row: dict[str, Any]) -> str:
    algorithm = row.get("algorithm") or "?"
    scenario = row.get("scenario")
    return f"{algorithm} [{scenario}]" if scenario else str(algorithm)


def rollup(path: str | Path) -> dict[str, Any]:
    """Merge a directory's ledgers into one JSON-safe accounting dict.

    Multiple records of one fingerprint (a worker died after recording
    but before publishing, so a reclaimer re-ran the spec) are all
    counted — the rollup describes *work performed*, not distinct
    specs; ``specs_distinct`` carries the deduplicated count.
    """
    root = Path(path)
    ledger_dir = find_ledger_dir(root)
    rows = read_ledger_rows(ledger_dir)
    runs = [row for row in rows if row.get("kind") == "run"]
    spans = [row for row in rows if row.get("kind") == "span"]

    by_group: dict[str, dict[str, Any]] = {}
    workers: dict[str, dict[str, float]] = {}
    executed = cache_hits = failed = retried = extra_attempts = 0
    fingerprints: set[str] = set()
    environments: dict[str, dict[str, Any]] = {}

    for row in runs:
        disposition = row.get("disposition")
        observed = row.get("observed") or {}
        fingerprints.add(str(row.get("fingerprint")))
        group = by_group.setdefault(
            _group_key(row),
            {
                "runs": 0,
                "executed": 0,
                "cache_hits": 0,
                "failed": 0,
                "retried": 0,
                "rounds_max": 0,
                "_latencies": [],
            },
        )
        group["runs"] += 1
        attempts = row.get("attempts")
        if isinstance(attempts, int) and attempts > 1:
            retried += 1
            extra_attempts += attempts - 1
            group["retried"] += 1
        rounds = row.get("rounds")
        if isinstance(rounds, int):
            group["rounds_max"] = max(group["rounds_max"], rounds)
        wall = observed.get("wall_clock_s")
        if disposition in ("executed", "failed"):
            executed += 1
            key = "failed" if disposition == "failed" else "executed"
            group[key] += 1
            if disposition == "failed":
                failed += 1
            worker = str(observed.get("worker"))
            stats = workers.setdefault(
                worker, {"executed": 0, "wall_clock_s": 0.0}
            )
            stats["executed"] += 1
            if isinstance(wall, (int, float)) and not isinstance(wall, bool):
                stats["wall_clock_s"] += float(wall)
                group["_latencies"].append(float(wall))
        elif disposition in ("cache_memory", "cache_disk", "coalesced"):
            cache_hits += 1
            group["cache_hits"] += 1
        env = observed.get("environment")
        if isinstance(env, dict):
            # One entry per interpreter/host flavor, not per process.
            flavor = {
                key: value for key, value in env.items() if key != "pid"
            }
            environments.setdefault(
                "|".join(f"{k}={flavor[k]}" for k in sorted(flavor)), flavor
            )

    by_algorithm: dict[str, Any] = {}
    for key, group in sorted(by_group.items()):
        latencies = sorted(group.pop("_latencies"))
        group["latency_s"] = (
            {
                "p50": round(_percentile(latencies, 0.50), 6),
                "p90": round(_percentile(latencies, 0.90), 6),
                "max": round(latencies[-1], 6),
                "mean": round(sum(latencies) / len(latencies), 6),
            }
            if latencies
            else None
        )
        by_algorithm[key] = group

    for worker, stats in workers.items():
        wall = stats["wall_clock_s"]
        stats["specs_per_s"] = (
            round(stats["executed"] / wall, 3) if wall > 0 else None
        )
        stats["wall_clock_s"] = round(wall, 6)

    resolutions = executed + cache_hits

    # Retry advice: split terminal records into flaky recoveries
    # (executed, but only after retries — a retry budget *helped*) and
    # poison (failed every attempt — no budget would have helped).
    # The suggested budget is the worst observed recovery depth.
    advice_groups: dict[str, dict[str, Any]] = {}
    for row in runs:
        disposition = row.get("disposition")
        if disposition not in ("executed", "failed"):
            continue
        attempts = row.get("attempts")
        attempts = (
            attempts
            if isinstance(attempts, int) and not isinstance(attempts, bool)
            else 1
        )
        entry = advice_groups.setdefault(
            _group_key(row),
            {
                "terminal": 0,
                "flaky_recoveries": 0,
                "poison": 0,
                "retries_needed": 0,
            },
        )
        entry["terminal"] += 1
        if disposition == "executed":
            if attempts > 1:
                entry["flaky_recoveries"] += 1
                entry["retries_needed"] = max(
                    entry["retries_needed"], attempts - 1
                )
        else:
            entry["poison"] += 1
    for entry in advice_groups.values():
        terminal = entry["terminal"]
        entry["flaky_rate"] = (
            round(entry["flaky_recoveries"] / terminal, 4) if terminal else None
        )
        entry["poison_rate"] = (
            round(entry["poison"] / terminal, 4) if terminal else None
        )
    retry_advice = {
        "by_group": dict(sorted(advice_groups.items())),
        "suggested_retries": max(
            (entry["retries_needed"] for entry in advice_groups.values()),
            default=0,
        ),
        "poison_specs": sum(
            entry["poison"] for entry in advice_groups.values()
        ),
    }

    span_names: dict[str, dict[str, float]] = {}
    for span in spans:
        name = str(span.get("name"))
        observed = span.get("observed") or {}
        entry = span_names.setdefault(name, {"count": 0, "wall_clock_s": 0.0})
        entry["count"] += 1
        wall = observed.get("wall_clock_s")
        if isinstance(wall, (int, float)) and not isinstance(wall, bool):
            entry["wall_clock_s"] = round(entry["wall_clock_s"] + wall, 9)

    return {
        "source": str(root),
        "ledger_dir": str(ledger_dir),
        "records": len(rows),
        "run_records": len(runs),
        "span_records": len(spans),
        "specs_distinct": len(fingerprints),
        "by_algorithm": by_algorithm,
        "cache": {
            "hits": cache_hits,
            "executions": executed,
            "hit_rate": (
                round(cache_hits / resolutions, 4) if resolutions else None
            ),
        },
        "retries": {
            "specs_retried": retried,
            "extra_attempts": extra_attempts,
            "retry_rate": (
                round(retried / len(runs), 4) if runs else None
            ),
        },
        "retry_advice": retry_advice,
        "failures": {
            "failed_records": failed,
            "dead_letters": _dead_letter_summary(root),
        },
        "workers": dict(sorted(workers.items())),
        "spans": dict(sorted(span_names.items())),
        "environments": sorted(
            environments.values(), key=lambda env: sorted(env.items())
        ),
    }


def _dead_letter_summary(root: Path) -> list[dict[str, Any]]:
    """Quarantined failures when the target is a job directory.

    Reported per dead letter: fingerprint, error type, attempts.  A
    directory with no ``failed/`` quarantine (a bare ledger dir, a
    service data dir) reports an empty list — the failed ledger
    records above still carry the failure counts.
    """
    from repro.api.diskcache import read_json

    directory = root / "failed"
    if not directory.is_dir():
        return []
    letters = []
    for path in sorted(directory.glob("*.json")):
        payload = read_json(path)
        if not isinstance(payload, dict):
            continue
        result = payload.get("result")
        result = result if isinstance(result, dict) else {}
        failure = result.get("failure")
        failure = failure if isinstance(failure, dict) else {}
        letters.append(
            {
                "fingerprint": path.stem,
                "error_type": failure.get("error_type"),
                "attempts": failure.get("attempts"),
            }
        )
    return letters


def format_report(summary: dict[str, Any]) -> str:
    """Render a rollup as the aligned tables the benchmarks use."""
    from repro.analysis.tables import format_table

    blocks: list[str] = [
        f"ledger: {summary['ledger_dir']}",
        f"records: {summary['records']} "
        f"({summary['run_records']} runs, {summary['span_records']} spans; "
        f"{summary['specs_distinct']} distinct specs)",
    ]
    rows = []
    for key, group in summary["by_algorithm"].items():
        latency = group["latency_s"] or {}
        rows.append(
            [
                key,
                group["runs"],
                group["executed"],
                group["cache_hits"],
                group["failed"],
                group["retried"],
                latency.get("p50", "-"),
                latency.get("p90", "-"),
                latency.get("max", "-"),
                group["rounds_max"],
            ]
        )
    if rows:
        blocks.append(
            format_table(
                [
                    "algorithm [scenario]",
                    "runs",
                    "executed",
                    "cache",
                    "failed",
                    "retried",
                    "p50 (s)",
                    "p90 (s)",
                    "max (s)",
                    "rounds",
                ],
                rows,
                title="per-algorithm / per-scenario",
            )
        )
    cache = summary["cache"]
    retries = summary["retries"]
    blocks.append(
        format_table(
            ["metric", "value"],
            [
                ["cache hits", cache["hits"]],
                ["executions", cache["executions"]],
                ["cache hit rate", cache["hit_rate"]],
                ["specs retried", retries["specs_retried"]],
                ["extra attempts", retries["extra_attempts"]],
                ["retry rate", retries["retry_rate"]],
                ["failed records", summary["failures"]["failed_records"]],
                ["dead letters", len(summary["failures"]["dead_letters"])],
            ],
            title="cache / retry",
        )
    )
    advice = summary.get("retry_advice") or {}
    suggested = advice.get("suggested_retries", 0)
    poison = advice.get("poison_specs", 0)
    if suggested:
        recovered = sum(
            entry["flaky_recoveries"]
            for entry in advice.get("by_group", {}).values()
        )
        blocks.append(
            f"retry advice: {recovered} flaky spec(s) recovered within "
            f"{suggested} retr{'y' if suggested == 1 else 'ies'} — "
            f"suggested FailurePolicy(retries={suggested})"
        )
        if poison:
            blocks[-1] += (
                f"; {poison} poison spec(s) failed every attempt "
                "(no budget helps — fix, then `repro shard retry-failed`)"
            )
    elif poison:
        blocks.append(
            f"retry advice: {poison} poison spec(s) failed every attempt "
            "and nothing recovered on retry — raising retries won't help; "
            "fix the cause, then `repro shard retry-failed`"
        )
    if summary["workers"]:
        blocks.append(
            format_table(
                ["worker", "executed", "wall-clock (s)", "specs/s"],
                [
                    [
                        worker,
                        stats["executed"],
                        stats["wall_clock_s"],
                        stats["specs_per_s"] if stats["specs_per_s"] is not None else "-",
                    ]
                    for worker, stats in summary["workers"].items()
                ],
                title="throughput per worker",
            )
        )
    if summary["spans"]:
        blocks.append(
            format_table(
                ["span", "count", "wall-clock (s)"],
                [
                    [name, entry["count"], entry["wall_clock_s"]]
                    for name, entry in summary["spans"].items()
                ],
                title="spans",
            )
        )
    for letter in summary["failures"]["dead_letters"]:
        blocks.append(
            f"dead letter {letter['fingerprint'][:12]}: "
            f"{letter['error_type']} after {letter['attempts']} attempts"
        )
    return "\n\n".join(blocks)


def report_smoke() -> dict[str, Any]:
    """Run a small sharded job with ledgers on; assert the rollup shape.

    The CI gate for the whole telemetry pipeline: plan → drain (the
    worker defaults the ledger on) → rollup, then structural checks —
    every distinct spec accounted for, latency and throughput tables
    populated, rates well-formed.  Raises :class:`TelemetryError` on
    any breach; returns a JSON-safe summary on success.
    """
    import tempfile

    from repro.api.spec import InstanceSpec, RunSpec
    from repro.cluster.coordinator import run_sharded

    specs = [
        RunSpec(
            instance=InstanceSpec(family="path", size=6, seed=seed),
            algorithm=algorithm,
        )
        for seed, algorithm in enumerate(
            ("greedy_sequential", "greedy_sequential", "linial_greedy", "bko20")
        )
    ]
    specs.append(specs[0])  # a duplicate: executes once, one ledger row

    def check(condition: bool, what: str) -> None:
        if not condition:
            raise TelemetryError(f"report smoke: {what}")

    with tempfile.TemporaryDirectory(prefix="repro-report-smoke-") as tmp:
        job_dir = Path(tmp) / "job"
        results = run_sharded(specs, job_dir, shards=2, local_workers=0)
        check(len(results) == len(specs), "sharded run lost results")
        summary = rollup(job_dir)
        check(
            summary["ledger_dir"] == str(job_dir / LEDGER_SUBDIR),
            "job ledger directory not resolved",
        )
        distinct = len({spec.fingerprint() for spec in specs})
        check(
            summary["specs_distinct"] == distinct,
            f"expected {distinct} distinct specs, "
            f"saw {summary['specs_distinct']}",
        )
        check(summary["run_records"] >= distinct, "missing run records")
        check(
            set(summary["by_algorithm"])
            == {"greedy_sequential", "linial_greedy", "bko20"},
            "per-algorithm grouping wrong",
        )
        for key, group in summary["by_algorithm"].items():
            check(
                group["executed"] >= 1 and group["latency_s"] is not None,
                f"group {key} has no executed latency sample",
            )
            latency = group["latency_s"]
            check(
                0 <= latency["p50"] <= latency["p90"] <= latency["max"],
                f"group {key} percentiles out of order",
            )
        check(summary["cache"]["executions"] == distinct, "execution count")
        check(
            summary["retries"]["specs_retried"] == 0
            and summary["retries"]["retry_rate"] == 0.0,
            "phantom retries in a fault-free job",
        )
        check(summary["failures"]["failed_records"] == 0, "phantom failures")
        check(len(summary["workers"]) >= 1, "no worker throughput rows")
        for stats in summary["workers"].values():
            check(
                stats["specs_per_s"] is None or stats["specs_per_s"] > 0,
                "non-positive worker throughput",
            )
        check(len(summary["environments"]) >= 1, "no environment snapshot")
        text = format_report(summary)
        check(
            "per-algorithm / per-scenario" in text
            and "throughput per worker" in text,
            "rendered report missing tables",
        )
        return {
            "specs": len(specs),
            "specs_distinct": distinct,
            "run_records": summary["run_records"],
            "workers": len(summary["workers"]),
            "cache_hit_rate": summary["cache"]["hit_rate"],
            "report_chars": len(text),
        }
