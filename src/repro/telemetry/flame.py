"""Span-tree analysis: flame rollups and critical paths from span records.

The span tracer (:mod:`repro.telemetry.trace`) records parent/child
ids, so the flat per-name aggregates of :func:`repro.telemetry.report.
rollup` leave information on the table: *where* the time in
``run.attempt`` sits relative to ``shard.drain``, and which call path
dominates a job's wall-clock.  This module reconstructs the trees and
rolls them up flame-style:

* every span is assigned a **call path** — the ``;``-joined names from
  its root down (``shard.drain;run.attempt``);
* paths aggregate ``count``, ``total_s`` (wall-clock of spans at the
  path) and ``self_s`` (``total_s`` minus the total of the path's
  direct children — time spent at the path itself);
* the **critical path** descends from the heaviest root through the
  heaviest child at each level: the first place to look when a fleet
  is slow.

**Reconciliation invariant.**  Every span contributes to exactly one
path, whose leaf is the span's name — so grouping paths by leaf name
and summing totals reproduces the flat per-name aggregates byte for
byte (``tests/test_telemetry_flame.py`` pins this; ``repro report
--flame`` relies on it to show both views of one truth).

**Tolerance.**  Ledger files are merged from crashing writers, so the
tree is built defensively: a span whose ``parent_id`` never shows up
(the parent's record was lost) becomes an **orphaned root** — its
subtree is kept, flagged via ``orphan_spans``, never dropped; a
parent-id cycle (corrupt data) is cut at the revisited span.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.telemetry.ledger import read_ledger_rows

__all__ = [
    "build_flame",
    "critical_path",
    "flame_rollup",
    "format_flame",
]

#: Separator between path components (the collapsed-stack convention).
PATH_SEPARATOR = ";"


def _wall_of(row: dict[str, Any]) -> float:
    observed = row.get("observed") or {}
    wall = observed.get("wall_clock_s")
    if isinstance(wall, (int, float)) and not isinstance(wall, bool):
        return float(wall)
    return 0.0


def _span_paths(
    spans: list[dict[str, Any]],
) -> tuple[dict[int, tuple[str, ...]], int]:
    """Resolve each span (by list index) to its root-down name path.

    Returns ``(paths, orphans)`` where ``orphans`` counts spans whose
    recorded parent id has no record of its own (their path starts at
    themselves).  Duplicate span ids (clock-reset collisions) keep the
    first record; cycles are cut at the revisited id.
    """
    by_id: dict[str, int] = {}
    for index, row in enumerate(spans):
        span_id = row.get("span_id")
        if isinstance(span_id, str) and span_id not in by_id:
            by_id[span_id] = index
    paths: dict[int, tuple[str, ...]] = {}
    orphans = 0
    for index, row in enumerate(spans):
        names: list[str] = []
        seen: set[int] = set()
        current: int | None = index
        orphaned = False
        while current is not None and current not in seen:
            seen.add(current)
            node = spans[current]
            names.append(str(node.get("name")))
            parent_id = node.get("parent_id")
            if parent_id is None:
                current = None
            else:
                current = by_id.get(str(parent_id))
                if current is None:
                    orphaned = True
        if orphaned:
            orphans += 1
        paths[index] = tuple(reversed(names))
    return paths, orphans


def build_flame(spans: list[dict[str, Any]]) -> dict[str, Any]:
    """Roll span records up by call path; returns a JSON-safe summary.

    The ``paths`` map keys are ``;``-joined call paths, each holding
    ``count`` / ``total_s`` / ``self_s`` / ``depth``; ``by_name``
    re-groups the same spans flat by leaf name (the reconciliation
    surface against :func:`repro.telemetry.report.rollup`);
    ``critical_path`` is the heaviest root-to-leaf chain.
    """
    paths, orphans = _span_paths(spans)
    aggregated: dict[tuple[str, ...], dict[str, Any]] = {}
    by_name: dict[str, dict[str, float]] = {}
    for index, row in enumerate(spans):
        path = paths[index]
        wall = _wall_of(row)
        entry = aggregated.setdefault(
            path, {"count": 0, "total_s": 0.0, "self_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] = round(entry["total_s"] + wall, 9)
        # The same accumulate-and-round the flat rollup uses, so the
        # two views agree to the last digit.
        name = str(row.get("name"))
        flat = by_name.setdefault(name, {"count": 0, "wall_clock_s": 0.0})
        flat["count"] += 1
        flat["wall_clock_s"] = round(flat["wall_clock_s"] + wall, 9)
    for path, entry in aggregated.items():
        children_total = sum(
            other["total_s"]
            for other_path, other in aggregated.items()
            if len(other_path) == len(path) + 1 and other_path[: len(path)] == path
        )
        entry["self_s"] = round(max(0.0, entry["total_s"] - children_total), 9)
        entry["depth"] = len(path)
    rendered = {
        PATH_SEPARATOR.join(path): entry
        for path, entry in sorted(aggregated.items())
    }
    return {
        "span_records": len(spans),
        "orphan_spans": orphans,
        "paths": rendered,
        "by_name": dict(sorted(by_name.items())),
        "critical_path": critical_path(aggregated),
    }


def critical_path(
    aggregated: dict[tuple[str, ...], dict[str, Any]],
) -> list[dict[str, Any]]:
    """The heaviest root-to-leaf chain of an aggregated path map.

    Starts at the root (length-1 path) with the largest ``total_s``,
    then repeatedly descends into the direct child carrying the most
    total time.  Each step reports its name, cumulative path, total
    and self seconds — the chain an operator should read top-down.
    """
    if not aggregated:
        return []

    def heaviest(candidates: list[tuple[str, ...]]) -> tuple[str, ...] | None:
        if not candidates:
            return None
        return max(
            candidates, key=lambda path: (aggregated[path]["total_s"], path)
        )

    chain: list[dict[str, Any]] = []
    current = heaviest([path for path in aggregated if len(path) == 1])
    while current is not None:
        entry = aggregated[current]
        chain.append(
            {
                "name": current[-1],
                "path": PATH_SEPARATOR.join(current),
                "total_s": entry["total_s"],
                "self_s": entry["self_s"],
                "count": entry["count"],
            }
        )
        current = heaviest(
            [
                path
                for path in aggregated
                if len(path) == len(current) + 1
                and path[: len(current)] == current
            ]
        )
    return chain


def flame_rollup(path: str | Path) -> dict[str, Any]:
    """Flame-analyse the span records of a job / ledger directory.

    Accepts the same targets as :func:`repro.telemetry.report.rollup`
    (a job dir with a ``ledger/`` subdirectory, or a ledger directory
    itself) and reads the same files; a directory with no span records
    returns an empty flame rather than an error.
    """
    from repro.telemetry.report import find_ledger_dir

    ledger_dir = find_ledger_dir(path)
    spans = [
        row
        for row in read_ledger_rows(ledger_dir)
        if row.get("kind") == "span"
    ]
    flame = build_flame(spans)
    flame["ledger_dir"] = str(ledger_dir)
    return flame


def format_flame(flame: dict[str, Any]) -> str:
    """Render a flame rollup as an indented tree plus the critical path."""
    lines = [
        f"spans: {flame['span_records']} "
        f"({flame['orphan_spans']} orphaned)",
    ]
    if not flame["paths"]:
        lines.append("(no span records — run with tracing enabled)")
        return "\n".join(lines)
    width = max(
        len("  " * (entry["depth"] - 1) + path.split(PATH_SEPARATOR)[-1])
        for path, entry in flame["paths"].items()
    )
    lines.append("")
    lines.append(
        f"{'call path'.ljust(width)}  {'total (s)':>12}  "
        f"{'self (s)':>12}  {'count':>7}"
    )
    for path, entry in flame["paths"].items():
        label = "  " * (entry["depth"] - 1) + path.split(PATH_SEPARATOR)[-1]
        lines.append(
            f"{label.ljust(width)}  {entry['total_s']:>12.6f}  "
            f"{entry['self_s']:>12.6f}  {entry['count']:>7}"
        )
    if flame["critical_path"]:
        lines.append("")
        lines.append(
            "critical path: "
            + " -> ".join(
                f"{step['name']} ({step['total_s']:.6f}s)"
                for step in flame["critical_path"]
            )
        )
    return "\n".join(lines)
