"""The service's in-process metrics registry.

One :class:`MetricsRegistry` lives on each
:class:`repro.service.app.ReproService`; the HTTP layer feeds it a
record per finished request and the application layer feeds it run and
job dispositions.  ``GET /v1/metrics`` serves :meth:`snapshot`
verbatim and ``GET /v1/healthz`` sources its load figures (uptime,
active requests) from the same object — the health endpoint can no
longer drift from what the metrics actually observed.

Everything is counters and fixed-bucket histograms under one lock: no
background threads, no unbounded per-request storage, safe under the
threading server's concurrency.  Latency percentiles are read off the
histogram (upper bucket bound at the cumulative quantile) — coarse by
construction, but stable and bounded, which is the right trade for a
long-lived process.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

__all__ = ["LATENCY_BUCKETS_MS", "MetricsRegistry"]

#: Upper bounds (milliseconds) of the request-latency histogram
#: buckets; requests slower than the last bound land in an implicit
#: overflow bucket reported as ``+Inf``.
LATENCY_BUCKETS_MS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000)

#: Run dispositions the registry counts (the service's executed /
#: coalesced / cache split, plus captured failures).
RUN_SOURCES = ("executed", "coalesced", "cache", "failed")


def _histogram_quantile(
    counts: list[int], total: int, quantile: float
) -> float | str | None:
    """The upper bucket bound at ``quantile`` of the observations.

    Observations beyond the last bound report the JSON-safe string
    ``"+Inf"`` (a bare ``float("inf")`` would serialize as non-strict
    JSON).
    """
    if total <= 0:
        return None
    rank = quantile * total
    seen = 0
    for bound, count in zip(LATENCY_BUCKETS_MS, counts):
        seen += count
        if seen >= rank:
            return float(bound)
    return "+Inf"


class MetricsRegistry:
    """Thread-safe counters + latency histograms for one service.

    ``clock`` is injectable for tests (uptime becomes deterministic).
    """

    def __init__(self, clock: Callable[[], float] = time.time) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self.started_at = clock()
        self._active_requests = 0
        # endpoint -> {"count", "by_status", "buckets", "overflow",
        #              "total_ms", "max_ms"}
        self._requests: dict[str, dict[str, Any]] = {}
        self._runs = {source: 0 for source in RUN_SOURCES}
        self._jobs = {"submitted": 0, "resubmitted": 0}

    # -- feeding ---------------------------------------------------

    def request_started(self) -> None:
        """A request entered the handler (drives the health load figure)."""
        with self._lock:
            self._active_requests += 1

    def request_finished(
        self, endpoint: str, method: str, status: int, elapsed_ms: float
    ) -> None:
        """Record one finished request under its normalized endpoint."""
        key = f"{method} {endpoint}"
        with self._lock:
            self._active_requests = max(0, self._active_requests - 1)
            entry = self._requests.get(key)
            if entry is None:
                entry = self._requests[key] = {
                    "count": 0,
                    "by_status": {},
                    "buckets": [0] * len(LATENCY_BUCKETS_MS),
                    "overflow": 0,
                    "total_ms": 0.0,
                    "max_ms": 0.0,
                }
            entry["count"] += 1
            status_key = str(status)
            entry["by_status"][status_key] = (
                entry["by_status"].get(status_key, 0) + 1
            )
            for index, bound in enumerate(LATENCY_BUCKETS_MS):
                if elapsed_ms <= bound:
                    entry["buckets"][index] += 1
                    break
            else:
                entry["overflow"] += 1
            entry["total_ms"] += elapsed_ms
            entry["max_ms"] = max(entry["max_ms"], elapsed_ms)

    def observe_run(self, source: str) -> None:
        """Count one ``POST /v1/run`` resolution by disposition."""
        if source not in self._runs:
            return
        with self._lock:
            self._runs[source] += 1

    def observe_job(self, *, created: bool) -> None:
        """Count one job submission (``created=False`` = idempotent hit)."""
        key = "submitted" if created else "resubmitted"
        with self._lock:
            self._jobs[key] += 1

    # -- reading ---------------------------------------------------

    def active_requests(self) -> int:
        with self._lock:
            return self._active_requests

    def requests_total(self) -> int:
        with self._lock:
            return sum(entry["count"] for entry in self._requests.values())

    def uptime_s(self) -> float:
        return max(0.0, self._clock() - self.started_at)

    def snapshot(self) -> dict[str, Any]:
        """The JSON body of ``GET /v1/metrics``.

        Per-endpoint: request count, count by status, the latency
        histogram (bucket upper bounds in ms + an ``+Inf`` overflow),
        mean/max, and histogram-derived p50/p90/p99.  Plus the run
        disposition split and job submission counters.
        """
        with self._lock:
            requests: dict[str, Any] = {}
            for key, entry in sorted(self._requests.items()):
                count = entry["count"]
                histogram = dict(
                    zip(map(str, LATENCY_BUCKETS_MS), entry["buckets"])
                )
                histogram["+Inf"] = entry["overflow"]
                requests[key] = {
                    "count": count,
                    "by_status": dict(sorted(entry["by_status"].items())),
                    "latency_ms": {
                        "histogram": histogram,
                        "sum_ms": round(entry["total_ms"], 3),
                        "mean": round(entry["total_ms"] / count, 3),
                        "max": round(entry["max_ms"], 3),
                        "p50": _histogram_quantile(
                            entry["buckets"], count, 0.50
                        ),
                        "p90": _histogram_quantile(
                            entry["buckets"], count, 0.90
                        ),
                        "p99": _histogram_quantile(
                            entry["buckets"], count, 0.99
                        ),
                    },
                }
            return {
                "uptime_s": round(self.uptime_s(), 3),
                "active_requests": self._active_requests,
                "requests_total": sum(
                    entry["count"] for entry in self._requests.values()
                ),
                "requests": requests,
                "runs": dict(self._runs),
                "jobs": dict(self._jobs),
            }
