"""Observability: run ledger, span tracing, and fleet metrics.

Everything in this package is **observational**: it records what ran
where, under which environment, at what cost — and none of it may ever
feed back into results.  The invariant (mirroring the cluster layer's
timing sidecars) is:

    observational data never enters fingerprints or sealed files.

Three surfaces:

* :mod:`repro.telemetry.ledger` — one append-only JSONL record per
  executed spec (environment snapshot, disposition, wall-clock,
  attempts, rounds/messages), written through the executor's
  ``ledger_dir=`` seam and defaulted on by cluster workers.
* :mod:`repro.telemetry.trace` — a zero-dependency ``trace`` context
  manager emitting nested spans into the same ledger stream, with a
  no-op fast path when disabled.
* :mod:`repro.telemetry.metrics` — the in-process registry behind the
  service's ``GET /v1/metrics`` and the real ``/v1/healthz`` load
  figures.
* :mod:`repro.telemetry.report` — the fleet rollup behind
  ``python -m repro report``.
"""

from repro.telemetry.ledger import (
    LEDGER_FORMAT,
    LedgerWriter,
    active_ledger_dir,
    ledger_context,
    read_ledger_rows,
    record_run,
    snapshot_environment,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.report import format_report, report_smoke, rollup
from repro.telemetry.trace import trace, trace_context, tracing_enabled

__all__ = [
    "LEDGER_FORMAT",
    "LedgerWriter",
    "MetricsRegistry",
    "active_ledger_dir",
    "format_report",
    "ledger_context",
    "read_ledger_rows",
    "record_run",
    "report_smoke",
    "rollup",
    "snapshot_environment",
    "trace",
    "trace_context",
    "tracing_enabled",
]
