"""Observability: run ledger, span tracing, events, and fleet metrics.

Everything in this package is **observational**: it records what ran
where, under which environment, at what cost — and none of it may ever
feed back into results.  The invariant (mirroring the cluster layer's
timing sidecars) is:

    observational data never enters fingerprints or sealed files.

The surfaces:

* :mod:`repro.telemetry.ledger` — one append-only JSONL record per
  executed spec (environment snapshot, disposition, wall-clock,
  attempts, rounds/messages), written through the executor's
  ``ledger_dir=`` seam and defaulted on by cluster workers.
* :mod:`repro.telemetry.trace` — a zero-dependency ``trace`` context
  manager emitting nested spans into the same ledger stream, with a
  no-op fast path when disabled.
* :mod:`repro.telemetry.events` — the live job event stream: workers
  and coordinator append sequenced progress events (shard lifecycle,
  spec dispositions, retries, dead letters, worker supervision) under
  ``<job>/events/`` with the ledger's per-process-file discipline;
  readers merge with an opaque resume cursor so a dropped client
  misses nothing.
* :mod:`repro.telemetry.metrics` — the in-process registry behind the
  service's ``GET /v1/metrics`` and the real ``/v1/healthz`` load
  figures.
* :mod:`repro.telemetry.prometheus` — the registry snapshot rendered
  in the Prometheus text exposition format
  (``GET /v1/metrics?format=prometheus``).
* :mod:`repro.telemetry.report` — the fleet rollup behind
  ``python -m repro report`` (latency percentiles, cache/retry rates,
  ledger-driven retry advice).
* :mod:`repro.telemetry.flame` — parent→child span trees: self/total
  time by call path and the critical path (``repro report --flame``).
* :mod:`repro.telemetry.top` — the refreshing terminal dashboard
  behind ``python -m repro top`` and ``shard status --watch``.
"""

from repro.telemetry.events import (
    EVENT_TYPES,
    emit_event,
    encode_cursor,
    events_context,
    events_dir_of,
    parse_cursor,
    read_events,
)
from repro.telemetry.flame import (
    build_flame,
    flame_rollup,
    format_flame,
)
from repro.telemetry.ledger import (
    LEDGER_FORMAT,
    LedgerWriter,
    active_ledger_dir,
    ledger_context,
    read_ledger_rows,
    record_run,
    snapshot_environment,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)
from repro.telemetry.report import format_report, report_smoke, rollup
from repro.telemetry.top import render_job_view, run_top, shard_progress_table
from repro.telemetry.trace import trace, trace_context, tracing_enabled

__all__ = [
    "EVENT_TYPES",
    "LEDGER_FORMAT",
    "LedgerWriter",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "active_ledger_dir",
    "build_flame",
    "emit_event",
    "encode_cursor",
    "events_context",
    "events_dir_of",
    "flame_rollup",
    "format_flame",
    "format_report",
    "ledger_context",
    "parse_cursor",
    "read_events",
    "read_ledger_rows",
    "record_run",
    "render_job_view",
    "render_prometheus",
    "report_smoke",
    "rollup",
    "run_top",
    "shard_progress_table",
    "snapshot_environment",
    "trace",
    "trace_context",
    "tracing_enabled",
]
