"""Prometheus text exposition of the service metrics registry.

``GET /v1/metrics?format=prometheus`` renders the same
:class:`~repro.telemetry.metrics.MetricsRegistry` snapshot the JSON
endpoint serves, in the Prometheus text format (version ``0.0.4``) —
so an off-the-shelf scraper can watch a repro service with zero glue.

The renderer works off :meth:`MetricsRegistry.snapshot` (not registry
internals): the JSON and Prometheus views can never disagree, because
they read the same frozen snapshot.  Families exposed:

* ``repro_uptime_seconds`` / ``repro_active_requests`` — gauges;
* ``repro_http_requests_total{method,endpoint,status}`` — counter per
  normalized route and status code;
* ``repro_http_request_duration_milliseconds`` — one histogram per
  route, with **cumulative** ``_bucket{le=...}`` counts ending at
  ``le="+Inf"`` plus ``_sum`` / ``_count``, as the format requires
  (the JSON snapshot keeps per-bucket counts; the conversion happens
  here);
* ``repro_runs_total{source}`` — the executed / coalesced / cache /
  failed split of single-run resolutions;
* ``repro_jobs_total{action}`` — submitted vs idempotent-resubmitted
  jobs.

Zero-dependency by the package's standing rule: this is string
formatting, not a client library.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.metrics import LATENCY_BUCKETS_MS

__all__ = ["PROMETHEUS_CONTENT_TYPE", "render_prometheus"]

#: The content type the text exposition format is served under.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    """Escape a label value per the text-format rules."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels(**labels: str) -> str:
    inner = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def _number(value: float) -> str:
    """Render a sample value: integers bare, floats with full precision."""
    if isinstance(value, int) or (
        isinstance(value, float) and value.is_integer()
    ):
        return str(int(value))
    return repr(float(value))


def _split_route(key: str) -> tuple[str, str]:
    """A snapshot request key is ``"METHOD endpoint"``; split it back."""
    method, _, endpoint = key.partition(" ")
    return method, endpoint or "<other>"


def render_prometheus(snapshot: dict[str, Any]) -> str:
    """Render one metrics snapshot in the Prometheus text format.

    Takes the output of :meth:`MetricsRegistry.snapshot` (tests feed
    synthetic ones); returns the full exposition, newline-terminated.
    """
    lines: list[str] = []

    def family(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    family(
        "repro_uptime_seconds", "gauge", "Seconds since the service started."
    )
    lines.append(f"repro_uptime_seconds {_number(snapshot['uptime_s'])}")
    family(
        "repro_active_requests",
        "gauge",
        "Requests currently inside the handler.",
    )
    lines.append(
        f"repro_active_requests {_number(snapshot['active_requests'])}"
    )

    requests = snapshot.get("requests") or {}
    family(
        "repro_http_requests_total",
        "counter",
        "Finished HTTP requests by route and status code.",
    )
    for key, entry in requests.items():
        method, endpoint = _split_route(key)
        for status, count in entry["by_status"].items():
            labels = _labels(method=method, endpoint=endpoint, status=status)
            lines.append(f"repro_http_requests_total{labels} {_number(count)}")

    family(
        "repro_http_request_duration_milliseconds",
        "histogram",
        "HTTP request wall-clock per route, in milliseconds.",
    )
    for key, entry in requests.items():
        method, endpoint = _split_route(key)
        latency = entry["latency_ms"]
        histogram = latency["histogram"]
        cumulative = 0
        for bound in LATENCY_BUCKETS_MS:
            cumulative += int(histogram.get(str(bound), 0))
            labels = _labels(
                method=method, endpoint=endpoint, le=str(bound)
            )
            lines.append(
                "repro_http_request_duration_milliseconds_bucket"
                f"{labels} {cumulative}"
            )
        cumulative += int(histogram.get("+Inf", 0))
        labels = _labels(method=method, endpoint=endpoint, le="+Inf")
        lines.append(
            "repro_http_request_duration_milliseconds_bucket"
            f"{labels} {cumulative}"
        )
        route = _labels(method=method, endpoint=endpoint)
        lines.append(
            "repro_http_request_duration_milliseconds_sum"
            f"{route} {_number(latency.get('sum_ms', 0.0))}"
        )
        lines.append(
            "repro_http_request_duration_milliseconds_count"
            f"{route} {_number(entry['count'])}"
        )

    family(
        "repro_runs_total",
        "counter",
        "Single-run resolutions by disposition.",
    )
    for source, count in sorted((snapshot.get("runs") or {}).items()):
        lines.append(
            f"repro_runs_total{_labels(source=source)} {_number(count)}"
        )
    family("repro_jobs_total", "counter", "Job submissions by kind.")
    for action, count in sorted((snapshot.get("jobs") or {}).items()):
        lines.append(
            f"repro_jobs_total{_labels(action=action)} {_number(count)}"
        )
    return "\n".join(lines) + "\n"
