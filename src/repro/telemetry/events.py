"""The job event stream: live progress records, resumably readable.

The run ledger (:mod:`repro.telemetry.ledger`) answers "what ran" after
the fact; the event stream answers "what is happening" while it does.
Workers and the coordinator append one small JSON record per lifecycle
step — shard claimed / heartbeat / sealed / abandoned, spec resolved,
retry backoff, dead letter, worker spawn / exit — under
``<job_dir>/events/``, and readers (``python -m repro top``, ``GET
/v1/jobs/<id>/events``) tail the directory without any broker in
between.

**Discipline.**  Exactly the ledger's:

* strictly observational — no event ever enters a fingerprint or a
  sealed result file, and a run with events on is byte-identical to
  one without;
* every write is best-effort (an unwritable directory records
  nothing);
* each process appends to its **own** ``<hostname>-<pid>.jsonl`` file,
  so concurrent writers never interleave partial lines; readers merge
  the directory and skip torn lines.

**Record shape.**  One JSON object per line::

    {"kind": "event", "format": 1, "event": "shard_sealed",
     "seq": 7, "worker": "host:4242", "unix_ts": ..., ...payload}

``seq`` is a per-writer monotone counter: within one worker's file,
events are totally ordered by construction.  Across writers there is
no global clock — :func:`read_events` merges files preserving each
writer's append order and interleaving by timestamp where clocks
allow.

**Resumable reads.**  :func:`read_events` returns an opaque **cursor**
encoding how many complete lines of each per-writer file have been
consumed.  Passing the cursor back returns only what arrived since —
exactly-once, miss-nothing, robust to clock skew and reader restarts.
A torn final line (a writer caught mid-append) is *not* consumed: the
cursor stops before it, and the completed line is delivered on the
next read.  Each returned event also carries a ``"cursor"`` key (the
resume point just after that event), which is how the HTTP stream lets
a dropped client reconnect with ``?after=`` and miss nothing.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Iterator

from repro.telemetry.ledger import LedgerWriter, worker_identity

#: Event record format version (bumped on incompatible shape change).
EVENT_FORMAT = 1

#: Subdirectory of a job dir holding the event stream's per-writer files.
EVENTS_SUBDIR = "events"

#: The event types the library itself emits (callers may add their own;
#: readers must tolerate unknown types).
EVENT_TYPES = (
    "job_started",
    "worker_spawn",
    "worker_exit_nonzero",
    "worker_hung",
    "worker_stopped",
    "shard_claimed",
    "shard_heartbeat",
    "shard_sealed",
    "shard_abandoned",
    "spec_resolved",
    "spec_retry",
    "dead_letter",
    "job_complete",
)

__all__ = [
    "EVENT_FORMAT",
    "EVENTS_SUBDIR",
    "EVENT_TYPES",
    "active_events_dir",
    "emit_event",
    "encode_cursor",
    "events_context",
    "events_dir_of",
    "parse_cursor",
    "read_events",
    "resolve_events_dir",
]


def events_dir_of(job_dir: str | Path) -> Path:
    """The event-stream directory of a job (``<job_dir>/events/``)."""
    return Path(job_dir) / EVENTS_SUBDIR


# --- the ambient seam --------------------------------------------------

#: The ambient events directory.  ``None`` (the default) means
#: :func:`emit_event` records nothing — the disabled path must stay
#: cheap, since the executor's retry loop calls it unconditionally.
_ACTIVE_EVENTS_DIR: ContextVar[str | None] = ContextVar(
    "repro_events_dir", default=None
)


@contextmanager
def events_context(directory: str | Path | None) -> Iterator[str | None]:
    """Install ``directory`` as the ambient event stream for the block.

    The events twin of :func:`repro.telemetry.ledger.ledger_context`:
    the cluster worker installs the job's ``events/`` directory around
    its drain so deep call sites (the executor's retry backoff) emit
    without threading a path through every signature.  ``None`` is a
    no-op pass-through.
    """
    if directory is None:
        yield _ACTIVE_EVENTS_DIR.get()
        return
    token = _ACTIVE_EVENTS_DIR.set(str(directory))
    try:
        yield str(directory)
    finally:
        _ACTIVE_EVENTS_DIR.reset(token)


def active_events_dir() -> str | None:
    """The ambient events directory, or ``None`` when emission is off."""
    return _ACTIVE_EVENTS_DIR.get()


def resolve_events_dir(explicit: str | Path | None) -> str | None:
    """An explicit directory wins; otherwise the ambient one."""
    if explicit is not None:
        return str(explicit)
    return _ACTIVE_EVENTS_DIR.get()


# --- writing -----------------------------------------------------------

#: Per-(directory, pid) monotone sequence counters.  Keyed by pid so a
#: writer that crosses a ``fork`` starts a fresh sequence in its fresh
#: per-process file instead of continuing the parent's.
_SEQ: dict[tuple[str, int], "itertools.count[int]"] = {}


def emit_event(
    event: str, directory: str | Path | None = None, /, **payload: Any
) -> bool:
    """Append one event record; returns whether the write landed.

    ``directory=None`` falls back to the ambient
    :func:`events_context` directory; recording is off (and the call
    near-free) when neither is set.  ``payload`` fields are JSON-safe
    annotations merged into the record — the reserved envelope keys
    (``kind`` / ``format`` / ``event`` / ``seq`` / ``worker`` /
    ``unix_ts``) always win over a colliding payload key.

    Best-effort by the stream's contract: any failure to construct or
    write the record is swallowed — an event must never fail a run.
    """
    target = resolve_events_dir(directory)
    if target is None:
        return False
    try:
        key = (target, os.getpid())
        counter = _SEQ.get(key)
        if counter is None:
            counter = _SEQ[key] = itertools.count(1)
        row = dict(payload)
        row.update(
            kind="event",
            format=EVENT_FORMAT,
            event=event,
            seq=next(counter),
            worker=worker_identity(),
            unix_ts=time.time(),
        )
        return LedgerWriter(target).record(row)
    except Exception:
        return False


# --- cursors -----------------------------------------------------------


def encode_cursor(counts: dict[str, int]) -> str:
    """Encode per-file consumed-line counts as an opaque cursor token.

    ``{}`` encodes to ``""`` (the from-the-beginning cursor).  The
    token is URL-safe by construction: file stems are
    ``<hostname>-<pid>`` (no ``~`` or ``:``), counts are decimal.
    """
    return "~".join(
        f"{stem}:{count}" for stem, count in sorted(counts.items()) if count
    )


def parse_cursor(cursor: str | None) -> dict[str, int]:
    """Decode a cursor token back into per-file counts.

    Raises :class:`ValueError` on a malformed token — the HTTP layer
    turns that into a 400 rather than silently replaying the stream
    from the start (a replay the client explicitly asked to avoid).
    """
    if not cursor:
        return {}
    counts: dict[str, int] = {}
    for segment in cursor.split("~"):
        stem, separator, count_text = segment.rpartition(":")
        if not separator or not stem or not count_text.isdigit():
            raise ValueError(f"malformed event cursor segment {segment!r}")
        counts[stem] = int(count_text)
    return counts


# --- reading -----------------------------------------------------------


def _sort_key(row: dict[str, Any]) -> tuple[float, str, int]:
    ts = row.get("unix_ts")
    seq = row.get("seq")
    return (
        ts if isinstance(ts, (int, float)) and not isinstance(ts, bool) else 0.0,
        str(row.get("worker")),
        seq if isinstance(seq, int) and not isinstance(seq, bool) else 0,
    )


def read_events(
    directory: str | Path, cursor: str | None = None
) -> tuple[list[dict[str, Any]], str]:
    """Read the events appended since ``cursor``; returns ``(events, next)``.

    ``cursor=None`` (or ``""``) reads from the beginning.  The returned
    events are merged across per-writer files: each writer's own append
    order is always preserved, and writers interleave by ``unix_ts``
    (ties broken by worker identity then ``seq``) — a best-effort
    global order that never reorders any single worker's story.

    Every returned event carries a ``"cursor"`` key: resuming from it
    re-delivers nothing before or at that event and misses nothing
    after — the exactly-once contract the HTTP ``?after=`` parameter
    exposes.  The second return value is the cursor after *everything*
    read, including unparseable complete lines (skipped for good); a
    torn final line is left unconsumed and retried on the next call.

    A missing directory is an empty stream, and a cursor naming files
    that no longer exist keeps their counts — reads never go backwards.
    """
    counts = parse_cursor(cursor)
    new_counts = dict(counts)
    streams: list[list[tuple[int, dict[str, Any]]]] = []
    stems: list[str] = []
    root = Path(directory)
    if root.is_dir():
        for path in sorted(root.glob("*.jsonl")):
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            # Only lines sealed by a newline are real; the remainder is
            # a write in flight — skip it *without* consuming it.
            complete, _, _torn = text.rpartition("\n")
            lines = complete.split("\n") if complete else []
            start = counts.get(path.stem, 0)
            consumed = max(start, 0)
            fresh: list[tuple[int, dict[str, Any]]] = []
            for line in lines[consumed:]:
                consumed += 1
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except ValueError:
                    continue
                if isinstance(row, dict) and row.get("kind") == "event":
                    fresh.append((consumed, row))
            new_counts[path.stem] = max(consumed, start)
            if fresh:
                streams.append(fresh)
                stems.append(path.stem)
    # k-way head merge: always take the smallest-keyed head, so each
    # file's internal order survives whatever the clocks say.
    heads = [0] * len(streams)
    running = dict(counts)
    merged: list[dict[str, Any]] = []
    while True:
        best: int | None = None
        best_key: tuple[float, str, int] | None = None
        for index, stream in enumerate(streams):
            if heads[index] >= len(stream):
                continue
            key = _sort_key(stream[heads[index]][1])
            if best_key is None or key < best_key:
                best, best_key = index, key
        if best is None:
            break
        line_number, row = streams[best][heads[best]]
        heads[best] += 1
        running[stems[best]] = line_number
        event = dict(row)
        event["cursor"] = encode_cursor(running)
        merged.append(event)
    return merged, encode_cursor(new_counts)
