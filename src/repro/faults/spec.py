"""Fault descriptions: what to break, where, and how many times.

A :class:`FaultSpec` names one deterministic failure to inject into the
execution stack; a :class:`FaultPlan` is a seeded, fingerprinted batch
of them — the chaos twin of a spec batch.  Like every other spec layer
in this library, fault descriptions are frozen, normalised, strictly
validated (:class:`~repro.errors.FaultError` on anything the injector
could not execute), and round-trip exactly through
``to_dict``/``from_dict`` and JSON — the plan a worker subprocess
rebuilds from its environment is byte-for-byte the plan the harness
authored.

Fault kinds (``params`` per kind):

``poison``
    ``{"target": <fingerprint prefix | "*">}`` — every execution
    attempt of a matching spec raises
    :class:`~repro.errors.InjectedFault`.  The spec can only ever
    become a captured failure.
``flaky``
    ``{"target": ..., "fail_attempts": k}`` — attempts ``1..k`` of a
    matching spec raise; attempt ``k+1`` onward executes normally.
    With ``retries >= k`` the spec *recovers* and must produce a result
    byte-identical to a fault-free run.
``hang``
    ``{"target": ..., "sleep_s": s}`` — matching attempts stall for
    ``s`` wall-clock seconds before executing.  Pair with a policy
    ``timeout_s < s`` to exercise the per-attempt deadline, or with no
    timeout to wedge a worker for the coordinator to reap.
``torn_write``
    ``{"match": <path substring>, "count": n}`` — the first ``n``
    atomic JSON publishes (in each process) whose destination path
    contains ``match`` write a truncated file *in place of* the atomic
    rename: exactly the artefact of a crash mid-``write()``.  Every
    reader treats torn files as absent, so this exercises each layer's
    re-run/re-publish recovery.
``worker_kill``
    ``{"after_specs": n}`` — a *worker subprocess* (never the
    coordinating process) exits hard at the next spec boundary after
    executing ``n`` specs, leaving a stale lease and whatever it
    spilled to the shared cache.
``stale_lease``
    ``{"shard": i, "age_s": s}`` — the harness pre-plants a claim file
    on shard ``i`` whose heartbeat is ``s`` seconds old, held by a
    worker id that can never heartbeat again.  Exercises stale-lease
    reclamation under real worker traffic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import FaultError, check_known_keys
from repro.results import fingerprint_of

#: Fault-plan serialization format version.
FAULT_FORMAT = 1

#: kind -> (required param names, validator).  Validators raise
#: FaultError; they run on construction *and* deserialization.
_TARGET_KINDS = frozenset({"poison", "flaky", "hang"})

_SPEC_KEYS = frozenset({"kind", "params"})
_PLAN_KEYS = frozenset({"format", "seed", "faults"})


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise FaultError(message)


def _validate_target(params: Mapping[str, Any]) -> None:
    target = params.get("target")
    _require(
        isinstance(target, str) and bool(target),
        f"fault target must be a non-empty fingerprint prefix or '*', "
        f"got {target!r}",
    )


_PARAM_KEYS: dict[str, frozenset[str]] = {
    "poison": frozenset({"target"}),
    "flaky": frozenset({"target", "fail_attempts"}),
    "hang": frozenset({"target", "sleep_s"}),
    "torn_write": frozenset({"match", "count"}),
    "worker_kill": frozenset({"after_specs"}),
    "stale_lease": frozenset({"shard", "age_s"}),
}

FAULT_KINDS = frozenset(_PARAM_KEYS)


def _validate_params(kind: str, params: Mapping[str, Any]) -> None:
    _require(
        kind in FAULT_KINDS,
        f"unknown fault kind {kind!r}; known: {sorted(FAULT_KINDS)}",
    )
    allowed = _PARAM_KEYS[kind]
    unknown = set(params) - allowed
    _require(
        not unknown,
        f"fault kind {kind!r} does not take params {sorted(unknown)} "
        f"(allowed: {sorted(allowed)})",
    )
    missing = allowed - set(params)
    _require(
        not missing,
        f"fault kind {kind!r} requires params {sorted(missing)}",
    )
    if kind in _TARGET_KINDS:
        _validate_target(params)
    if kind == "flaky":
        k = params["fail_attempts"]
        _require(
            isinstance(k, int) and k >= 1,
            f"flaky fail_attempts must be an int >= 1, got {k!r}",
        )
    elif kind == "hang":
        s = params["sleep_s"]
        _require(
            isinstance(s, (int, float)) and s > 0,
            f"hang sleep_s must be > 0, got {s!r}",
        )
    elif kind == "torn_write":
        match, count = params["match"], params["count"]
        _require(
            isinstance(match, str) and bool(match),
            f"torn_write match must be a non-empty substring, got {match!r}",
        )
        _require(
            isinstance(count, int) and count >= 1,
            f"torn_write count must be an int >= 1, got {count!r}",
        )
    elif kind == "worker_kill":
        n = params["after_specs"]
        _require(
            isinstance(n, int) and n >= 0,
            f"worker_kill after_specs must be an int >= 0, got {n!r}",
        )
    elif kind == "stale_lease":
        shard, age = params["shard"], params["age_s"]
        _require(
            isinstance(shard, int) and shard >= 0,
            f"stale_lease shard must be an int >= 0, got {shard!r}",
        )
        _require(
            isinstance(age, (int, float)) and age > 0,
            f"stale_lease age_s must be > 0, got {age!r}",
        )


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault to inject (see module docstring for kinds)."""

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _validate_params(self.kind, self.params)
        # Freeze params into a plain sorted dict so equal specs hash
        # and serialize identically regardless of construction order.
        object.__setattr__(
            self, "params", dict(sorted(self.params.items()))
        )

    def matches(self, fingerprint: str) -> bool:
        """Does this (targeted) fault apply to a spec fingerprint?"""
        target = self.params.get("target", "")
        return target == "*" or fingerprint.startswith(target)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSpec":
        check_known_keys(payload, _SPEC_KEYS, "FaultSpec")
        _require("kind" in payload, "FaultSpec payload lacks 'kind'")
        params = payload.get("params", {})
        _require(
            isinstance(params, Mapping),
            f"FaultSpec params must be a mapping, got {type(params).__name__}",
        )
        return cls(kind=payload["kind"], params=dict(params))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded batch of faults — the unit the chaos harness replays.

    The ``seed`` feeds the failure policy's deterministic backoff and
    any harness-level choices (which specs to target), so one integer
    reproduces an entire chaos run.  :meth:`fingerprint` identifies the
    plan the way spec fingerprints identify experiments.
    """

    seed: int = 0
    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        _require(
            isinstance(self.seed, int),
            f"fault plan seed must be an int, got {self.seed!r}",
        )
        object.__setattr__(self, "faults", tuple(self.faults))

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def of_kind(self, kind: str) -> tuple[FaultSpec, ...]:
        """The plan's faults of one kind, in plan order."""
        _require(kind in FAULT_KINDS, f"unknown fault kind {kind!r}")
        return tuple(f for f in self.faults if f.kind == kind)

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": FAULT_FORMAT,
            "seed": self.seed,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        check_known_keys(payload, _PLAN_KEYS, "FaultPlan")
        _require(
            payload.get("format") == FAULT_FORMAT,
            f"fault plan format {payload.get('format')!r} is not "
            f"{FAULT_FORMAT}",
        )
        faults = payload.get("faults", [])
        _require(
            isinstance(faults, Sequence) and not isinstance(faults, str),
            "fault plan 'faults' must be a list",
        )
        return cls(
            seed=int(payload.get("seed", 0)),
            faults=tuple(FaultSpec.from_dict(fault) for fault in faults),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise FaultError(f"fault plan is not valid JSON: {exc}") from exc
        _require(isinstance(payload, dict), "fault plan JSON must be an object")
        return cls.from_dict(payload)

    def fingerprint(self) -> str:
        """SHA-256 identity of the plan (seed, faults, order)."""
        return fingerprint_of(self.to_dict())


def make_fault(kind: str, **params: Any) -> FaultSpec:
    """Convenience constructor: ``make_fault("poison", target=fp)``."""
    return FaultSpec(kind=kind, params=params)
