"""The chaos smoke: one seeded fault schedule through the whole stack.

:func:`chaos_smoke` is the failure-domain twin of
:func:`repro.cluster.coordinator.smoke_check`: a small adversarial
batch is executed with ``run_sharded`` under an injected fault plan —
a poison spec that can never succeed, a flaky spec that recovers on
retry, a hang spec that trips the per-attempt deadline, a torn shard
result file, worker subprocesses that kill themselves mid-job, and a
pre-planted stale lease — and the merged output is held to the
library's contracts:

1. **Termination** — the coordinator returns despite every injected
   failure (no wedged leases, no immortal workers, no infinite
   re-publishing).
2. **Exact quarantine** — precisely the unsurvivable specs (poison +
   hang) come back as :class:`~repro.results.FailedResult` slots and
   appear in the job's dead-letter store; nothing else does.
3. **Byte-identity of survivors** — every surviving slot is
   byte-identical to a fault-free serial ``run_many`` baseline
   (retried-and-recovered specs included: recovery must not leave
   marks on results).
4. **Reproducible failure records** — a serial ``run_many`` pass under
   the *same* fault plan and policy reproduces the sharded run's
   output byte for byte, failure slots included: failure capture obeys
   the same serial == parallel == sharded discipline as success.
5. **Honest ledger** — the job's run ledger (defaulted on by cluster
   workers) accounts for every distinct spec even under injected
   chaos: doomed fingerprints carry ``failed`` records with the
   policy's full attempt budget, and the flaky spec's executions
   record exactly the one extra attempt its recovery cost.

Exposed as ``python -m repro chaos --smoke`` (a CI step).  The whole
run is a pure function of ``seed``.
"""

from __future__ import annotations

import tempfile
from typing import Any

from repro.api.failures import FailurePolicy
from repro.api.runner import run_many
from repro.api.spec import InstanceSpec, RunSpec
from repro.cluster.coordinator import job_status, run_sharded
from repro.cluster.planner import ensure_plan
from repro.errors import ClusterError
from repro.faults.injector import (
    KILL_EXIT_CODE,
    active_faults,
    apply_stale_leases,
    env_with_faults,
)
from repro.faults.spec import FaultPlan, make_fault
from repro.results import canonical_json
from repro.scenarios.spec import ScenarioSpec
from repro.telemetry.ledger import read_ledger_rows

#: Per-attempt deadline in the smoke's failure policy; the hang fault
#: sleeps well past it so both attempts time out deterministically.
SMOKE_TIMEOUT_S = 0.5
SMOKE_HANG_SLEEP_S = 4.0


def _smoke_batch() -> list[RunSpec]:
    """The adversarial batch: plain, scenario, and duplicate specs."""
    instance = InstanceSpec(family="complete_bipartite", size=3, seed=2)
    return [
        RunSpec(instance=instance, algorithm="greedy_sequential"),
        RunSpec(instance=instance, algorithm="bko20"),
        RunSpec(
            instance=instance,
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(model="crash_stop", seed=5, params={"f": 2}),
        ),
        RunSpec(
            instance=instance,
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(
                model="lossy_links", seed=5, params={"drop": 0.2}
            ),
        ),
        # A duplicate: a failed fingerprint must fan its FailedResult
        # over every occurrence exactly as successes fan out.
        RunSpec(instance=instance, algorithm="greedy_sequential"),
    ]


def smoke_plan(seed: int, fingerprints: list[str]) -> FaultPlan:
    """The seeded fault schedule over a batch's distinct fingerprints.

    Target selection is a pure function of ``seed`` and the sorted
    distinct fingerprints: rotating the sorted list by ``seed`` picks
    which spec is poisoned, which hangs, and which is merely flaky —
    so different seeds exercise different specs, and the same seed
    always rebuilds the same plan.
    """
    distinct = sorted(set(fingerprints))
    if len(distinct) < 3:
        raise ClusterError(
            f"chaos smoke needs >= 3 distinct specs, got {len(distinct)}"
        )
    poison = distinct[seed % len(distinct)]
    hang = distinct[(seed + 1) % len(distinct)]
    flaky = distinct[(seed + 2) % len(distinct)]
    return FaultPlan(
        seed=seed,
        faults=(
            make_fault("poison", target=poison),
            make_fault("hang", target=hang, sleep_s=SMOKE_HANG_SLEEP_S),
            make_fault("flaky", target=flaky, fail_attempts=1),
            make_fault("torn_write", match="results/", count=1),
            make_fault("worker_kill", after_specs=1),
            make_fault("stale_lease", shard=0, age_s=1e6),
        ),
    )


def chaos_smoke(seed: int = 0) -> dict[str, Any]:
    """Run the seeded chaos schedule end-to-end; raise on any breach.

    See the module docstring for the four contracts checked.  Returns
    a JSON-safe summary (CLI: ``python -m repro chaos --smoke``).
    """
    specs = _smoke_batch()
    fingerprints = [spec.fingerprint() for spec in specs]
    plan = smoke_plan(seed, fingerprints)
    policy = FailurePolicy(
        on_error="capture",
        retries=1,
        backoff_s=0.0,
        timeout_s=SMOKE_TIMEOUT_S,
        backoff_seed=seed,
    )
    poison_target = plan.of_kind("poison")[0].params["target"]
    hang_target = plan.of_kind("hang")[0].params["target"]
    flaky_target = plan.of_kind("flaky")[0].params["target"]
    doomed = {poison_target, hang_target}

    # Fault-free serial baseline: what every surviving slot must equal.
    baseline = run_many(specs, cache=False)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-smoke-") as job_dir:
        # Plant the stale lease before any worker starts, then run the
        # sharded job with the fault plan active both in the worker
        # subprocesses (via the environment) and in this process (the
        # coordinator's drain executes specs too).
        ensure_plan(specs, job_dir, shards=2)
        apply_stale_leases(plan, job_dir)
        with active_faults(plan):
            merged = run_sharded(
                specs,
                job_dir,
                shards=2,
                local_workers=2,
                lease_ttl=2.0,
                on_error=policy,
                worker_env=env_with_faults(plan),
            )
        status = job_status(job_dir)
        # The ledger lives inside the temporary job directory — read
        # it before the directory evaporates.
        ledger_rows = [
            row
            for row in read_ledger_rows(f"{job_dir}/ledger")
            if row.get("kind") == "run"
        ]

    if len(merged) != len(specs):
        raise ClusterError(
            f"chaos merge returned {len(merged)} results for "
            f"{len(specs)} specs"
        )

    # Contract 2: exactly the doomed specs fail, everywhere they occur,
    # and the dead-letter store agrees.
    expected_failures = {
        index
        for index, fingerprint in enumerate(fingerprints)
        if fingerprint in doomed
    }
    actual_failures = {
        index for index, result in enumerate(merged) if result.is_failure()
    }
    if actual_failures != expected_failures:
        raise ClusterError(
            f"chaos quarantined slots {sorted(actual_failures)}, expected "
            f"{sorted(expected_failures)} (poison + hang targets only)"
        )
    if set(status["failed"]) != doomed:
        raise ClusterError(
            f"dead-letter store holds {sorted(status['failed'])}, expected "
            f"{sorted(doomed)}"
        )
    for index in sorted(expected_failures):
        failed = merged[index]
        expected_type = (
            "InjectedFault"
            if fingerprints[index] == poison_target
            else "SpecTimeoutError"
        )
        if failed.error_type != expected_type:
            raise ClusterError(
                f"chaos slot {index} failed with {failed.error_type}, "
                f"expected {expected_type}"
            )
        if failed.attempts != policy.attempts:
            raise ClusterError(
                f"chaos slot {index} records {failed.attempts} attempts, "
                f"expected {policy.attempts}"
            )

    # Contract 3: survivors (the flaky-but-recovered spec included) are
    # byte-identical to the fault-free baseline.
    for index, (ours, theirs) in enumerate(zip(merged, baseline)):
        if index in expected_failures:
            continue
        if canonical_json(ours.to_dict()) != canonical_json(theirs.to_dict()):
            raise ClusterError(
                f"chaos surviving slot {index} ({specs[index].label()}) is "
                "not byte-identical to the fault-free serial baseline"
            )

    # Contract 4: a serial pass under the same fault plan reproduces
    # the sharded output byte for byte — failure records included.
    with active_faults(plan):
        replay = run_many(specs, cache=False, on_error=policy)
    for index, (ours, theirs) in enumerate(zip(merged, replay)):
        if canonical_json(ours.to_dict()) != canonical_json(theirs.to_dict()):
            raise ClusterError(
                f"chaos slot {index} differs between the sharded run and "
                "the serial replay under the same fault plan — failure "
                "records are not reproducible"
            )

    # Contract 5: the run ledger accounts for the chaos honestly.
    # Workers (and the coordinator's drain) default the ledger on, so
    # every distinct fingerprint must have at least one record; doomed
    # specs must carry 'failed' records at the policy's full attempt
    # budget; the flaky spec fails exactly its first attempt in every
    # process, so each of its executions records one extra attempt.
    recorded = {row["fingerprint"] for row in ledger_rows}
    missing = set(fingerprints) - recorded
    if missing:
        raise ClusterError(
            f"chaos ledger is missing records for {sorted(f[:12] for f in missing)}"
        )
    for target in sorted(doomed):
        failed_rows = [
            row
            for row in ledger_rows
            if row["fingerprint"] == target and row["disposition"] == "failed"
        ]
        if not failed_rows:
            raise ClusterError(
                f"chaos ledger has no 'failed' record for doomed spec "
                f"{target[:12]}"
            )
        if any(row["attempts"] != policy.attempts for row in failed_rows):
            raise ClusterError(
                f"chaos ledger records attempts "
                f"{sorted(row['attempts'] for row in failed_rows)} for doomed "
                f"spec {target[:12]}, expected {policy.attempts} everywhere"
            )
    flaky_executed = [
        row
        for row in ledger_rows
        if row["fingerprint"] == flaky_target
        and row["disposition"] == "executed"
    ]
    if not flaky_executed:
        raise ClusterError(
            f"chaos ledger has no 'executed' record for flaky spec "
            f"{flaky_target[:12]}"
        )
    if any(row["attempts"] != 2 for row in flaky_executed):
        raise ClusterError(
            f"chaos ledger records attempts "
            f"{sorted(row['attempts'] for row in flaky_executed)} for flaky "
            "spec, expected 2 (one injected failure + the recovery)"
        )

    kill_events = [
        event
        for event in status["worker_events"]
        if event.get("returncode") == KILL_EXIT_CODE
    ]
    return {
        "seed": seed,
        "specs": len(specs),
        "plan_fingerprint": plan.fingerprint()[:12],
        "failed_slots": sorted(expected_failures),
        "failed_fingerprints": sorted(f[:12] for f in doomed),
        "survivors_byte_identical": True,
        "failures_reproducible": True,
        "ledger_records": len(ledger_rows),
        "ledger_accounts_all_specs": True,
        "worker_kills_observed": len(kill_events),
        "worker_events": status["worker_events"],
    }
