"""Turning fault plans into injected behaviour via the library's seams.

The executor and the disk layer each expose one deliberate seam:

* :data:`repro.api.runner._FAULT_HOOK` — called as
  ``hook(fingerprint, attempt)`` at the start of every execution
  attempt, inside the attempt's deadline and retry scope;
* :data:`repro.api.diskcache._PUBLISH_FAULT` — consulted as
  ``hook(path, text)`` before every atomic JSON publish; returning
  ``True`` means the hook already "published" (e.g. a torn file).

A :class:`FaultInjector` compiles a :class:`~repro.faults.spec.FaultPlan`
into those two hooks.  Installation is process-local and explicitly
scoped (:func:`active_faults`); worker subprocesses opt in through the
:data:`ENV_VAR` environment variable (:func:`env_with_faults` on the
spawning side, :func:`install_from_env` inside ``python -m repro
worker``), which also flips ``in_worker`` so the ``worker_kill`` fault
can only ever take down a worker subprocess — never the coordinator or
a test harness.

Everything here is deterministic by construction: targeted faults key
on the spec fingerprint and the runner-supplied attempt number (both
identical in every process), and the stateful kinds (``torn_write``
counts, ``worker_kill`` spec counts) count per process, which is the
point — each process crashes/tears the same way the real failure
would, and recovery is the library's job.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.api import diskcache as _diskcache
from repro.api import runner as _runner
from repro.errors import InjectedFault
from repro.faults.spec import FaultPlan, FaultSpec

#: Environment variable carrying a JSON fault plan into worker
#: subprocesses (see :func:`env_with_faults` / :func:`install_from_env`).
ENV_VAR = "REPRO_FAULTS"

#: Exit code of a ``worker_kill`` fault — distinguishable from clean
#: exits and from signal deaths in ``events.json``.
KILL_EXIT_CODE = 86


class FaultInjector:
    """Compiled, installable form of one fault plan.

    Parameters
    ----------
    plan:
        The faults to inject.
    in_worker:
        ``True`` only in worker subprocesses; gates ``worker_kill``.
    """

    def __init__(self, plan: FaultPlan, *, in_worker: bool = False) -> None:
        self.plan = plan
        self.in_worker = in_worker
        self._poison = plan.of_kind("poison")
        self._flaky = plan.of_kind("flaky")
        self._hang = plan.of_kind("hang")
        self._torn = plan.of_kind("torn_write")
        self._kill = plan.of_kind("worker_kill")
        self._torn_used: dict[int, int] = {}
        self._specs_executed = 0
        self._installed = False

    # -- the two hooks -------------------------------------------------

    def runner_hook(self, fingerprint: str, attempt: int) -> None:
        """Executor seam: maybe kill, stall, or fail this attempt."""
        if attempt == 1:
            # A spec boundary: the worker_kill budget counts distinct
            # executions, not retries.
            if self.in_worker and self._kill:
                budget = min(f.params["after_specs"] for f in self._kill)
                if self._specs_executed >= budget:
                    os._exit(KILL_EXIT_CODE)
            self._specs_executed += 1
        for fault in self._hang:
            if fault.matches(fingerprint):
                time.sleep(float(fault.params["sleep_s"]))
        for fault in self._flaky:
            if fault.matches(fingerprint) and attempt <= int(
                fault.params["fail_attempts"]
            ):
                raise InjectedFault(
                    f"injected flaky failure (attempt {attempt} of "
                    f"{fault.params['fail_attempts']} doomed) for spec "
                    f"{fingerprint[:12]}"
                )
        for fault in self._poison:
            if fault.matches(fingerprint):
                raise InjectedFault(
                    f"injected poison for spec {fingerprint[:12]}"
                )

    def publish_hook(self, path: Path, text: str) -> bool:
        """Disk seam: maybe publish a torn file instead of the payload."""
        for index, fault in enumerate(self._torn):
            if fault.params["match"] not in str(path):
                continue
            used = self._torn_used.get(index, 0)
            if used >= int(fault.params["count"]):
                continue
            self._torn_used[index] = used + 1
            # The artefact of a crash mid-write: the destination holds
            # a prefix of the payload and no rename ever happened.
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text[: max(1, len(text) // 2)])
            return True
        return False

    # -- installation --------------------------------------------------

    def install(self) -> None:
        """Attach both hooks (refusing to stack over a foreign injector)."""
        if _runner._FAULT_HOOK is not None or _diskcache._PUBLISH_FAULT is not None:
            raise InjectedFault(
                "another fault injector is already installed in this "
                "process; nest via a single combined FaultPlan instead"
            )
        # Pin the bound methods: attribute access would create fresh
        # objects, defeating the identity checks in uninstall().
        self._runner_hook = self.runner_hook
        self._publish_hook = self.publish_hook
        _runner._FAULT_HOOK = self._runner_hook
        _diskcache._PUBLISH_FAULT = self._publish_hook
        self._installed = True

    def uninstall(self) -> None:
        """Detach the hooks if this injector owns them."""
        if not self._installed:
            return
        if _runner._FAULT_HOOK is self._runner_hook:
            _runner._FAULT_HOOK = None
        if _diskcache._PUBLISH_FAULT is self._publish_hook:
            _diskcache._PUBLISH_FAULT = None
        self._installed = False


@contextmanager
def active_faults(
    plan: FaultPlan, *, in_worker: bool = False
) -> Iterator[FaultInjector]:
    """Scope a fault plan over a block: install on entry, always detach."""
    injector = FaultInjector(plan, in_worker=in_worker)
    injector.install()
    try:
        yield injector
    finally:
        injector.uninstall()


def env_with_faults(plan: FaultPlan) -> dict[str, str]:
    """The environment delta that ships ``plan`` to worker subprocesses."""
    return {ENV_VAR: plan.to_json()}


def install_from_env(environ: Any = None) -> FaultInjector | None:
    """Install the env-carried fault plan, if any (worker entry point).

    Called by ``python -m repro worker`` before draining: a plan found
    in :data:`ENV_VAR` is installed with ``in_worker=True`` (arming
    ``worker_kill``); no variable, no injector.  Returns the installed
    injector so callers can uninstall in tests.
    """
    source = os.environ if environ is None else environ
    text = source.get(ENV_VAR)
    if not text:
        return None
    injector = FaultInjector(FaultPlan.from_json(text), in_worker=True)
    injector.install()
    return injector


def apply_stale_leases(
    plan: FaultPlan, job_dir: str | Path, *, now: float | None = None
) -> list[int]:
    """Pre-plant the plan's ``stale_lease`` claims in a job directory.

    Each targeted shard gets a claim file held by the phantom worker
    ``"chaos-ghost:0"`` (pid 0 — never a live worker, so the
    coordinator's liveness scan cannot mistake it for one of its own)
    with a heartbeat ``age_s`` seconds in the past.  Returns the shard
    indices planted, for assertion by the harness.
    """
    from repro.cluster.queue import claim_path

    stamp = time.time() if now is None else now
    planted: list[int] = []
    for fault in plan.of_kind("stale_lease"):
        shard = int(fault.params["shard"])
        age = float(fault.params["age_s"])
        path = claim_path(job_dir, shard)
        path.parent.mkdir(parents=True, exist_ok=True)
        _diskcache.atomic_write_json(
            path,
            {
                "worker": "chaos-ghost:0",
                "claimed_at": stamp - age,
                "heartbeat_at": stamp - age,
            },
        )
        planted.append(shard)
    return planted
