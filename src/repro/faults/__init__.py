"""repro.faults — deterministic fault injection (the chaos harness).

Robustness claims need adversaries.  This package turns seeded
:class:`FaultSpec` descriptions — poison specs, flaky specs, hangs,
torn file writes, killed workers, stale leases — into injected
behaviour via two deliberate seams in the execution stack
(:data:`repro.api.runner._FAULT_HOOK` and
:data:`repro.api.diskcache._PUBLISH_FAULT`), so every failure-handling
path in the library can be driven on purpose, reproducibly::

    from repro.faults import FaultPlan, active_faults, make_fault

    plan = FaultPlan(seed=7, faults=(
        make_fault("poison", target=spec.fingerprint()),
        make_fault("torn_write", match="results/", count=1),
    ))
    with active_faults(plan):
        results = run_many(specs, on_error="capture")

Determinism is the point: fault plans are fingerprinted and round-trip
through JSON (workers receive theirs via the ``REPRO_FAULTS``
environment variable), targeted faults key on spec fingerprints and
runner-supplied attempt numbers, and the end-to-end smoke
(:func:`chaos_smoke`, ``python -m repro chaos --smoke``) checks that a
sharded run under faults terminates, quarantines exactly the doomed
specs, merges survivors byte-identical to a fault-free serial run, and
reproduces its failure records in a serial replay.
"""

from repro.faults.chaos import chaos_smoke, smoke_plan
from repro.faults.injector import (
    ENV_VAR,
    KILL_EXIT_CODE,
    FaultInjector,
    active_faults,
    apply_stale_leases,
    env_with_faults,
    install_from_env,
)
from repro.faults.spec import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    make_fault,
)

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "KILL_EXIT_CODE",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "active_faults",
    "apply_stale_leases",
    "chaos_smoke",
    "env_with_faults",
    "install_from_env",
    "make_fault",
    "smoke_plan",
]
