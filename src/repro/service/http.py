"""The stdlib HTTP layer: routing, strict deserialization, streaming.

A thin, dependency-free transport over :class:`~repro.service.app.
ReproService` built on :class:`http.server.ThreadingHTTPServer` — one
daemon thread per connection, which is exactly what the coalescing
discipline needs (followers *block* on the leader's event; threads make
that free) and what streaming needs (a reader parked on a job's
condition variable costs one thread, not a poll loop).

Routes (all JSON in, JSON out)::

    POST /v1/run                 one spec -> fingerprinted result
    POST /v1/jobs                spec batch -> job id (idempotent)
    GET  /v1/jobs/<id>           progress + cluster status
    GET  /v1/jobs/<id>/stream    NDJSON of {index, result}, batch order
    GET  /v1/jobs/<id>/events    NDJSON job event stream (?after=<cursor>
                                 resumes exactly-once; ?follow=0 returns
                                 the backlog and closes)
    GET  /v1/registry            families / algorithms / policies / models
    GET  /v1/healthz             liveness + measured load
    GET  /v1/metrics             request counts, run split, latency histograms
                                 (?format=prometheus for text exposition)

Contract details the tests pin:

* Strict deserialization — a spec payload with unknown fields is a
  **400** whose body names the offending fields
  (:class:`~repro.errors.SpecFormatError` text), never a silent drop.
* The spec (or plan) fingerprint is echoed in the
  ``X-Repro-Fingerprint`` response header.
* Poison specs are *answers*, not errors: captured failures return 200
  with ``failed: true`` and the serialized
  :class:`~repro.results.FailedResult` in ``result``.
* The stream endpoint speaks HTTP/1.0 with ``Connection: close`` and
  no Content-Length: each line is flushed as its slot fills, and EOF
  marks the end of the batch — readable with nothing but ``urllib``.
* The events endpoint streams the job's live event log
  (:mod:`repro.telemetry.events`) the same way; every event line
  carries a ``cursor`` field, and reconnecting with
  ``?after=<that cursor>`` replays nothing and misses nothing.
* Every response — errors included — carries ``X-Repro-Elapsed-Ms``
  (wall-clock from dispatch to the response headers; a streamed
  response stamps the time to stream *start*), and every finished
  request feeds the service's
  :class:`~repro.telemetry.metrics.MetricsRegistry` under its
  normalized route (``GET /v1/jobs/<id>`` — never raw ids).
"""

from __future__ import annotations

import json
import re
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs

from repro.api.spec import RunSpec
from repro.errors import ReproError
from repro.service.app import ReproService, registry_payload
from repro.telemetry.events import events_dir_of, parse_cursor, read_events
from repro.telemetry.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)
from repro.telemetry.trace import trace

_JOB_ROUTE = re.compile(
    r"^/v1/jobs/(?P<job>[0-9a-f]{64})(?P<sub>/stream|/events)?$"
)

#: Seconds between event-stream polls while the job still runs.
EVENTS_POLL_S = 0.15


def _endpoint_label(path: str) -> str:
    """Collapse a request path onto its route template for metrics.

    Job ids must not explode the per-endpoint metric space, so both
    job routes normalize to placeholder labels; paths that match no
    route at all pool under ``<other>``.
    """
    if path in ("/v1/run", "/v1/jobs", "/v1/registry", "/v1/healthz", "/v1/metrics"):
        return path
    match = _JOB_ROUTE.match(path)
    if match:
        return f"/v1/jobs/<id>{match.group('sub') or ''}"
    return "<other>"


class _HttpError(Exception):
    """A client-visible error: status code + JSON body."""

    def __init__(self, status: int, kind: str, message: str, **extra: Any):
        super().__init__(message)
        self.status = status
        self.payload = {"error": kind, "message": message, **extra}


def _parse_spec(payload: Any, *, where: str) -> RunSpec:
    """Deserialize one RunSpec dict strictly; 400 on anything off.

    :class:`~repro.errors.SpecFormatError` (unknown fields) and every
    other spec-construction failure — missing keys, wrong types, bad
    parameter values — map to 400 with the library's own message, which
    names the offending field.
    """
    if not isinstance(payload, dict):
        raise _HttpError(
            400,
            "spec_format",
            f"{where} must be a RunSpec JSON object, got "
            f"{type(payload).__name__}",
        )
    try:
        return RunSpec.from_dict(payload)
    except (ReproError, ValueError, KeyError, TypeError) as exc:
        raise _HttpError(
            400, "spec_format", f"{where}: {exc}"
        ) from exc


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests to the bound :class:`ReproService`.

    Subclasses are minted per server by :func:`make_server` with the
    ``service`` class attribute bound; ``protocol_version`` stays at
    HTTP/1.0 so streamed responses are delimited by connection close
    (no chunked encoding to hand-roll, every stdlib client can read
    it).
    """

    service: ReproService
    quiet = True
    protocol_version = "HTTP/1.0"

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    def _elapsed_ms(self) -> float:
        started = getattr(self, "_dispatch_started", None)
        if started is None:
            return 0.0
        return (time.perf_counter() - started) * 1000.0

    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        *,
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True, default=repr).encode()
        self._status_sent = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Repro-Elapsed-Ms", f"{self._elapsed_ms():.3f}")
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self, status: int, text: str, *, content_type: str
    ) -> None:
        body = text.encode("utf-8")
        self._status_sent = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Repro-Elapsed-Ms", f"{self._elapsed_ms():.3f}")
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Any:
        length_text = self.headers.get("Content-Length") or "0"
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(
                400, "bad_request", f"unreadable Content-Length {length_text!r}"
            )
        raw = self.rfile.read(length) if length > 0 else b""
        if not raw:
            raise _HttpError(400, "bad_request", "empty request body")
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise _HttpError(400, "bad_json", f"request body is not JSON: {exc}")

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler convention)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        path, _, query_text = self.path.partition("?")
        query = {
            key: values[-1] for key, values in parse_qs(query_text).items()
        }
        endpoint = _endpoint_label(path)
        self._dispatch_started = time.perf_counter()
        self._status_sent = 0  # 0 = aborted before any response was sent
        metrics = self.service.metrics
        metrics.request_started()
        try:
            with trace("http.request", method=method, endpoint=endpoint):
                self._route(method, path, query)
        except _HttpError as err:
            self._send_json(err.status, err.payload)
        except (BrokenPipeError, ConnectionError):
            pass  # client went away mid-response; nothing to tell it
        except Exception as exc:  # noqa: BLE001 — the 500 boundary
            try:
                self._send_json(
                    500,
                    {
                        "error": "internal",
                        "message": f"{type(exc).__name__}: {exc}",
                    },
                )
            except (BrokenPipeError, ConnectionError):
                pass
        finally:
            metrics.request_finished(
                endpoint, method, self._status_sent, self._elapsed_ms()
            )

    def _route(
        self, method: str, path: str, query: dict[str, str]
    ) -> None:
        if method == "GET" and path == "/v1/healthz":
            self._send_json(200, self.service.health())
        elif method == "GET" and path == "/v1/metrics":
            self._handle_metrics(query)
        elif method == "GET" and path == "/v1/registry":
            self._send_json(200, registry_payload())
        elif method == "POST" and path == "/v1/run":
            self._handle_run()
        elif method == "POST" and path == "/v1/jobs":
            self._handle_submit()
        elif method == "GET" and (match := _JOB_ROUTE.match(path)):
            sub = match.group("sub")
            if sub == "/stream":
                self._handle_stream(match.group("job"))
            elif sub == "/events":
                self._handle_events(match.group("job"), query)
            else:
                self._handle_job_status(match.group("job"))
        else:
            raise _HttpError(
                404, "not_found", f"no route for {method} {path}"
            )

    # -- endpoints --------------------------------------------------------

    def _handle_metrics(self, query: dict[str, str]) -> None:
        """``GET /v1/metrics``: JSON snapshot, or the Prometheus text
        exposition under ``?format=prometheus`` — both rendered from
        the same frozen snapshot, so they can never disagree.
        """
        fmt = query.get("format", "json")
        if fmt == "json":
            self._send_json(200, self.service.metrics.snapshot())
        elif fmt == "prometheus":
            self._send_text(
                200,
                render_prometheus(self.service.metrics.snapshot()),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        else:
            raise _HttpError(
                400,
                "bad_request",
                f"unknown metrics format {fmt!r} "
                '(expected "json" or "prometheus")',
            )

    def _handle_run(self) -> None:
        spec = _parse_spec(self._read_json(), where="request body")
        try:
            fingerprint, result, source = self.service.run_one(spec)
        except OSError as exc:
            # A path-based instance whose edge-list file is unreadable
            # fails at fingerprint time — the request's fault, not ours.
            raise _HttpError(400, "bad_instance", str(exc)) from exc
        self._send_json(
            200,
            {
                "fingerprint": fingerprint,
                "source": source,
                "failed": result.is_failure(),
                "result": result.to_dict(),
            },
            headers={"X-Repro-Fingerprint": fingerprint},
        )

    def _handle_submit(self) -> None:
        payload = self._read_json()
        if not isinstance(payload, dict) or not isinstance(
            payload.get("specs"), list
        ):
            raise _HttpError(
                400,
                "bad_request",
                'POST /v1/jobs expects {"specs": [RunSpec, ...], '
                '"shards"?: int|"auto", "local_workers"?: int}',
            )
        specs = [
            _parse_spec(entry, where=f"specs[{index}]")
            for index, entry in enumerate(payload["specs"])
        ]
        if not specs:
            raise _HttpError(400, "bad_request", "specs must be non-empty")
        shards = payload.get("shards")
        if shards is not None and shards != "auto" and not isinstance(shards, int):
            raise _HttpError(
                400, "bad_request", f'shards must be an int or "auto", got {shards!r}'
            )
        local_workers = payload.get("local_workers", 0)
        if not isinstance(local_workers, int) or local_workers < 0:
            raise _HttpError(
                400,
                "bad_request",
                f"local_workers must be a non-negative int, got {local_workers!r}",
            )
        try:
            job, created = self.service.submit_job(
                specs, shards=shards, local_workers=local_workers
            )
        except (ReproError, OSError) as exc:
            raise _HttpError(400, "bad_request", str(exc)) from exc
        self._send_json(
            201 if created else 200,
            {
                "job": job.id,
                "created": created,
                "total": len(job.specs),
                "shards": job.shards,
                "local_workers": job.local_workers,
                "status_url": f"/v1/jobs/{job.id}",
                "stream_url": f"/v1/jobs/{job.id}/stream",
                "events_url": f"/v1/jobs/{job.id}/events",
            },
            headers={"X-Repro-Fingerprint": job.id},
        )

    def _job_of(self, job_id: str):
        job = self.service.get_job(job_id)
        if job is None:
            raise _HttpError(404, "not_found", f"no job {job_id[:12]}… here")
        return job

    def _handle_job_status(self, job_id: str) -> None:
        job = self._job_of(job_id)
        self._send_json(
            200,
            self.service.job_snapshot(job),
            headers={"X-Repro-Fingerprint": job.id},
        )

    def _handle_stream(self, job_id: str) -> None:
        """NDJSON: one ``{"index": i, "result": ...}`` line per spec,
        strictly in batch order, flushed as each slot fills.

        Exactly-once delivery falls out of the slot model: the loop
        visits every index once, and a slot, once filled, never
        changes.  A driver crash (not a captured spec failure) ends the
        stream with a single ``{"error": ...}`` line.
        """
        job = self._job_of(job_id)
        self._status_sent = 200
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("X-Repro-Fingerprint", job.id)
        self.send_header("X-Repro-Elapsed-Ms", f"{self._elapsed_ms():.3f}")
        self.end_headers()
        for index in range(len(job.specs)):
            slot = job.wait_slot(index)
            if slot is None:
                line = {"error": "job_failed", "message": job.error}
                self.wfile.write(
                    json.dumps(line, sort_keys=True).encode() + b"\n"
                )
                return
            line = {"index": index, "result": slot}
            self.wfile.write(
                json.dumps(line, sort_keys=True, default=repr).encode() + b"\n"
            )
            self.wfile.flush()

    def _handle_events(self, job_id: str, query: dict[str, str]) -> None:
        """NDJSON stream of the job's live event log.

        Each line is one event from ``<job>/events/``
        (:func:`repro.telemetry.events.read_events`) carrying its own
        ``cursor``; ``?after=<cursor>`` resumes *just after* that event
        — a reconnecting client replays nothing and misses nothing,
        because cursors count parsed lines per writer file and sealed
        lines never change.  By default the stream follows the job
        (polls while it runs, one final drain once it stops, then EOF);
        ``?follow=0`` returns just the current backlog and closes —
        the poll-friendly form ``repro top`` uses.
        """
        job = self._job_of(job_id)
        cursor = query.get("after") or None
        if cursor is not None:
            try:
                parse_cursor(cursor)
            except ValueError as exc:
                raise _HttpError(
                    400, "bad_cursor", f"unreadable ?after= cursor: {exc}"
                ) from exc
        follow = query.get("follow", "1") not in ("0", "false", "no")
        directory = events_dir_of(job.job_dir)
        self._status_sent = 200
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("X-Repro-Fingerprint", job.id)
        self.send_header("X-Repro-Elapsed-Ms", f"{self._elapsed_ms():.3f}")
        self.end_headers()

        def ship() -> None:
            nonlocal cursor
            events, cursor = read_events(directory, cursor)
            for event in events:
                self.wfile.write(
                    json.dumps(event, sort_keys=True, default=repr).encode()
                    + b"\n"
                )
            if events:
                self.wfile.flush()

        while True:
            ship()
            if not follow:
                return
            if job.snapshot()["state"] != "running":
                # One final drain: events sealed between the last read
                # and the state flip must still ship before EOF.
                ship()
                return
            time.sleep(EVENTS_POLL_S)


def make_server(
    service: ReproService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server over ``service`` (port 0 = ephemeral).

    The handler class is minted per call so multiple services can serve
    in one process (tests do); ``daemon_threads`` keeps a parked stream
    reader from ever blocking interpreter exit.
    """
    handler = type(
        "BoundServiceHandler",
        (ServiceHandler,),
        {"service": service, "quiet": quiet},
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server
