"""The service smoke: a live server, checked end-to-end over real HTTP.

``python -m repro serve --smoke`` (a CI step) starts an in-process
service on an ephemeral port and drives it with nothing but
:mod:`urllib` — the same way an external client would — asserting the
service's two headline contracts plus the request-hygiene ones:

1. **Idempotent concurrency** — N threads POST the *same* spec
   concurrently; exactly one execution happens (counted at the
   executor's fault-hook seam, with the leader held open until every
   follower has joined, so the assertion is deterministic, not a
   race), and all N responses carry the same fingerprint and
   byte-identical results.
2. **Streaming byte-identity** — a mixed batch (duplicate spec and
   adversarial scenarios included) submitted as a sharded
   multi-worker job streams every result exactly once, in batch
   order, byte-identical to serial :func:`repro.api.run_many`.
3. **Hygiene** — malformed specs are 400s naming the offending field;
   a poison spec round-trips as a captured
   :class:`~repro.results.FailedResult` (HTTP 200, ``failed: true``);
   health and registry endpoints answer.
4. **Observability** — every response carries ``X-Repro-Elapsed-Ms``
   (errors included — a 404 is stamped and counted under its
   endpoint); ``GET /v1/metrics`` reports the executed/coalesced/cache
   run split the earlier checks actually caused, with per-endpoint
   latency histograms; ``GET /v1/healthz`` reports measured uptime and
   load; ``GET /v1/metrics?format=prometheus`` parses line-by-line
   under the text-format grammar with cumulative buckets that agree
   with the JSON view.
5. **Resumable events** — ``GET /v1/jobs/<id>/events`` is fetched
   mid-job (``?follow=0`` backlog) and resumed after completion with
   ``?after=<cursor>``: the two reads concatenate to exactly the full
   stream — nothing replayed, nothing missed — with per-worker
   sequence numbers strictly increasing.

Any breach raises :class:`~repro.errors.ServiceError`.
"""

from __future__ import annotations

import json
import re
import tempfile
import threading
import time
import urllib.error
import urllib.request
from typing import Any

from repro.api.runner import run_many
from repro.api.spec import InstanceSpec, RunSpec
from repro.errors import ServiceError
from repro.results import canonical_json
from repro.scenarios.spec import ScenarioSpec
from repro.service.app import ReproService
from repro.service.http import make_server
from repro.telemetry.prometheus import PROMETHEUS_CONTENT_TYPE

#: Seconds the held-open leader waits for all followers to join.
BARRIER_TIMEOUT_S = 30.0


def _smoke_batch() -> list[RunSpec]:
    """The usual adversarial mix: plain, scenario, and duplicate specs."""
    instance = InstanceSpec(family="complete_bipartite", size=3, seed=2)
    return [
        RunSpec(instance=instance, algorithm="greedy_sequential"),
        RunSpec(instance=instance, algorithm="bko20"),
        RunSpec(
            instance=instance,
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(model="crash_stop", seed=5, params={"f": 2}),
        ),
        RunSpec(
            instance=instance,
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(
                model="lossy_links", seed=5, params={"drop": 0.2}
            ),
        ),
        # The duplicate: the stream must fan one solve over both slots.
        RunSpec(instance=instance, algorithm="greedy_sequential"),
    ]


def _request(
    method: str,
    url: str,
    payload: Any | None = None,
    *,
    timeout: float = 120.0,
) -> tuple[int, Any, dict[str, str]]:
    """One JSON request; returns ``(status, parsed body, headers)``.

    4xx/5xx responses come back the same way (their bodies are JSON
    too) instead of raising — the smoke asserts on them.
    """
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return (
                response.status,
                json.loads(response.read()),
                dict(response.headers),
            )
    except urllib.error.HTTPError as err:
        body = err.read()
        return err.code, json.loads(body) if body else {}, dict(err.headers)


def _stream_lines(url: str, *, timeout: float = 300.0) -> list[dict[str, Any]]:
    """Read an NDJSON stream to EOF; returns the parsed lines."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return [json.loads(line) for line in response if line.strip()]


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceError(f"service smoke: {message}")


def _check_idempotent_concurrency(
    service: ReproService, base: str, *, clients: int
) -> dict[str, Any]:
    """Contract 1: concurrent identical POSTs cost exactly one solve."""
    from repro.api import runner as runner_module

    spec = _smoke_batch()[1]  # the paper solver — a real solve, not a replay
    target = spec.fingerprint()
    executions: list[int] = []

    def hook(fingerprint: str, attempt: int) -> None:
        if fingerprint != target:
            return
        executions.append(attempt)
        # Hold the solve open until every follower has joined the
        # in-flight entry (or the deadline passes): the coalescing
        # assertion below is then exact, not timing-dependent.
        deadline = time.time() + BARRIER_TIMEOUT_S
        while (
            service.inflight_waiters(target) < clients - 1
            and time.time() < deadline
        ):
            time.sleep(0.005)

    responses: list[tuple[int, Any, dict[str, str]]] = []
    lock = threading.Lock()

    def post() -> None:
        answer = _request("POST", base + "/v1/run", spec.to_dict())
        with lock:
            responses.append(answer)

    previous_hook = runner_module._FAULT_HOOK
    runner_module._FAULT_HOOK = hook
    try:
        threads = [
            threading.Thread(target=post, name=f"smoke-client-{i}")
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        runner_module._FAULT_HOOK = previous_hook

    _expect(
        len(executions) == 1,
        f"{clients} concurrent identical POSTs performed "
        f"{len(executions)} executions, expected exactly 1",
    )
    _expect(
        all(status == 200 for status, _, _ in responses),
        f"statuses {[s for s, _, _ in responses]}, expected all 200",
    )
    _expect(
        all(
            headers.get("X-Repro-Fingerprint") == target
            for _, _, headers in responses
        ),
        "X-Repro-Fingerprint header missing or wrong on a response",
    )
    bodies = [body for _, body, _ in responses]
    _expect(
        all(body["fingerprint"] == target for body in bodies),
        "a response body carries the wrong fingerprint",
    )
    rendered = {canonical_json(body["result"]) for body in bodies}
    _expect(
        len(rendered) == 1,
        f"{len(rendered)} distinct result payloads across {clients} "
        "identical requests, expected 1",
    )
    sources = sorted(body["source"] for body in bodies)
    _expect(
        sources.count("executed") == 1 and sources.count("coalesced")
        == clients - 1,
        f"sources {sources}, expected 1 executed + {clients - 1} coalesced",
    )
    # And a later, non-concurrent repeat is a disk-cache hit.
    status, body, _ = _request("POST", base + "/v1/run", spec.to_dict())
    _expect(
        status == 200 and body["source"] == "cache",
        f"repeat POST returned {status}/{body.get('source')}, "
        "expected 200/cache",
    )
    return {"clients": clients, "executions": 1, "coalesced": clients - 1}


def _check_hygiene(base: str) -> None:
    """Contract 3: strict 400s, captured poison, live health/registry."""
    status, body, _ = _request("GET", base + "/v1/healthz")
    _expect(status == 200 and body.get("ok") is True, "healthz not ok")
    status, body, _ = _request("GET", base + "/v1/registry")
    _expect(
        status == 200 and "bko20" in body.get("algorithms", {}),
        "registry does not list the paper solver",
    )
    # Unknown field -> 400 naming the field.
    good = _smoke_batch()[0].to_dict()
    status, body, _ = _request(
        "POST", base + "/v1/run", {**good, "bogus_field": 1}
    )
    _expect(
        status == 400 and "bogus_field" in body.get("message", ""),
        f"malformed spec returned {status} ({body.get('message')!r}), "
        "expected 400 naming 'bogus_field'",
    )
    # Non-JSON body -> 400, not a traceback.
    request = urllib.request.Request(
        base + "/v1/run", data=b"not json", method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=30):
            status = 200
    except urllib.error.HTTPError as err:
        status = err.code
    _expect(status == 400, f"non-JSON body returned {status}, expected 400")
    # Poison spec (unregistered algorithm) -> captured failure, not a 500.
    poison = {**good, "algorithm": "no_such_algorithm"}
    status, body, headers = _request("POST", base + "/v1/run", poison)
    _expect(
        status == 200 and body.get("failed") is True,
        f"poison spec returned {status}/failed={body.get('failed')}, "
        "expected 200 with a captured failure",
    )
    _expect(
        bool(body["result"].get("failure", {}).get("error_type")),
        "captured failure record lacks an error_type",
    )
    _expect(
        headers.get("X-Repro-Fingerprint") == body["fingerprint"],
        "poison response fingerprint header mismatch",
    )


def _check_observability(base: str, *, clients: int) -> dict[str, Any]:
    """Contract 4: metrics reflect reality; every response is stamped.

    Runs *after* the other checks so the counters have known floors:
    the idempotency check performed exactly one execution, ``clients -
    1`` coalesced joins, and one cache replay on ``POST /v1/run``.
    """
    status, body, headers = _request("GET", base + "/v1/metrics")
    _expect(status == 200, f"metrics returned {status}, expected 200")
    elapsed = headers.get("X-Repro-Elapsed-Ms")
    _expect(
        elapsed is not None and float(elapsed) >= 0.0,
        "X-Repro-Elapsed-Ms header missing on the metrics response",
    )
    runs = body.get("runs", {})
    _expect(
        runs.get("executed", 0) >= 1
        and runs.get("coalesced", 0) == clients - 1
        and runs.get("cache", 0) >= 1,
        f"run split {runs} does not reflect the coalescing check "
        f"(expected >=1 executed, {clients - 1} coalesced, >=1 cache)",
    )
    run_metrics = body.get("requests", {}).get("POST /v1/run")
    _expect(
        run_metrics is not None and run_metrics["count"] >= clients + 1,
        "POST /v1/run request count missing or below the traffic sent",
    )
    latency = (run_metrics or {}).get("latency_ms", {})
    histogram = latency.get("histogram", {})
    _expect(
        sum(histogram.values()) == run_metrics["count"]
        and latency.get("p50") is not None,
        f"POST /v1/run latency histogram inconsistent: {latency}",
    )
    _expect(
        body.get("requests_total", 0) >= run_metrics["count"],
        "requests_total below the per-endpoint count",
    )
    # Health reports measured figures sourced from the same registry.
    status, health, headers = _request("GET", base + "/v1/healthz")
    _expect(
        status == 200
        and isinstance(health.get("uptime_s"), (int, float))
        and health["uptime_s"] >= 0.0
        and isinstance(health.get("requests_total"), int)
        and health["requests_total"] >= run_metrics["count"]
        and health.get("active_requests", 0) >= 1,  # this very request
        f"healthz load figures not measured: {health}",
    )
    _expect(
        health.get("inflight_runs") == 0,
        f"healthz inflight_runs {health.get('inflight_runs')} with no "
        "run in flight",
    )
    _expect(
        headers.get("X-Repro-Elapsed-Ms") is not None,
        "X-Repro-Elapsed-Ms header missing on healthz",
    )
    return {
        "metrics_requests_total": body["requests_total"],
        "run_split": {
            key: runs.get(key, 0) for key in ("executed", "coalesced", "cache")
        },
    }


def _check_streaming_job(base: str) -> dict[str, Any]:
    """Contract 2: sharded multi-worker stream == serial run_many."""
    specs = _smoke_batch()
    serial = run_many(specs, cache=False)
    payload = {
        "specs": [spec.to_dict() for spec in specs],
        "shards": 2,
        "local_workers": 1,  # a real worker subprocess: multi-worker job
    }
    status, body, headers = _request("POST", base + "/v1/jobs", payload)
    _expect(status == 201, f"job submit returned {status}, expected 201")
    job_id = body["job"]
    _expect(
        headers.get("X-Repro-Fingerprint") == job_id,
        "job submit did not echo the plan fingerprint",
    )
    events_url = base + body["events_url"]
    # Mid-job backlog fetch: whatever the stream holds *now*, plus the
    # cursor to resume from.  The exactly-once assertion comes after
    # the job completes.
    head_events = _stream_lines(events_url + "?follow=0")
    head_cursor = head_events[-1]["cursor"] if head_events else ""
    lines = _stream_lines(base + body["stream_url"])
    _expect(
        [line.get("index") for line in lines] == list(range(len(specs))),
        f"stream yielded indices {[line.get('index') for line in lines]}, "
        f"expected 0..{len(specs) - 1} exactly once each, in order",
    )
    for index, line in enumerate(lines):
        ours = canonical_json(line["result"])
        theirs = canonical_json(serial[index].to_dict())
        _expect(
            ours == theirs,
            f"streamed result {index} ({specs[index].label()}) is not "
            "byte-identical to serial run_many",
        )
    # The stream ends when the last slot fills; the driver thread still
    # has bookkeeping after that (reaping its worker subprocess), so
    # give the terminal state a moment.
    status_url = base + body["status_url"]
    deadline = time.time() + BARRIER_TIMEOUT_S
    while True:
        status, body, _ = _request("GET", status_url)
        if body.get("state") != "running" or time.time() > deadline:
            break
        time.sleep(0.05)
    _expect(
        status == 200
        and body["state"] == "done"
        and body["done"] == body["total"] == len(specs),
        f"job status after stream drain: {body}",
    )
    cluster = body.get("cluster", {})
    _expect(
        cluster.get("complete") is True,
        "cluster status does not report the job complete",
    )
    # Idempotent resubmission: same batch -> same job, not a new one.
    status, body, _ = _request("POST", base + "/v1/jobs", payload)
    _expect(
        status == 200 and body["job"] == job_id and body["created"] is False,
        "resubmitting the identical batch minted a new job",
    )
    events = _check_events_stream(
        events_url, head_events, head_cursor, shards=payload["shards"]
    )
    return {
        "job": job_id[:12],
        "streamed": len(lines),
        "byte_identical": True,
        "events": events,
    }


def _check_events_stream(
    events_url: str,
    head: list[dict[str, Any]],
    head_cursor: str,
    *,
    shards: int,
) -> int:
    """Contract 5: the events endpoint resumes exactly-once.

    ``head`` was fetched mid-job; resuming with its last cursor after
    completion must yield precisely the remainder — the concatenation
    carries every event of a from-scratch read exactly once (as a
    multiset: the k-way merge may interleave *across* writers
    differently once late files appear, but nothing is lost or
    duplicated, and each writer's own sequence stays strictly
    increasing).
    """

    def strip(event: dict[str, Any]) -> str:
        return json.dumps(
            {k: v for k, v in event.items() if k != "cursor"},
            sort_keys=True,
        )

    full = _stream_lines(events_url + "?follow=0")
    resume = events_url + "?follow=0" + (
        f"&after={head_cursor}" if head_cursor else ""
    )
    tail = _stream_lines(resume)
    combined = [strip(event) for event in head + tail]
    _expect(
        sorted(combined) == sorted(strip(event) for event in full),
        f"resumed events (head {len(head)} + tail {len(tail)}) are not "
        f"exactly the full stream ({len(full)} events) — replay or loss",
    )
    by_worker: dict[str, int] = {}
    for event in head + tail:
        worker, seq = str(event.get("worker")), event.get("seq")
        _expect(
            isinstance(seq, int) and seq > by_worker.get(worker, 0),
            f"worker {worker} sequence not strictly increasing at {seq}",
        )
        by_worker[worker] = seq
    kinds = [event.get("event") for event in full]
    _expect(
        "job_started" in kinds and "job_complete" in kinds,
        f"event stream lacks job lifecycle markers: {sorted(set(kinds))}",
    )
    sealed = {
        event.get("shard")
        for event in full
        if event.get("event") == "shard_sealed"
    }
    _expect(
        sealed == set(range(shards)),
        f"sealed shards {sorted(sealed)}, expected 0..{shards - 1}",
    )
    # A malformed resume cursor is a client error, stamped like any
    # other response.
    status, body, headers = _request("GET", events_url + "?after=garbage")
    _expect(
        status == 400
        and body.get("error") == "bad_cursor"
        and headers.get("X-Repro-Elapsed-Ms") is not None,
        f"malformed cursor returned {status}/{body.get('error')}, "
        "expected a stamped 400 bad_cursor",
    )
    return len(full)


#: One sample line of the Prometheus text format: metric name, an
#: optional ``{label="value",...}`` block, one value.
_PROM_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?P<labels>\{(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*\})?'
    r' (?P<value>-?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|\+Inf|NaN))$'
)

_PROM_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _check_prometheus(base: str) -> dict[str, Any]:
    """The text exposition parses line-by-line and agrees with JSON.

    Every sample must match the text-format grammar and belong to a
    family announced by ``# HELP`` + ``# TYPE`` lines; histogram
    buckets must be cumulative with ``le="+Inf"`` equal to ``_count``
    per route; the run-split counters must equal the JSON snapshot's.
    Error responses are stamped and counted too: a 404 carries
    ``X-Repro-Elapsed-Ms`` and lands in the metrics under its route.
    """
    request = urllib.request.Request(base + "/v1/metrics?format=prometheus")
    with urllib.request.urlopen(request, timeout=30) as response:
        _expect(
            response.status == 200
            and response.headers.get("Content-Type")
            == PROMETHEUS_CONTENT_TYPE,
            f"prometheus exposition: status {response.status}, "
            f"content-type {response.headers.get('Content-Type')!r}",
        )
        _expect(
            response.headers.get("X-Repro-Elapsed-Ms") is not None,
            "X-Repro-Elapsed-Ms missing on the prometheus response",
        )
        text = response.read().decode("utf-8")
    _expect(text.endswith("\n"), "exposition not newline-terminated")
    typed: dict[str, str] = {}
    helped: set[str] = set()
    samples: list[tuple[str, dict[str, str], str]] = []
    for number, line in enumerate(text.splitlines(), 1):
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            typed[name] = kind
            continue
        match = _PROM_SAMPLE.match(line)
        _expect(
            match is not None,
            f"exposition line {number} fails the text-format grammar: "
            f"{line!r}",
        )
        labels = dict(_PROM_LABEL.findall(match.group("labels") or ""))
        samples.append((match.group("name"), labels, match.group("value")))
    _expect(bool(samples), "exposition carries no samples")
    for name, _, _ in samples:
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        _expect(
            (name in typed or family in typed)
            and (name in helped or family in helped),
            f"sample {name} has no # HELP/# TYPE family announcement",
        )
    # Histogram discipline per route: cumulative buckets, +Inf == _count.
    buckets: dict[tuple[str, str], list[tuple[str, int]]] = {}
    counts: dict[tuple[str, str], int] = {}
    for name, labels, value in samples:
        route = (labels.get("method", ""), labels.get("endpoint", ""))
        if name == "repro_http_request_duration_milliseconds_bucket":
            buckets.setdefault(route, []).append(
                (labels["le"], int(float(value)))
            )
        elif name == "repro_http_request_duration_milliseconds_count":
            counts[route] = int(float(value))
    _expect(set(buckets) == set(counts), "histogram routes lack a _count")
    for route, series in buckets.items():
        values = [count for _, count in series]
        _expect(
            values == sorted(values),
            f"histogram buckets for {route} are not cumulative: {values}",
        )
        _expect(
            series[-1][0] == "+Inf" and series[-1][1] == counts[route],
            f"histogram for {route}: le=+Inf bucket {series[-1]} != "
            f"_count {counts[route]}",
        )
    # The two views render one snapshot: the run split must agree.
    _, snapshot, _ = _request("GET", base + "/v1/metrics")
    rendered_runs = {
        labels["source"]: int(float(value))
        for name, labels, value in samples
        if name == "repro_runs_total"
    }
    _expect(
        rendered_runs == snapshot.get("runs"),
        f"prometheus run split {rendered_runs} != JSON {snapshot.get('runs')}",
    )
    # Satellite contract: errors are stamped and counted like successes.
    status, _, headers = _request("GET", base + "/v1/no-such-route")
    _expect(
        status == 404 and headers.get("X-Repro-Elapsed-Ms") is not None,
        "404 response not stamped with X-Repro-Elapsed-Ms",
    )
    _, snapshot, _ = _request("GET", base + "/v1/metrics")
    other = snapshot.get("requests", {}).get("GET <other>", {})
    _expect(
        other.get("by_status", {}).get("404", 0) >= 1,
        f"404 not accounted under GET <other>: {other}",
    )
    return {"prometheus_samples": len(samples)}


def smoke_check(*, clients: int = 6) -> dict[str, Any]:
    """Start a live service on an ephemeral port and check every contract.

    Runs in a temporary data directory; the server is shut down (and
    the executor's fault-hook seam restored) no matter what.  Returns
    a JSON-safe summary; raises :class:`~repro.errors.ServiceError` on
    any breach.
    """
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as data_dir:
        service = ReproService(data_dir)
        server = make_server(service)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-smoke",
            daemon=True,
        )
        thread.start()
        try:
            idempotency = _check_idempotent_concurrency(
                service, base, clients=clients
            )
            _check_hygiene(base)
            streaming = _check_streaming_job(base)
            observability = _check_observability(base, clients=clients)
            prometheus = _check_prometheus(base)
        finally:
            server.shutdown()
            server.server_close()
    return {
        "address": base,
        **idempotency,
        **streaming,
        **observability,
        **prometheus,
        "hygiene": "400s strict, poison captured, health/registry live",
    }
