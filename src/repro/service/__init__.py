"""repro.service — an idempotent HTTP front door over the executor.

The serving tier of the stack: spec fingerprints become **idempotency
keys**, so identical requests cost one solve no matter how many
clients send them — concurrent duplicates coalesce onto the single
in-flight execution, later duplicates replay from the disk cache — and
batches become **streaming sharded jobs** identified by their plan
fingerprint, executed through :mod:`repro.cluster` with failures
captured per spec.

Zero dependencies: the transport is :class:`http.server.
ThreadingHTTPServer`, the client needs nothing beyond ``urllib`` (see
``examples/service_client.py``).  Start one with::

    python -m repro serve --port 8000 --data-dir service-data

or in-process::

    from repro.service import ReproService, make_server

    service = ReproService("service-data")
    server = make_server(service, port=0)   # ephemeral port
    server.serve_forever()

Endpoints: ``POST /v1/run``, ``POST /v1/jobs``, ``GET /v1/jobs/<id>``,
``GET /v1/jobs/<id>/stream`` (NDJSON, batch order, exactly once),
``GET /v1/registry``, ``GET /v1/healthz`` — full contract in
:mod:`repro.service.http`.  ``python -m repro serve --smoke`` checks
the live contracts end-to-end (a CI step); see
:mod:`repro.service.smoke`.
"""

from repro.service.app import (
    CACHE_SUBDIR,
    JOBS_SUBDIR,
    Job,
    ReproService,
    registry_payload,
)
from repro.service.http import ServiceHandler, make_server
from repro.service.smoke import smoke_check

__all__ = [
    "CACHE_SUBDIR",
    "JOBS_SUBDIR",
    "Job",
    "ReproService",
    "ServiceHandler",
    "make_server",
    "registry_payload",
    "smoke_check",
]
