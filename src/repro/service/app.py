"""Service core: idempotent single runs and the streaming job registry.

:class:`ReproService` is the transport-free heart of the HTTP front
door (:mod:`repro.service.http` merely routes to it): it owns the
service's disk state (a result cache for single runs, a job directory
per submitted batch) and enforces the two idempotency disciplines the
service is built around —

**Single runs coalesce on the spec fingerprint.**  ``run_one`` keys
every request by ``spec.fingerprint()`` (the same SHA-256 identity the
executor caches under).  A fingerprint already on disk is a cache hit;
a fingerprint currently *executing* is an in-flight hit: the first
request becomes the **leader** and actually solves, every concurrent
identical request becomes a **follower** that blocks on the leader's
:class:`threading.Event` and receives an independent deep copy of the
same result.  A million identical POSTs cost one solve.

**Jobs are identified by their plan fingerprint.**  ``submit_job``
plans the batch with :func:`repro.cluster.planner.plan_shards` and
uses the plan fingerprint as the job id, so resubmitting the same
batch (same specs, same order, same shard count) returns the *same*
job — running, done, or restartable — instead of minting a duplicate.
Jobs execute on a background thread through
:func:`repro.cluster.coordinator.run_sharded_iter` with
``on_error="capture"``: results are buffered per batch index as shards
seal, which is what lets the ``/stream`` endpoint emit each result
exactly once, in batch order, while the job still runs.  Poison specs
surface as :class:`~repro.results.FailedResult` records in their
slots, never as HTTP 500s.

Everything is stdlib; the service adds no dependencies to the library.
"""

from __future__ import annotations

import copy
import threading
import time
from pathlib import Path
from typing import Any, Sequence

from repro.api.diskcache import disk_path
from repro.api.runner import run
from repro.api.spec import RunSpec
from repro.cluster.coordinator import job_status, run_sharded_iter
from repro.cluster.planner import plan_shards
from repro.errors import ClusterError
from repro.results import RunResult
from repro.telemetry.ledger import record_run
from repro.telemetry.metrics import MetricsRegistry

#: Subdirectory of the service data dir holding the single-run cache.
CACHE_SUBDIR = "cache"

#: Subdirectory holding one cluster job directory per submitted batch.
JOBS_SUBDIR = "jobs"

#: Subdirectory holding the service's run ledger (single runs; each
#: job keeps its own ledger under ``jobs/<id>/ledger/``).
LEDGER_SUBDIR = "ledger"


class _InFlight:
    """One in-progress single-run execution other requests can join."""

    __slots__ = ("event", "result", "error", "waiters")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: RunResult | None = None
        self.error: BaseException | None = None
        self.waiters = 0


class Job:
    """One submitted batch: its spec list and per-index result slots.

    ``slots[i]`` is ``None`` until spec ``i``'s result arrives from the
    streaming executor, then its JSON-safe ``to_dict()`` payload — the
    service stores serialized results so every streamed or re-streamed
    copy is byte-identical.  All mutation happens under ``cond``;
    :meth:`wait_slot` is how stream readers block for the next index.
    """

    def __init__(
        self,
        job_id: str,
        specs: Sequence[RunSpec],
        *,
        shards: int,
        local_workers: int,
        job_dir: Path,
    ) -> None:
        self.id = job_id
        self.specs = list(specs)
        self.shards = shards
        self.local_workers = local_workers
        self.job_dir = job_dir
        self.slots: list[dict[str, Any] | None] = [None] * len(self.specs)
        self.done = 0
        self.state = "running"
        self.error: str | None = None
        self.created_at = time.time()
        self.cond = threading.Condition()

    def record(self, index: int, payload: dict[str, Any]) -> None:
        """Store spec ``index``'s serialized result; wake stream readers."""
        with self.cond:
            if self.slots[index] is None:
                self.done += 1
            self.slots[index] = payload
            self.cond.notify_all()

    def finish(self, error: str | None = None) -> None:
        """Mark the job done (or failed, with a human-readable reason)."""
        with self.cond:
            self.state = "done" if error is None else "failed"
            self.error = error
            self.cond.notify_all()

    def wait_slot(self, index: int) -> dict[str, Any] | None:
        """Block until spec ``index`` has a result (or the job fails).

        Returns the serialized result, or ``None`` if the job reached a
        terminal state without ever producing this slot (driver crash —
        captured per-spec failures still fill their slots normally).
        """
        with self.cond:
            while self.slots[index] is None and self.state == "running":
                self.cond.wait()
            return self.slots[index]

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe progress summary (the ``GET /v1/jobs/<id>`` body)."""
        with self.cond:
            return {
                "job": self.id,
                "state": self.state,
                "error": self.error,
                "done": self.done,
                "total": len(self.specs),
                "shards": self.shards,
                "local_workers": self.local_workers,
                "events_url": f"/v1/jobs/{self.id}/events",
            }


class ReproService:
    """The transport-free service: coalesced runs + streaming jobs.

    Parameters
    ----------
    data_dir:
        Root of the service's disk state: single-run results cache
        under ``cache/``, one cluster job directory per batch under
        ``jobs/<plan-fingerprint>/``.
    validate:
        Independently re-validate every produced coloring (as the
        executor's ``validate=``).
    cache_max_entries:
        LRU budget for the single-run cache (``None`` = unbounded).
    max_local_workers:
        Upper bound on worker subprocesses a job request may ask for.
    default_shards:
        Shard count for jobs that do not specify one (``"auto"`` sizes
        to CPU count and batch length).
    """

    def __init__(
        self,
        data_dir: str | Path,
        *,
        validate: bool = True,
        cache_max_entries: int | None = None,
        max_local_workers: int = 2,
        default_shards: int | str = "auto",
    ) -> None:
        self.data_dir = Path(data_dir)
        self.cache_dir = self.data_dir / CACHE_SUBDIR
        self.jobs_dir = self.data_dir / JOBS_SUBDIR
        self.ledger_dir = self.data_dir / LEDGER_SUBDIR
        self.validate = validate
        self.cache_max_entries = cache_max_entries
        self.max_local_workers = max_local_workers
        self.default_shards = default_shards
        self.started_at = time.time()
        self.metrics = MetricsRegistry()
        self._inflight: dict[str, _InFlight] = {}
        self._inflight_lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()

    # -- single runs ----------------------------------------------------

    def run_one(self, spec: RunSpec) -> tuple[str, RunResult, str]:
        """Execute (or join, or replay) one spec; returns
        ``(fingerprint, result, source)``.

        ``source`` says where the bytes came from: ``"executed"`` (this
        request was the leader and solved), ``"cache"`` (replayed from
        the disk cache), or ``"coalesced"`` (joined a concurrent
        identical request and received a copy of its result).  Captured
        failures come back as :class:`~repro.results.FailedResult`
        objects through the same three paths — a failure is an answer,
        not a transport error.
        """
        fingerprint = spec.fingerprint()
        with self._inflight_lock:
            entry = self._inflight.get(fingerprint)
            if entry is not None:
                entry.waiters += 1
                leader = False
            else:
                entry = _InFlight()
                self._inflight[fingerprint] = entry
                leader = True
        if not leader:
            entry.event.wait()
            if entry.error is not None:
                raise entry.error
            assert entry.result is not None
            result = copy.deepcopy(entry.result)
            # Followers never reach the executor, so the executor's
            # ledger records nothing for them — the service writes the
            # "coalesced" disposition itself (observational, like every
            # ledger record).
            record_run(
                self.ledger_dir,
                spec=spec,
                fingerprint=fingerprint,
                disposition="coalesced",
                result=result,
                attempts=0,
            )
            self._observe_run("coalesced", result)
            return fingerprint, result, "coalesced"
        cached = disk_path(self.cache_dir, fingerprint).exists()
        try:
            result = run(
                spec,
                validate=self.validate,
                cache=False,  # the process-global memo would bypass LRU
                cache_dir=self.cache_dir,
                cache_max_entries=self.cache_max_entries,
                on_error="capture",
                ledger_dir=self.ledger_dir,
                _fingerprint=fingerprint,
            )
            entry.result = result
        except BaseException as exc:
            entry.error = exc
            raise
        finally:
            with self._inflight_lock:
                self._inflight.pop(fingerprint, None)
            entry.event.set()
        source = "cache" if cached else "executed"
        self._observe_run(source, result)
        return fingerprint, result, source

    def _observe_run(self, source: str, result: RunResult) -> None:
        self.metrics.observe_run(source)
        if result.is_failure():
            self.metrics.observe_run("failed")

    def inflight_waiters(self, fingerprint: str) -> int:
        """Followers currently blocked on this fingerprint's leader.

        Observability for tests and the smoke: a leader's fault hook
        can hold the solve open until the expected crowd has gathered,
        making the exactly-one-execution assertion deterministic.
        """
        with self._inflight_lock:
            entry = self._inflight.get(fingerprint)
            return entry.waiters if entry is not None else 0

    # -- jobs -------------------------------------------------------------

    def submit_job(
        self,
        specs: Sequence[RunSpec],
        *,
        shards: int | str | None = None,
        local_workers: int = 0,
    ) -> tuple[Job, bool]:
        """Submit a batch; returns ``(job, created)``.

        Idempotent by content: the job id is the batch's plan
        fingerprint, so an identical resubmission returns the existing
        job (``created=False``) whether it is still running or already
        done.  A job that previously *failed* (driver crash, not
        captured per-spec failures) is restarted in place — the job
        directory resumes from its sealed shards.
        """
        if shards is None:
            shards = self.default_shards
        local_workers = max(0, min(int(local_workers), self.max_local_workers))
        plan = plan_shards(specs, shards=shards)
        job_id = plan.plan_fingerprint()
        with self._jobs_lock:
            existing = self._jobs.get(job_id)
            if existing is not None and existing.state != "failed":
                self.metrics.observe_job(created=False)
                return existing, False
            job = Job(
                job_id,
                plan.specs,
                shards=plan.shards,
                local_workers=local_workers,
                job_dir=self.jobs_dir / job_id,
            )
            self._jobs[job_id] = job
        thread = threading.Thread(
            target=self._drive_job,
            args=(job,),
            name=f"repro-job-{job_id[:12]}",
            daemon=True,
        )
        thread.start()
        created = existing is None
        self.metrics.observe_job(created=created)
        return job, created

    def _drive_job(self, job: Job) -> None:
        """Background driver: stream the sharded run into the slots."""
        try:
            for index, result in run_sharded_iter(
                job.specs,
                job.job_dir,
                shards=job.shards,
                local_workers=job.local_workers,
                validate=self.validate,
                on_error="capture",
            ):
                job.record(index, result.to_dict())
            job.finish()
        except BaseException as exc:  # surfaced via job state, never lost
            job.finish(error=f"{type(exc).__name__}: {exc}")

    def get_job(self, job_id: str) -> Job | None:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def job_snapshot(self, job: Job) -> dict[str, Any]:
        """The job's progress plus the cluster's own view of its directory.

        ``cluster`` carries per-shard state, per-shard timing, dead
        letters, and worker events straight from
        :func:`repro.cluster.coordinator.job_status`; it is absent in
        the narrow window before the driver thread has planned the
        directory.
        """
        snapshot = job.snapshot()
        try:
            snapshot["cluster"] = job_status(job.job_dir)
        except ClusterError:
            pass
        return snapshot

    # -- health -----------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """The ``GET /v1/healthz`` body: liveness plus the real load.

        Every figure is measured, sourced from the same places the
        metrics endpoint reads: uptime from the metrics registry's
        start stamp, ``active_requests`` from its in-handler gauge
        (includes this very request), ``inflight_runs`` from the
        coalescing table, per-state job counts from the registry of
        live jobs, and the lifetime request total.
        """
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        with self._inflight_lock:
            inflight = len(self._inflight)
        states: dict[str, int] = {}
        for job in jobs:
            snapshot = job.snapshot()
            states[snapshot["state"]] = states.get(snapshot["state"], 0) + 1
        return {
            "ok": True,
            "uptime_s": round(self.metrics.uptime_s(), 3),
            "active_requests": self.metrics.active_requests(),
            "requests_total": self.metrics.requests_total(),
            "inflight_runs": inflight,
            "jobs": {"total": len(jobs), **states},
        }


def registry_payload() -> dict[str, Any]:
    """The ``GET /v1/registry`` body: what this service can execute.

    The same registries the CLI's ``list --json --scenarios`` prints —
    instance families, algorithms, parameter policies, execution
    models — so a client can construct valid specs without a checkout.
    """
    from repro.api import algorithm_registry
    from repro.core.params import named_policies
    from repro.graphs.families import family_registry
    from repro.scenarios import scenario_capable, scenario_registry

    return {
        "families": {
            name: {
                "size_meaning": family.size_meaning,
                "description": family.description,
            }
            for name, family in sorted(family_registry().items())
        },
        "algorithms": {
            name: {
                "kind": info.kind,
                "label": info.label,
                "description": info.description,
            }
            for name, info in algorithm_registry().items()
        },
        "policies": sorted(named_policies()),
        "scenarios": {
            name: {
                "identity": model.identity,
                "description": model.description,
                "params": dict(model.param_docs),
            }
            for name, model in scenario_registry().items()
        },
        "scenario_capable_algorithms": scenario_capable(),
    }
