"""(Δ+1)-vertex coloring algorithms on the shared substrate.

All of these operate on the *node* conflict graph directly (the
primitives are generic over adjacency mappings), report LOCAL rounds
under the same accounting rules as the edge algorithms, and validate
their own outputs before returning.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx

from repro.errors import AlgorithmInvariantError, RoundLimitExceededError
from repro.graphs.properties import assign_unique_ids, max_degree, validate_simple_graph
from repro.primitives.color_reduction import kuhn_wattenhofer_reduction
from repro.primitives.linial import linial_reduce
from repro.vertexcoloring.verify import check_proper_vertex_coloring


@dataclass
class VertexColoringResult:
    """Outcome of a vertex coloring run.

    Attributes
    ----------
    name:
        Algorithm name.
    coloring:
        Node -> color in ``{0, ..., palette_size - 1}``.
    palette_size:
        The promised palette bound (``Δ + 1`` unless noted).
    rounds:
        LOCAL rounds under the library's accounting rules.
    details:
        Algorithm-specific observables.
    """

    name: str
    coloring: dict[Hashable, int]
    palette_size: int
    rounds: int
    details: dict[str, object] = field(default_factory=dict)


def _node_adjacency(graph: nx.Graph) -> dict[Hashable, list[Hashable]]:
    return {
        node: sorted(graph.neighbors(node), key=repr) for node in graph.nodes()
    }


def greedy_sequential_vertex_coloring(
    graph: nx.Graph, *, seed: int | None = None
) -> VertexColoringResult:
    """Centralized greedy (Δ+1)-vertex coloring (correctness reference).

    ``seed`` is accepted for interface uniformity and ignored.
    """
    validate_simple_graph(graph)
    delta = max_degree(graph)
    coloring: dict[Hashable, int] = {}
    for node in sorted(graph.nodes(), key=repr):
        used = {coloring[n] for n in graph.neighbors(node) if n in coloring}
        for candidate in range(delta + 1):
            if candidate not in used:
                coloring[node] = candidate
                break
        else:  # pragma: no cover — Δ+1 always suffices
            raise AlgorithmInvariantError(f"no color for node {node!r}")
    check_proper_vertex_coloring(graph, coloring, palette_size=delta + 1)
    return VertexColoringResult(
        name="greedy_sequential",
        coloring=coloring,
        palette_size=delta + 1,
        rounds=graph.number_of_nodes(),
        details={"note": "centralized reference; rounds = nodes scanned"},
    )


def linial_greedy_vertex_coloring(
    graph: nx.Graph, *, seed: int | None = None
) -> VertexColoringResult:
    """``O(Δ² + log* n)``: Linial classes + one-round-per-class greedy."""
    validate_simple_graph(graph)
    delta = max_degree(graph)
    adjacency = _node_adjacency(graph)
    if not adjacency:
        return VertexColoringResult(
            name="linial_greedy", coloring={}, palette_size=1, rounds=0
        )
    ids = assign_unique_ids(graph, seed=seed)
    linial = linial_reduce(adjacency, ids)
    coloring: dict[Hashable, int] = {}
    by_class: dict[int, list[Hashable]] = {}
    for node, class_value in linial.colors.items():
        by_class.setdefault(class_value, []).append(node)
    for class_value in range(linial.palette_size):
        for node in by_class.get(class_value, []):
            used = {
                coloring[n] for n in adjacency[node] if n in coloring
            }
            for candidate in range(delta + 1):
                if candidate not in used:
                    coloring[node] = candidate
                    break
            else:  # pragma: no cover
                raise AlgorithmInvariantError(f"no color for {node!r}")
    check_proper_vertex_coloring(graph, coloring, palette_size=delta + 1)
    return VertexColoringResult(
        name="linial_greedy",
        coloring=coloring,
        palette_size=delta + 1,
        rounds=linial.rounds + linial.palette_size,
        details={
            "linial_rounds": linial.rounds,
            "class_palette": linial.palette_size,
        },
    )


def kw_vertex_coloring(
    graph: nx.Graph, *, seed: int | None = None
) -> VertexColoringResult:
    """``O(Δ log Δ + log* n)``: Linial + Kuhn-Wattenhofer to Δ+1 colors.

    Unlike the greedy sweep this produces the ``(Δ+1)``-coloring
    *directly* as the reduction's output — the [SV93, KW06] algorithm.
    """
    validate_simple_graph(graph)
    delta = max_degree(graph)
    adjacency = _node_adjacency(graph)
    if not adjacency:
        return VertexColoringResult(
            name="kuhn_wattenhofer", coloring={}, palette_size=1, rounds=0
        )
    ids = assign_unique_ids(graph, seed=seed)
    linial = linial_reduce(adjacency, ids)
    colors, rounds = linial.colors, linial.rounds
    if linial.palette_size > delta + 1:
        reduction = kuhn_wattenhofer_reduction(adjacency, colors)
        colors = reduction.colors
        rounds += reduction.rounds
    check_proper_vertex_coloring(graph, colors, palette_size=delta + 1)
    return VertexColoringResult(
        name="kuhn_wattenhofer",
        coloring=dict(colors),
        palette_size=delta + 1,
        rounds=rounds,
        details={"linial_rounds": linial.rounds},
    )


def randomized_vertex_coloring(
    graph: nx.Graph,
    *,
    seed: int | None = None,
    max_rounds: int = 10_000,
) -> VertexColoringResult:
    """``O(log n)`` w.h.p.: each round, uncolored nodes try a random
    free color and keep it if no uncolored neighbor picked the same."""
    validate_simple_graph(graph)
    rng = random.Random(0 if seed is None else seed)
    delta = max_degree(graph)
    adjacency = _node_adjacency(graph)
    coloring: dict[Hashable, int] = {}
    rounds = 0
    pending = sorted(adjacency, key=repr)
    while pending:
        if rounds >= max_rounds:
            raise RoundLimitExceededError(
                f"randomized vertex coloring exceeded {max_rounds} rounds"
            )
        rounds += 1
        proposals: dict[Hashable, int] = {}
        for node in pending:
            used = {coloring[n] for n in adjacency[node] if n in coloring}
            free = [c for c in range(delta + 1) if c not in used]
            proposals[node] = rng.choice(free)
        survivors = []
        for node in pending:
            clash = any(
                proposals.get(n) == proposals[node]
                for n in adjacency[node]
                if n not in coloring
            )
            if clash:
                survivors.append(node)
            else:
                coloring[node] = proposals[node]
        pending = survivors
    check_proper_vertex_coloring(graph, coloring, palette_size=delta + 1)
    return VertexColoringResult(
        name="randomized",
        coloring=coloring,
        palette_size=delta + 1,
        rounds=rounds,
        details={"seed": seed},
    )


def edge_coloring_via_vertex_coloring(
    graph: nx.Graph, *, seed: int | None = None
) -> dict:
    """The paper's stated reduction: edge coloring = vertex coloring of
    the line graph.

    Runs :func:`kw_vertex_coloring` on ``L(G)`` and returns an edge
    coloring with at most ``Δ(L(G)) + 1 <= 2Δ - 1`` colors (1-based, to
    match the edge-coloring convention).
    """
    from repro.coloring.verify import check_palette_bound, check_proper_edge_coloring
    from repro.graphs.line_graph import line_graph

    validate_simple_graph(graph)
    if graph.number_of_edges() == 0:
        return {}
    lg = line_graph(graph)
    result = kw_vertex_coloring(lg, seed=seed)
    edge_coloring = {edge: color + 1 for edge, color in result.coloring.items()}
    delta = max_degree(graph)
    check_proper_edge_coloring(graph, edge_coloring)
    check_palette_bound(edge_coloring, max(1, 2 * delta - 1))
    return edge_coloring
