"""Distributed (Δ+1)-vertex coloring — the paper's framing problem.

The paper situates edge coloring inside the broader distributed
coloring landscape: "the (2Δ−1)-edge coloring problem is a special
case of the (Δ+1)-vertex coloring problem" (coloring the line graph).
This package provides that landscape on the same substrate, with the
same validation discipline:

* :func:`greedy_sequential_vertex_coloring` — centralized reference;
* :func:`linial_greedy_vertex_coloring` — Linial to ``O(Δ²)`` classes,
  then a greedy class sweep: ``O(Δ² + log* n)`` [Lin87];
* :func:`kw_vertex_coloring` — Linial + Kuhn-Wattenhofer reduction to
  ``Δ+1`` colors directly: ``O(Δ log Δ + log* n)`` [SV93, KW06];
* :func:`randomized_vertex_coloring` — random trials, ``O(log n)``
  w.h.p. [ABI86/Lub86-style];
* :func:`edge_coloring_via_vertex_coloring` — the reduction the paper
  states: run a vertex coloring algorithm on the line graph and read
  off a ``(2Δ−1)``-edge coloring (``Δ(L(G)) + 1 <= 2Δ − 1``).

The primitives (:mod:`repro.primitives.linial`,
:mod:`repro.primitives.color_reduction`) are written over abstract
conflict graphs, so these algorithms are thin, well-tested assemblies
rather than re-implementations.
"""

from repro.vertexcoloring.algorithms import (
    VertexColoringResult,
    edge_coloring_via_vertex_coloring,
    greedy_sequential_vertex_coloring,
    kw_vertex_coloring,
    linial_greedy_vertex_coloring,
    randomized_vertex_coloring,
)
from repro.vertexcoloring.verify import check_proper_vertex_coloring

__all__ = [
    "VertexColoringResult",
    "edge_coloring_via_vertex_coloring",
    "greedy_sequential_vertex_coloring",
    "kw_vertex_coloring",
    "linial_greedy_vertex_coloring",
    "randomized_vertex_coloring",
    "check_proper_vertex_coloring",
]
