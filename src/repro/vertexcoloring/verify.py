"""Independent validation of vertex colorings.

Mirrors :mod:`repro.coloring.verify` for the vertex problem: nothing
is trusted, everything re-derived from the graph.
"""

from __future__ import annotations

from typing import Hashable, Mapping

import networkx as nx

from repro.errors import ColoringValidationError


def check_proper_vertex_coloring(
    graph: nx.Graph,
    coloring: Mapping[Hashable, int],
    *,
    palette_size: int | None = None,
) -> None:
    """Raise unless ``coloring`` properly colors all nodes of ``graph``.

    Parameters
    ----------
    graph:
        Host graph.
    coloring:
        Node -> color; must cover every node.
    palette_size:
        When given, colors must lie in ``{0, ..., palette_size - 1}``
        (vertex palettes in this package are 0-based).
    """
    missing = [node for node in graph.nodes() if node not in coloring]
    if missing:
        raise ColoringValidationError(
            f"{len(missing)} nodes are uncolored, e.g. {missing[:3]!r}"
        )
    foreign = [node for node in coloring if node not in graph]
    if foreign:
        raise ColoringValidationError(
            f"colored nodes not in the graph, e.g. {foreign[:3]!r}"
        )
    for u, v in graph.edges():
        if coloring[u] == coloring[v]:
            raise ColoringValidationError(
                f"adjacent nodes {u!r} and {v!r} share color {coloring[u]}"
            )
    if palette_size is not None:
        for node, color in coloring.items():
            if not 0 <= color < palette_size:
                raise ColoringValidationError(
                    f"node {node!r} uses color {color} outside "
                    f"[0, {palette_size})"
                )
