"""Plain-text rendering of experiment tables and series.

The benchmark harness prints the same rows/series the paper's claims
describe; these helpers keep the formatting consistent between
benchmark stdout and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    >>> print(format_table(["a", "b"], [[1, 22], [333, 4]]))
      a |  b
    ----+---
      1 | 22
    333 |  4
    """
    cells = [[str(h) for h in headers]] + [
        [_format_cell(value) for value in row] for row in rows
    ]
    widths = [
        max(len(cells[r][c]) for r in range(len(cells)))
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.rjust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render several aligned series against a common x-axis."""
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][index] for name in series]
        for index, x in enumerate(xs)
    ]
    return format_table(headers, rows, title=title)


def format_ratio_row(name: str, paper: str, measured: object) -> str:
    """One EXPERIMENTS.md-style 'paper vs measured' line."""
    return f"- **{name}** — paper: {paper}; measured: {_format_cell(measured)}"
