"""Analysis: recurrence evaluation, experiment harness, table rendering.

The paper's "results" are round-complexity formulas.  This package
makes them executable:

* :mod:`repro.analysis.theory` — evaluators for the paper's
  recurrences (Lemma 4.2, Lemma 4.3, Lemma 4.5, Theorem 4.1) and for
  the baselines' closed forms, so benchmarks can plot *predicted*
  curves next to measured ones and exhibit the asymptotic crossovers
  that finite-scale simulation cannot reach;
* :mod:`repro.analysis.harness` — sweep runners producing structured
  rows (one experiment = one table);
* :mod:`repro.analysis.tables` — plain-text table/series rendering for
  benchmark output and EXPERIMENTS.md.
"""

from repro.analysis.theory import (
    TheoryModel,
    predicted_balliu_kuhn_olivetti,
    predicted_kuhn_soda20,
    predicted_linial_greedy,
    predicted_kuhn_wattenhofer,
    predicted_randomized,
    crossover_point,
)
from repro.analysis.harness import (
    ExperimentRow,
    SweepResult,
    run_race_sweep,
    run_scaling_sweep,
)
from repro.analysis.tables import format_series, format_table

__all__ = [
    "TheoryModel",
    "predicted_balliu_kuhn_olivetti",
    "predicted_kuhn_soda20",
    "predicted_linial_greedy",
    "predicted_kuhn_wattenhofer",
    "predicted_randomized",
    "crossover_point",
    "ExperimentRow",
    "SweepResult",
    "run_race_sweep",
    "run_scaling_sweep",
    "format_series",
    "format_table",
]
