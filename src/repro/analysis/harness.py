"""Experiment harness: parameter sweeps producing structured rows.

One experiment = one sweep = one printed table.  The benchmark modules
under ``benchmarks/`` are thin wrappers around these runners so the
same sweeps are scriptable outside pytest (the examples use them too).

Sweeps can capture timing: :func:`run_scaling_sweep` times an arbitrary
per-cell workload (wall-clock, rounds/sec, messages/sec), and
:func:`run_race_sweep` optionally records wall-clock per cell — the
repo's perf trajectory (``BENCH_scheduler.json``, written by
``python -m repro bench-core``) is built on these.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import networkx as nx

from repro.baselines.registry import BaselineResult, all_baselines
from repro.coloring.verify import check_palette_bound, check_proper_edge_coloring
from repro.core.params import ParameterPolicy
from repro.core.solver import solve_edge_coloring
from repro.graphs.properties import graph_summary


@dataclass
class ExperimentRow:
    """One row of an experiment table."""

    x: object
    values: dict[str, object] = field(default_factory=dict)


@dataclass
class SweepResult:
    """A finished sweep: ordered rows plus the series names."""

    x_label: str
    rows: list[ExperimentRow]

    def series_names(self) -> list[str]:
        names: list[str] = []
        for row in self.rows:
            for name in row.values:
                if name not in names:
                    names.append(name)
        return names

    def series(self, name: str) -> list[object]:
        return [row.values.get(name) for row in self.rows]

    def xs(self) -> list[object]:
        return [row.x for row in self.rows]


def time_best(
    thunk: Callable[[], object], repeats: int = 1
) -> tuple[float, object]:
    """Run ``thunk`` ``repeats`` times; return (best wall-clock, outcome).

    Best-of-N is the standard noise-robust wall-clock estimator.  The
    outcome is the last run's return value (all runs are assumed
    equivalent).
    """
    best = math.inf
    outcome: object = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        outcome = thunk()
        best = min(best, time.perf_counter() - start)
    return best, outcome


def throughput_columns(outcome: object, wall_clock: float) -> dict[str, object]:
    """Derive the standard timing columns for one measured workload.

    Always includes ``wall_clock_s``; outcomes exposing integer
    ``rounds`` / ``messages_sent`` (e.g.
    :class:`~repro.model.scheduler.ExecutionResult`) additionally get
    ``rounds``/``rounds_per_s`` and ``messages_sent``/``messages_per_s``.
    """
    safe = max(wall_clock, 1e-9)
    columns: dict[str, object] = {"wall_clock_s": wall_clock}
    rounds = getattr(outcome, "rounds", None)
    if isinstance(rounds, int):
        columns["rounds"] = rounds
        columns["rounds_per_s"] = rounds / safe
    messages = getattr(outcome, "messages_sent", None)
    if isinstance(messages, int):
        columns["messages_sent"] = messages
        columns["messages_per_s"] = messages / safe
    return columns


def run_scaling_sweep(
    cells: Iterable[tuple[object, Callable[[], object]]],
    *,
    x_label: str = "n",
    repeats: int = 1,
) -> SweepResult:
    """Time a workload per cell; report wall-clock and throughput.

    Parameters
    ----------
    cells:
        Iterable of ``(x_value, thunk)`` pairs.  Each thunk runs one
        cell's workload and may return anything; results exposing
        ``rounds`` / ``messages_sent`` (e.g.
        :class:`~repro.model.scheduler.ExecutionResult`) additionally
        get ``rounds_per_s`` / ``messages_per_s`` columns, and mapping
        results are merged into the row verbatim.
    x_label:
        Label of the swept parameter (``n``, ``Δ``, ...).
    repeats:
        Run each thunk this many times and keep the *minimum*
        wall-clock (the standard noise-robust estimator).

    Returns
    -------
    SweepResult
        One row per cell with at least a ``wall_clock_s`` column.
    """
    rows: list[ExperimentRow] = []
    for x_value, thunk in cells:
        best, outcome = time_best(thunk, repeats)
        row = ExperimentRow(x=x_value)
        row.values.update(throughput_columns(outcome, best))
        if isinstance(outcome, Mapping):
            row.values.update(outcome)
        rows.append(row)
    return SweepResult(x_label=x_label, rows=rows)


def run_race_sweep(
    graphs: Iterable[tuple[object, nx.Graph]],
    *,
    algorithms: Sequence[str] | None = None,
    paper_policy: ParameterPolicy | None = None,
    seed: int = 2,
    validate: bool = True,
    capture_timing: bool = False,
) -> SweepResult:
    """Run every algorithm on every graph; report rounds per cell.

    Parameters
    ----------
    graphs:
        Iterable of ``(x_value, graph)`` pairs, e.g. a Δ sweep.
    algorithms:
        Baseline names to include (default: all registered).
    paper_policy:
        Policy for the paper's algorithm column (default policy of
        :func:`repro.core.solver.solve_edge_coloring` when ``None``).
    seed:
        ID-assignment seed shared by all runs.
    validate:
        Re-check every produced coloring (on by default; the whole
        point of the harness is that results are verified).
    capture_timing:
        Record wall-clock seconds per cell (all algorithms of the
        cell, excluding validation) in a ``wall_clock_s`` column.
    """
    registry = all_baselines()
    names = list(algorithms) if algorithms is not None else sorted(registry)
    rows: list[ExperimentRow] = []
    for x_value, graph in graphs:
        summary = graph_summary(graph)
        row = ExperimentRow(x=x_value)
        row.values["n"] = summary.nodes
        row.values["Δ̄"] = summary.max_edge_degree
        cell_clock = 0.0
        start = time.perf_counter()
        paper_result = solve_edge_coloring(graph, policy=paper_policy, seed=seed)
        cell_clock += time.perf_counter() - start
        if validate:
            check_proper_edge_coloring(graph, paper_result.coloring)
            check_palette_bound(
                paper_result.coloring, summary.greedy_palette_size
            )
        row.values["BKO20 (this paper)"] = paper_result.rounds
        for name in names:
            start = time.perf_counter()
            result: BaselineResult = registry[name](graph, seed=seed)
            cell_clock += time.perf_counter() - start
            if validate:
                check_proper_edge_coloring(graph, result.coloring)
                check_palette_bound(result.coloring, result.palette_size)
            row.values[name] = result.rounds
        if capture_timing:
            row.values["wall_clock_s"] = cell_clock
        rows.append(row)
    return SweepResult(x_label="x", rows=rows)


def run_policy_sweep(
    graph: nx.Graph,
    policies: Sequence[ParameterPolicy],
    *,
    seed: int = 2,
) -> SweepResult:
    """Run the paper's solver under several policies on one graph.

    Used by the ablation benchmarks (β and p choices).
    """
    rows: list[ExperimentRow] = []
    for policy in policies:
        result = solve_edge_coloring(graph, policy=policy, seed=seed)
        check_proper_edge_coloring(graph, result.coloring)
        row = ExperimentRow(x=policy.name)
        row.values["rounds"] = result.rounds
        row.values["relaxed invocations"] = result.stats.get(
            "relaxed_invocations", 0
        )
        row.values["lem43 reductions"] = result.stats.get("lem43/reductions", 0)
        row.values["max depth"] = result.stats.get("max_depth_seen", 0)
        row.values["deferred"] = result.stats.get("deferred_edges", 0)
        rows.append(row)
    return SweepResult(x_label="policy", rows=rows)
