"""Experiment harness: parameter sweeps producing structured rows.

One experiment = one sweep = one printed table.  The benchmark modules
under ``benchmarks/`` are thin wrappers around these runners so the
same sweeps are scriptable outside pytest (the examples use them too).

Sweeps can capture timing: :func:`run_scaling_sweep` times an arbitrary
per-cell workload (wall-clock, rounds/sec, messages/sec), and
:func:`run_race_sweep` optionally records wall-clock per cell — the
repo's perf trajectory (``BENCH_scheduler.json``, written by
``python -m repro bench-core``) is built on these.  Batched sweeps
share one :class:`~repro.model.scheduler.RoundArena` across cells, so
the columnar engine's flat buffers are allocated once per sweep rather
than once per cell.

Algorithms resolve through the unified registry
(:mod:`repro.api.registry`) — the paper solver and every baseline via
one interface — and spec-driven sweeps are first class:
:func:`run_spec_sweep` feeds :class:`repro.api.RunSpec` batches through
the fingerprinting batch executor (optionally in parallel),
:func:`run_scenario_sweep` does the same for adversarial
execution-model specs (:mod:`repro.scenarios`) and reports the
degradation observables per cell, and :func:`spec_cells` adapts specs
into :func:`run_scaling_sweep` cells.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import networkx as nx

from repro.api.registry import (
    PAPER_ALGORITHM,
    algorithm_registry,
    get_algorithm,
)
from repro.api.runner import run_many
from repro.api.spec import RunSpec
from repro.coloring.verify import check_palette_bound, check_proper_edge_coloring
from repro.core.params import ParameterPolicy
from repro.graphs.properties import graph_summary
from repro.model.scheduler import RoundArena, shared_arena
from repro.results import RunResult


@dataclass
class ExperimentRow:
    """One row of an experiment table."""

    x: object
    values: dict[str, object] = field(default_factory=dict)


@dataclass
class SweepResult:
    """A finished sweep: ordered rows plus the series names."""

    x_label: str
    rows: list[ExperimentRow]

    def series_names(self) -> list[str]:
        names: list[str] = []
        for row in self.rows:
            for name in row.values:
                if name not in names:
                    names.append(name)
        return names

    def series(self, name: str) -> list[object]:
        return [row.values.get(name) for row in self.rows]

    def xs(self) -> list[object]:
        return [row.x for row in self.rows]


def time_best(
    thunk: Callable[[], object], repeats: int = 1
) -> tuple[float, object]:
    """Run ``thunk`` ``repeats`` times; return (best wall-clock, outcome).

    Best-of-N is the standard noise-robust wall-clock estimator.  The
    outcome is the last run's return value (all runs are assumed
    equivalent).
    """
    best = math.inf
    outcome: object = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        outcome = thunk()
        best = min(best, time.perf_counter() - start)
    return best, outcome


def throughput_columns(outcome: object, wall_clock: float) -> dict[str, object]:
    """Derive the standard timing columns for one measured workload.

    Always includes ``wall_clock_s``; outcomes exposing integer
    ``rounds`` / ``messages_sent`` — as attributes (e.g.
    :class:`~repro.model.scheduler.ExecutionResult`) or as mapping keys
    — additionally get ``rounds``/``rounds_per_s`` and
    ``messages_sent``/``messages_per_s``.
    """
    safe = max(wall_clock, 1e-9)
    columns: dict[str, object] = {"wall_clock_s": wall_clock}
    rounds = getattr(outcome, "rounds", None)
    if rounds is None and isinstance(outcome, Mapping):
        rounds = outcome.get("rounds")
    if isinstance(rounds, int):
        columns["rounds"] = rounds
        columns["rounds_per_s"] = rounds / safe
    messages = getattr(outcome, "messages_sent", None)
    if messages is None and isinstance(outcome, Mapping):
        messages = outcome.get("messages_sent")
    if isinstance(messages, int):
        columns["messages_sent"] = messages
        columns["messages_per_s"] = messages / safe
    return columns


def run_scaling_sweep(
    cells: Iterable[tuple[object, Callable[[], object]]],
    *,
    x_label: str = "n",
    repeats: int = 1,
    arena: RoundArena | None = None,
) -> SweepResult:
    """Time a workload per cell; report wall-clock and throughput.

    The whole sweep executes under one shared
    :class:`~repro.model.scheduler.RoundArena`: every scheduler a cell
    constructs (directly or deep inside a solver) leases the same flat
    delivery buffers, so per-cell setup cost is context construction
    only — the arena is allocated once, grown to the largest cell, and
    cleared when the sweep finishes.

    Parameters
    ----------
    cells:
        Iterable of ``(x_value, thunk)`` pairs.  Each thunk runs one
        cell's workload and may return anything; results exposing
        ``rounds`` / ``messages_sent`` (e.g.
        :class:`~repro.model.scheduler.ExecutionResult`) additionally
        get ``rounds_per_s`` / ``messages_per_s`` columns, and mapping
        results are merged into the row verbatim.
    x_label:
        Label of the swept parameter (``n``, ``Δ``, ...).
    repeats:
        Run each thunk this many times and keep the *minimum*
        wall-clock (the standard noise-robust estimator).
    arena:
        Reuse this arena instead of a sweep-private one (for callers
        batching several sweeps back to back).
    """
    rows: list[ExperimentRow] = []
    with shared_arena(arena):
        for x_value, thunk in cells:
            best, outcome = time_best(thunk, repeats)
            row = ExperimentRow(x=x_value)
            row.values.update(throughput_columns(outcome, best))
            if isinstance(outcome, Mapping):
                row.values.update(outcome)
            rows.append(row)
    return SweepResult(x_label=x_label, rows=rows)


def run_race_sweep(
    graphs: Iterable[tuple[object, nx.Graph]],
    *,
    algorithms: Sequence[str] | None = None,
    paper_policy: ParameterPolicy | None = None,
    seed: int = 2,
    validate: bool = True,
    capture_timing: bool = False,
) -> SweepResult:
    """Run every algorithm on every graph; report rounds per cell.

    Parameters
    ----------
    graphs:
        Iterable of ``(x_value, graph)`` pairs, e.g. a Δ sweep.
    algorithms:
        Names from the unified registry (:mod:`repro.api.registry`) to
        include alongside the paper solver (default: every baseline).
        The paper solver always races as its own column; naming it
        here is allowed but adds nothing.
    paper_policy:
        Policy for the paper's algorithm column — a
        :class:`~repro.core.params.ParameterPolicy` or a registered
        policy name (default policy when ``None``).
    seed:
        ID-assignment seed shared by all runs.
    validate:
        Re-check every produced coloring (on by default; the whole
        point of the harness is that results are verified).
    capture_timing:
        Record wall-clock seconds per cell (all algorithms of the
        cell, excluding validation) in a ``wall_clock_s`` column.
    """
    registry = algorithm_registry()
    if algorithms is None:
        names = [n for n, a in sorted(registry.items()) if a.kind == "baseline"]
    else:
        names = [n for n in algorithms if n != PAPER_ALGORITHM]
    entries = [registry[PAPER_ALGORITHM]] + [get_algorithm(n) for n in names]
    rows: list[ExperimentRow] = []
    for x_value, graph in graphs:
        summary = graph_summary(graph)
        row = ExperimentRow(x=x_value)
        row.values["n"] = summary.nodes
        row.values["Δ̄"] = summary.max_edge_degree
        cell_clock = 0.0
        for entry in entries:
            policy = paper_policy if entry.kind == "paper" else None
            start = time.perf_counter()
            result: RunResult = entry.run(graph, seed=seed, policy=policy)
            cell_clock += time.perf_counter() - start
            if validate:
                check_proper_edge_coloring(graph, result.coloring)
                check_palette_bound(
                    result.coloring,
                    result.palette_size or summary.greedy_palette_size,
                )
            row.values[entry.label] = result.rounds
        if capture_timing:
            row.values["wall_clock_s"] = cell_clock
        rows.append(row)
    return SweepResult(x_label="x", rows=rows)


def run_spec_sweep(
    specs: Sequence[RunSpec],
    *,
    parallel: int = 1,
    validate: bool = True,
    x_label: str = "spec",
) -> SweepResult:
    """Run a batch of specs through the executor; one row per spec.

    The spec-driven sibling of :func:`run_race_sweep`: the instance /
    algorithm / policy tables live in the specs (serializable,
    fingerprinted), and ``parallel > 1`` fans the batch out over a
    process pool via :func:`repro.api.run_many` with identical
    results.  Serial batches run under one shared
    :class:`~repro.model.scheduler.RoundArena`, so every simulated
    cell reuses the same delivery buffers (workers of a parallel batch
    are separate processes and lease their own).
    """
    if parallel <= 1:
        with shared_arena():
            results = run_many(specs, parallel=parallel, validate=validate)
    else:
        results = run_many(specs, parallel=parallel, validate=validate)
    rows: list[ExperimentRow] = []
    for spec, result in zip(specs, results):
        row = ExperimentRow(x=spec.label())
        row.values["algorithm"] = result.name
        row.values["rounds"] = result.rounds
        row.values["palette_size"] = result.palette_size
        row.values["colors_used"] = result.colors_used()
        row.values["fingerprint"] = result.fingerprint[:12]
        rows.append(row)
    return SweepResult(x_label=x_label, rows=rows)


def run_scenario_sweep(
    specs: Sequence[RunSpec],
    *,
    parallel: int = 1,
    validate: bool = True,
    cache: bool = True,
    cache_dir=None,
    job_dir=None,
    shards: int = 2,
    local_workers: int = 0,
    x_label: str = "scenario",
) -> SweepResult:
    """Run scenario specs through the executor; one outcome row per spec.

    The adversarial sibling of :func:`run_spec_sweep`: each row reports
    the scenario outcome fields (rounds to quiescence, delivered /
    dropped / deferred / duplicated messages, crash and survivor
    counts, survivor-induced validity) next to the execution-model
    label.  Plain (scenario-less or identity-scenario) specs are
    welcome in the same batch — they fill the adversary columns with
    zeros, which makes the degradation-vs-baseline table read off
    directly.  ``parallel > 1`` fans out over the process pool with
    byte-identical results; ``cache_dir`` resumes finished cells across
    sessions like any other spec batch.

    **Sharded path** (``job_dir=``): the batch executes through
    :func:`repro.cluster.run_sharded` instead — split into ``shards``
    work units in ``job_dir``, optionally drained by ``local_workers``
    worker subprocesses (plus any ``python -m repro worker`` processes
    pointed at the same directory, on any machine), merged
    byte-identically.  Row contents are unchanged; re-running with the
    same batch and directory resumes a half-finished sweep.  On this
    path ``parallel`` and ``cache`` do not apply (workers are the
    parallelism; the job's own ``cache/`` is the spill), and passing a
    separate ``cache_dir`` alongside ``job_dir`` is a loud error
    rather than a silently ignored argument.
    """
    if job_dir is not None:
        if cache_dir is not None:
            raise ValueError(
                "run_scenario_sweep: cache_dir= does not combine with "
                "job_dir= — sharded jobs spill into <job_dir>/cache "
                "(pass one or the other)"
            )
        from repro.cluster import run_sharded

        results = run_sharded(
            specs,
            job_dir,
            shards=shards,
            local_workers=local_workers,
            validate=validate,
        )
    else:
        results = run_many(
            specs,
            parallel=parallel,
            validate=validate,
            cache=cache,
            cache_dir=cache_dir,
        )
    rows: list[ExperimentRow] = []
    for spec, result in zip(specs, results):
        details = result.details
        scenario = details.get("scenario") or {}
        row = ExperimentRow(x=spec.label())
        row.values["algorithm"] = result.name
        row.values["model"] = scenario.get("model", "synchronous")
        row.values["rounds"] = details.get(
            "rounds_to_quiescence", result.rounds
        )
        row.values["delivered"] = details.get("messages_delivered", 0)
        row.values["dropped"] = details.get("messages_dropped", 0)
        row.values["deferred"] = details.get("messages_deferred", 0)
        row.values["duplicated"] = details.get("messages_duplicated", 0)
        row.values["crashed"] = details.get("crashed_count", 0)
        row.values["uncolored"] = details.get("uncolored_survivors", 0)
        row.values["conflicts"] = details.get("conflicts_on_survivors", 0)
        row.values["proper"] = details.get("proper_on_survivors", True)
        row.values["aborted"] = details.get("aborted")
        row.values["fingerprint"] = result.fingerprint[:12]
        rows.append(row)
    return SweepResult(x_label=x_label, rows=rows)


def spec_cells(
    specs: Sequence[RunSpec], *, validate: bool = False
) -> list[tuple[object, Callable[[], object]]]:
    """Adapt specs into :func:`run_scaling_sweep` cells.

    Each cell times one uncached executor run, so scaling sweeps can be
    written purely in terms of specs::

        sweep = run_scaling_sweep(spec_cells(specs), x_label="spec")

    Validation is off by default so ``wall_clock_s`` measures the
    algorithm alone — the same timing semantics as
    :func:`run_race_sweep`'s ``capture_timing`` (which excludes
    validation).  Use :func:`run_spec_sweep` when the sweep's point is
    verified results rather than timing.
    """
    from repro.api.runner import run as run_spec

    return [
        (
            spec.label(),
            lambda spec=spec: run_spec(spec, validate=validate, cache=False),
        )
        for spec in specs
    ]


def run_policy_sweep(
    graph: nx.Graph,
    policies: Sequence[ParameterPolicy],
    *,
    seed: int = 2,
) -> SweepResult:
    """Run the paper's solver under several policies on one graph.

    Used by the ablation benchmarks (β and p choices).
    """
    rows: list[ExperimentRow] = []
    for policy in policies:
        result = get_algorithm(PAPER_ALGORITHM).run(graph, seed=seed, policy=policy)
        check_proper_edge_coloring(graph, result.coloring)
        row = ExperimentRow(x=policy.name)
        row.values["rounds"] = result.rounds
        row.values["relaxed invocations"] = result.stats.get(
            "relaxed_invocations", 0
        )
        row.values["lem43 reductions"] = result.stats.get("lem43/reductions", 0)
        row.values["max depth"] = result.stats.get("max_depth_seen", 0)
        row.values["deferred"] = result.stats.get("deferred_edges", 0)
        rows.append(row)
    return SweepResult(x_label="policy", rows=rows)
