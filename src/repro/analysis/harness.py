"""Experiment harness: parameter sweeps producing structured rows.

One experiment = one sweep = one printed table.  The benchmark modules
under ``benchmarks/`` are thin wrappers around these runners so the
same sweeps are scriptable outside pytest (the examples use them too).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import networkx as nx

from repro.baselines.registry import BaselineResult, all_baselines
from repro.coloring.verify import check_palette_bound, check_proper_edge_coloring
from repro.core.params import ParameterPolicy
from repro.core.solver import solve_edge_coloring
from repro.graphs.properties import graph_summary


@dataclass
class ExperimentRow:
    """One row of an experiment table."""

    x: object
    values: dict[str, object] = field(default_factory=dict)


@dataclass
class SweepResult:
    """A finished sweep: ordered rows plus the series names."""

    x_label: str
    rows: list[ExperimentRow]

    def series_names(self) -> list[str]:
        names: list[str] = []
        for row in self.rows:
            for name in row.values:
                if name not in names:
                    names.append(name)
        return names

    def series(self, name: str) -> list[object]:
        return [row.values.get(name) for row in self.rows]

    def xs(self) -> list[object]:
        return [row.x for row in self.rows]


def run_race_sweep(
    graphs: Iterable[tuple[object, nx.Graph]],
    *,
    algorithms: Sequence[str] | None = None,
    paper_policy: ParameterPolicy | None = None,
    seed: int = 2,
    validate: bool = True,
) -> SweepResult:
    """Run every algorithm on every graph; report rounds per cell.

    Parameters
    ----------
    graphs:
        Iterable of ``(x_value, graph)`` pairs, e.g. a Δ sweep.
    algorithms:
        Baseline names to include (default: all registered).
    paper_policy:
        Policy for the paper's algorithm column (default policy of
        :func:`repro.core.solver.solve_edge_coloring` when ``None``).
    seed:
        ID-assignment seed shared by all runs.
    validate:
        Re-check every produced coloring (on by default; the whole
        point of the harness is that results are verified).
    """
    registry = all_baselines()
    names = list(algorithms) if algorithms is not None else sorted(registry)
    rows: list[ExperimentRow] = []
    for x_value, graph in graphs:
        summary = graph_summary(graph)
        row = ExperimentRow(x=x_value)
        row.values["n"] = summary.nodes
        row.values["Δ̄"] = summary.max_edge_degree
        paper_result = solve_edge_coloring(graph, policy=paper_policy, seed=seed)
        if validate:
            check_proper_edge_coloring(graph, paper_result.coloring)
            check_palette_bound(
                paper_result.coloring, summary.greedy_palette_size
            )
        row.values["BKO20 (this paper)"] = paper_result.rounds
        for name in names:
            result: BaselineResult = registry[name](graph, seed=seed)
            if validate:
                check_proper_edge_coloring(graph, result.coloring)
                check_palette_bound(result.coloring, result.palette_size)
            row.values[name] = result.rounds
        rows.append(row)
    return SweepResult(x_label="x", rows=rows)


def run_policy_sweep(
    graph: nx.Graph,
    policies: Sequence[ParameterPolicy],
    *,
    seed: int = 2,
) -> SweepResult:
    """Run the paper's solver under several policies on one graph.

    Used by the ablation benchmarks (β and p choices).
    """
    rows: list[ExperimentRow] = []
    for policy in policies:
        result = solve_edge_coloring(graph, policy=policy, seed=seed)
        check_proper_edge_coloring(graph, result.coloring)
        row = ExperimentRow(x=policy.name)
        row.values["rounds"] = result.rounds
        row.values["relaxed invocations"] = result.stats.get(
            "relaxed_invocations", 0
        )
        row.values["lem43 reductions"] = result.stats.get("lem43/reductions", 0)
        row.values["max depth"] = result.stats.get("max_depth_seen", 0)
        row.values["deferred"] = result.stats.get("deferred_edges", 0)
        rows.append(row)
    return SweepResult(x_label="policy", rows=rows)
