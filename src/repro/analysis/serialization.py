"""JSON export of solve results and ledgers.

Downstream tooling (dashboards, regression trackers, notebook
analysis) wants machine-readable run records; this module converts
:class:`~repro.core.solver.SolveResult` and
:class:`~repro.core.ledger.RoundLedger` trees into plain JSON-safe
dictionaries and back-compatible summaries.

Edge keys become ``"u--v"`` strings (node reprs joined), which round-
trips for integer- and string-labelled graphs — the only kinds the
I/O layer produces.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.core.ledger import LedgerEntry, RoundLedger
from repro.core.solver import SolveResult
from repro.errors import InvalidInstanceError  # noqa: F401  (re-export)
from repro.graphs.edges import Edge, edge_to_token, token_to_edge  # noqa: F401


def ledger_entry_to_dict(entry: LedgerEntry) -> dict[str, Any]:
    """Recursively convert a ledger entry to a JSON-safe dict."""
    payload: dict[str, Any] = {
        "label": entry.label,
        "mode": entry.mode,
        "total": entry.total(),
    }
    if entry.mode == "leaf":
        payload["rounds"] = entry.rounds
    else:
        payload["children"] = [
            ledger_entry_to_dict(child) for child in entry.children
        ]
    return payload


def ledger_to_dict(ledger: RoundLedger) -> dict[str, Any]:
    """Convert a ledger (tree + counters) to a JSON-safe dict."""
    return {
        "total_rounds": ledger.total_rounds(),
        "counters": ledger.counters(),
        "tree": ledger_entry_to_dict(ledger.root),
    }


def solve_result_to_dict(result: SolveResult) -> dict[str, Any]:
    """Convert a :class:`SolveResult` into a JSON-safe dict.

    The full ledger tree is included; colorings are keyed by edge
    tokens.
    """
    return {
        "rounds": result.rounds,
        "policy": result.policy_name,
        "initial_palette": result.initial_palette,
        "colors_used": len(set(result.coloring.values())),
        "edges": len(result.coloring),
        "coloring": {
            edge_to_token(edge): color
            for edge, color in sorted(result.coloring.items(), key=repr)
        },
        "stats": _jsonify(result.stats),
        "ledger": ledger_to_dict(result.ledger),
    }


def _jsonify(value: Any) -> Any:
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def write_result(result: SolveResult, path: str | Path) -> None:
    """Write a solve result as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(solve_result_to_dict(result), indent=2, sort_keys=True)
        + "\n"
    )


def read_coloring_from_result(path: str | Path) -> dict[Edge, int]:
    """Load just the coloring back from a written result file."""
    payload = json.loads(Path(path).read_text())
    return {
        token_to_edge(token): color
        for token, color in payload["coloring"].items()
    }
