"""Simulation-core micro-benchmark: reference loop vs fast path.

This module is the single implementation behind two front-ends:

* ``python -m repro bench-core`` — the CLI entry point that writes
  ``BENCH_scheduler.json`` at the repo root, the repo's recorded perf
  trajectory (wall-clock, rounds/sec and messages/sec, before/after);
* ``benchmarks/bench_scheduler_core.py`` — the pytest benchmark that
  asserts the fast path stays equivalent *and* fast.

The headline workload is the scheduler substrate of the RACE
experiment's largest instance (``bench_race_vs_delta`` sweeps
``K_{s,s}`` up to ``s = 16``; all its simulated algorithms execute on
the line graph of that instance).  A fixed-horizon flood is used as the
probe program because its per-node computation is trivial — wall-clock
is then almost entirely simulator overhead, which is exactly what this
benchmark tracks.  The "before" number comes from
:func:`repro.model.reference.reference_run`, the preserved seed loop.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import time
from pathlib import Path

from repro.analysis.harness import (
    SweepResult,
    run_scaling_sweep,
    throughput_columns,
    time_best,
)
from repro.telemetry.ledger import snapshot_environment
from repro.graphs.generators import complete_bipartite, random_regular
from repro.graphs.properties import assign_unique_ids
from repro.model.edge_network import line_graph_network
from repro.model.network import Network
from repro.model.reference import reference_run
from repro.model.scheduler import ExecutionResult, Scheduler, numpy_available
from repro.primitives.node_algorithms import (
    FloodMaxAlgorithm,
    PushFloodAlgorithm,
)

#: The largest cell of the RACE sweep (``bench_race_vs_delta``).
LARGEST_RACE_SIDE = 16

#: Flood horizon of the headline workload — enough rounds that steady-
#: state per-message costs dominate one-time setup in *both* loops.
HEADLINE_HORIZON = 16


def largest_race_network(side: int | None = None) -> Network:
    """The simulation substrate of the largest RACE instance.

    ``bench_race_vs_delta`` tops out at ``K_{16,16}``; its simulated
    algorithms run on the line graph of that graph (256 agents of
    degree 30).  ``side`` overrides the bipartition size (smoke tests
    shrink it).
    """
    if side is None:
        side = LARGEST_RACE_SIDE
    graph = complete_bipartite(side, side)
    ids = assign_unique_ids(graph, seed=2)
    return line_graph_network(graph, node_ids=ids)


def compare_reference_vs_fast(
    network: Network,
    *,
    horizon: int = HEADLINE_HORIZON,
    repeats: int = 3,
) -> dict:
    """Time the seed loop against the fast path on one flood workload.

    Returns a JSON-safe record with before/after wall-clock and
    throughput, the speedup, and an ``identical_results`` flag diffing
    ``rounds`` / ``messages_sent`` / ``outputs`` between the two loops.
    """
    before_clock, before = time_best(
        lambda: reference_run(network, FloodMaxAlgorithm(horizon)), repeats
    )
    after_clock, after = time_best(
        lambda: Scheduler(network).run(FloodMaxAlgorithm(horizon)), repeats
    )
    assert isinstance(before, ExecutionResult)
    assert isinstance(after, ExecutionResult)
    identical = (
        before.rounds == after.rounds
        and before.messages_sent == after.messages_sent
        and before.outputs == after.outputs
    )
    return {
        "n": network.n,
        "max_degree": network.max_degree,
        "horizon": horizon,
        "rounds": after.rounds,
        "messages": after.messages_sent,
        "before": throughput_columns(before, before_clock),
        "after": throughput_columns(after, after_clock),
        "speedup": before_clock / max(after_clock, 1e-9),
        "identical_results": identical,
    }


def scaling_vs_n(
    sizes: tuple[int, ...] = (64, 256, 1024, 4096),
    *,
    degree: int = 6,
    horizon: int = 8,
    repeats: int = 2,
) -> SweepResult:
    """Fast-path wall-clock on ``degree``-regular graphs of growing n."""
    cells = []
    for n in sizes:
        network = Network(random_regular(degree, n, seed=7))
        cells.append(
            (n, lambda net=network: Scheduler(net).run(FloodMaxAlgorithm(horizon)))
        )
    return run_scaling_sweep(cells, x_label="n", repeats=repeats)


#: The large-scale cells of the scaling record: (n, degree, horizon).
#: The first three rows push n past 10,000 at growing Δ — the regime
#: the ROADMAP's "tens of thousands of nodes" open item asked for.
#: The final row is the next order of magnitude: 100,000 nodes, which
#: the numpy engine runs out of a memory-mapped arena.
LARGE_SCALE_CELLS: tuple[tuple[int, int, int], ...] = (
    (10_000, 8, 8),
    (10_000, 16, 6),
    (10_000, 32, 4),
    (20_000, 8, 6),
    (100_000, 8, 3),
)

#: At and past this n the numpy engine's bench cells lease an explicit
#: memory-mapped arena, so the recorded 100k rows certify the memmap
#: variant (below it, buffers this size are fine on the Python heap).
MEMMAP_BENCH_MIN_N = 100_000


def bench_engines() -> tuple[str, ...]:
    """The engines the benchmark can time on this interpreter."""
    return ("list", "numpy") if numpy_available() else ("list",)


def _run_engine_cell(
    network: Network, horizon: int, engine: str
) -> ExecutionResult:
    """Run one flood cell under ``engine`` (memmap arena at 100k+)."""
    if engine == "numpy" and network.n >= MEMMAP_BENCH_MIN_N:
        from repro.model.engine_numpy import NumpyRoundArena, shared_numpy_arena

        arena = NumpyRoundArena(memmap=True)
        try:
            with shared_numpy_arena(arena):
                return Scheduler(network, engine=engine).run(
                    FloodMaxAlgorithm(horizon)
                )
        finally:
            arena.close()
    return Scheduler(network, engine=engine).run(FloodMaxAlgorithm(horizon))


def scaling_large_n(
    cells: tuple[tuple[int, int, int], ...] = LARGE_SCALE_CELLS,
    *,
    repeats: int = 2,
    engines: tuple[str, ...] | None = None,
) -> SweepResult:
    """Engine-labeled throughput on 10k+-node regular instances.

    Each cell is ``(n, degree, horizon)``, timed once per engine; rows
    carry ``n`` / ``degree`` / ``engine`` columns so the recorded JSON
    is self-describing.  ``engines`` defaults to every engine available
    on this interpreter (:func:`bench_engines`).  List-engine cells
    share one arena (via :func:`run_scaling_sweep`); numpy cells at
    ``n >= MEMMAP_BENCH_MIN_N`` lease an explicit memory-mapped arena,
    so the 100k rows are measured off the memmap variant.
    """
    if engines is None:
        engines = bench_engines()
    sweep_cells = []
    for n, degree, horizon in cells:
        network = Network(random_regular(degree, n, seed=7))
        for engine in engines:

            def cell(net=network, h=horizon, d=degree, eng=engine):
                result = _run_engine_cell(net, h, eng)
                return {
                    "n": net.n,
                    "degree": d,
                    "engine": eng,
                    "rounds": result.rounds,
                    "messages_sent": result.messages_sent,
                }

            sweep_cells.append((f"n={n} Δ={degree} [{engine}]", cell))
    return run_scaling_sweep(sweep_cells, x_label="instance", repeats=repeats)


def compare_push_scatter(
    *,
    n: int = 20_000,
    degree: int = 8,
    horizon: int = 6,
    repeats: int = 3,
) -> dict:
    """Time list vs numpy on a push-heavy workload; return the record.

    The probe (:class:`PushFloodAlgorithm`) sends a *distinct* payload
    on every port, so the broadcast fast path never applies and
    wall-clock isolates the per-message push path — exactly the part
    the numpy engine replaces with fancy-indexed scatters.  The numpy
    side is ``None`` when numpy is unavailable (the record still
    validates; the committed record always has both sides).
    """
    network = Network(random_regular(degree, n, seed=7))
    list_clock, list_result = time_best(
        lambda: Scheduler(network, engine="list").run(
            PushFloodAlgorithm(horizon)
        ),
        repeats,
    )
    assert isinstance(list_result, ExecutionResult)
    record: dict = {
        "n": n,
        "degree": degree,
        "horizon": horizon,
        "workload": (
            "per-port distinct payload flood (PushFloodAlgorithm) — "
            "no broadcast column, every message takes the push path"
        ),
        "list": throughput_columns(list_result, list_clock),
    }
    if numpy_available():
        numpy_clock, numpy_result = time_best(
            lambda: Scheduler(network, engine="numpy").run(
                PushFloodAlgorithm(horizon)
            ),
            repeats,
        )
        assert isinstance(numpy_result, ExecutionResult)
        record["numpy"] = throughput_columns(numpy_result, numpy_clock)
        record["speedup"] = list_clock / max(numpy_clock, 1e-9)
        record["identical_results"] = (
            list_result.rounds == numpy_result.rounds
            and list_result.messages_sent == numpy_result.messages_sent
            and list_result.outputs == numpy_result.outputs
        )
    else:
        record["numpy"] = None
        record["speedup"] = None
        record["identical_results"] = None
    return record


def scaling_vs_delta(
    degrees: tuple[int, ...] = (4, 8, 16, 32),
    *,
    n: int = 256,
    horizon: int = 8,
    repeats: int = 2,
) -> SweepResult:
    """Fast-path wall-clock on ``n``-node regular graphs of growing Δ."""
    cells = []
    for degree in degrees:
        network = Network(random_regular(degree, n, seed=7))
        cells.append(
            (degree, lambda net=network: Scheduler(net).run(FloodMaxAlgorithm(horizon)))
        )
    return run_scaling_sweep(cells, x_label="Δ", repeats=repeats)


def profile_sidecar_path(record_path: str | Path) -> Path:
    """The profile sidecar written next to ``record_path``.

    ``BENCH_scheduler.json`` -> ``BENCH_scheduler_profile.txt``.
    """
    record_path = Path(record_path)
    return record_path.with_name(record_path.stem + "_profile.txt")


def profile_engines(
    *,
    quick: bool = False,
    engines: tuple[str, ...] | None = None,
    top: int = 30,
) -> str:
    """cProfile the hot loops per engine; return the pstats text.

    One section per engine, each profiling the headline broadcast flood
    plus the push-scatter workload (the two ends of the engine's
    compose spectrum), sorted by total time so the hotspots read off
    the top.  This is the evidence base for optimization work: the
    committed sidecar pins where simulator time went *before* a change,
    so a claimed speedup can be checked against the profile it came
    from.
    """
    if engines is None:
        engines = bench_engines()
    flood_network = largest_race_network(4 if quick else None)
    push_network = Network(
        random_regular(8, 2_000 if quick else 20_000, seed=7)
    )
    flood_horizon = 4 if quick else HEADLINE_HORIZON
    push_horizon = 2 if quick else 6
    sections = []
    for engine in engines:
        profiler = cProfile.Profile()
        profiler.enable()
        Scheduler(flood_network, engine=engine).run(
            FloodMaxAlgorithm(flood_horizon)
        )
        Scheduler(push_network, engine=engine).run(
            PushFloodAlgorithm(push_horizon)
        )
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.strip_dirs().sort_stats("tottime").print_stats(top)
        sections.append(
            f"== engine={engine} — headline flood "
            f"(n={flood_network.n}, horizon={flood_horizon}) + "
            f"push scatter (n={push_network.n}, "
            f"horizon={push_horizon}) ==\n{stream.getvalue()}"
        )
    return "\n".join(sections)


def write_profile(
    record_path: str | Path, *, quick: bool = False, top: int = 30
) -> Path:
    """Profile the engines; write the sidecar next to ``record_path``."""
    sidecar = profile_sidecar_path(record_path)
    sidecar.write_text(profile_engines(quick=quick, top=top))
    return sidecar


def _sweep_records(sweep: SweepResult) -> list[dict]:
    return [
        {sweep.x_label: row.x, **row.values} for row in sweep.rows
    ]


def collect_bench_core(
    *,
    repeats: int = 3,
    quick: bool = False,
    headline_side: int | None = None,
) -> dict:
    """Run the full bench-core suite; return the JSON-safe record."""
    network = largest_race_network(headline_side)
    headline = compare_reference_vs_fast(
        network,
        horizon=4 if quick else HEADLINE_HORIZON,
        repeats=1 if quick else repeats,
    )
    sizes = (64, 128) if quick else (64, 256, 1024, 4096)
    degrees = (4, 8) if quick else (4, 8, 16, 32)
    large_cells = ((200, 8, 2),) if quick else LARGE_SCALE_CELLS
    sweep_repeats = 1 if quick else 2
    push_scatter = compare_push_scatter(
        n=400 if quick else 20_000,
        degree=4 if quick else 8,
        horizon=2 if quick else 6,
        repeats=1 if quick else repeats,
    )
    return {
        "benchmark": "scheduler-core",
        "workload": (
            "fixed-horizon flood (FloodMaxAlgorithm) — trivial per-node "
            "computation, so wall-clock isolates simulator overhead"
        ),
        "before_implementation": "repro.model.reference.reference_run (seed loop)",
        "after_implementation": (
            "repro.model.scheduler.Scheduler.run (columnar round engine)"
        ),
        "engines": list(bench_engines()),
        "largest_race_instance": {
            "instance": (
                f"line graph of K_{{{LARGEST_RACE_SIDE},{LARGEST_RACE_SIDE}}} "
                "(largest bench_race_vs_delta cell)"
            ),
            **headline,
        },
        "push_scatter": push_scatter,
        "scaling_vs_n": _sweep_records(scaling_vs_n(sizes, repeats=sweep_repeats)),
        "scaling_vs_delta": _sweep_records(
            scaling_vs_delta(degrees, repeats=sweep_repeats)
        ),
        "scaling_large_n": _sweep_records(
            scaling_large_n(large_cells, repeats=sweep_repeats)
        ),
        "environment": snapshot_environment(),
        "created_unix": time.time(),
    }


#: Keys every bench record must carry, and the throughput keys every
#: sweep row must carry.  ``validate_bench_record`` checks these — the
#: structure consumers (CI smoke step, regression benchmarks, plots)
#: rely on, never timing values.
_REQUIRED_RECORD_KEYS = (
    "benchmark",
    "workload",
    "before_implementation",
    "after_implementation",
    "largest_race_instance",
    "push_scatter",
    "scaling_vs_n",
    "scaling_vs_delta",
    "scaling_large_n",
    "environment",
    "created_unix",
)
_REQUIRED_ROW_KEYS = ("wall_clock_s", "messages_sent", "messages_per_s")

#: Keys the environment provenance block must carry (values that may
#: legitimately be absent — e.g. ``numpy`` on a bare interpreter — are
#: allowed to be null, but the keys themselves must exist).
_REQUIRED_ENVIRONMENT_KEYS = ("python", "platform", "machine", "hostname")


def validate_bench_record(record: dict) -> None:
    """Raise ``ValueError`` unless ``record`` is a well-formed record.

    Structural checks only (keys present, numbers are numbers, the
    headline diff ran to identical results) — no timing thresholds, so
    the check is deterministic on any machine.
    """
    if not isinstance(record, dict):
        raise ValueError(f"bench record must be a dict, got {type(record)}")
    missing = [key for key in _REQUIRED_RECORD_KEYS if key not in record]
    if missing:
        raise ValueError(f"bench record is missing keys: {missing}")
    headline = record["largest_race_instance"]
    for side in ("before", "after"):
        timing = headline.get(side)
        if not isinstance(timing, dict) or not isinstance(
            timing.get("wall_clock_s"), (int, float)
        ):
            raise ValueError(f"headline {side!r} timing is malformed: {timing!r}")
    if headline.get("identical_results") is not True:
        raise ValueError("headline record does not certify identical results")
    if not isinstance(headline.get("speedup"), (int, float)):
        raise ValueError(f"headline speedup is malformed: {headline.get('speedup')!r}")
    push = record["push_scatter"]
    if not isinstance(push, dict) or not isinstance(
        push.get("list"), dict
    ) or not isinstance(push["list"].get("wall_clock_s"), (int, float)):
        raise ValueError(f"push_scatter record is malformed: {push!r}")
    if push.get("numpy") is not None:
        # A record with a numpy side must certify equivalence and carry
        # a comparable timing + speedup (the headline claim of the
        # vectorized engine); numpy=None is legal only because records
        # must be producible on interpreters without numpy.
        if not isinstance(push["numpy"], dict) or not isinstance(
            push["numpy"].get("wall_clock_s"), (int, float)
        ):
            raise ValueError(
                f"push_scatter numpy timing is malformed: {push['numpy']!r}"
            )
        if not isinstance(push.get("speedup"), (int, float)):
            raise ValueError(
                f"push_scatter speedup is malformed: {push.get('speedup')!r}"
            )
        if push.get("identical_results") is not True:
            raise ValueError(
                "push_scatter record does not certify identical results"
            )
    environment = record["environment"]
    if not isinstance(environment, dict):
        raise ValueError(
            f"environment block must be a dict, got {environment!r}"
        )
    for key in _REQUIRED_ENVIRONMENT_KEYS:
        if not isinstance(environment.get(key), str) or not environment[key]:
            raise ValueError(
                f"environment block is missing {key!r}: {environment!r}"
            )
    for sweep_key in ("scaling_vs_n", "scaling_vs_delta", "scaling_large_n"):
        rows = record[sweep_key]
        if not isinstance(rows, list) or not rows:
            raise ValueError(f"{sweep_key} must be a non-empty list of rows")
        for row in rows:
            for key in _REQUIRED_ROW_KEYS:
                if not isinstance(row.get(key), (int, float)):
                    raise ValueError(
                        f"{sweep_key} row is missing numeric {key!r}: {row!r}"
                    )
            if sweep_key == "scaling_large_n" and not isinstance(
                row.get("engine"), str
            ):
                raise ValueError(
                    f"scaling_large_n row is missing its engine label: {row!r}"
                )


def smoke_check(path: str | Path) -> dict:
    """CI smoke entry: tiny live run + structural check of ``path``.

    Runs the suite in quick mode on a shrunken headline instance (no
    timing assertions — only that the record machinery still produces
    well-formed, identical-results records), validates the fresh
    record, and validates the committed record at ``path`` if one
    exists.  The committed record is never overwritten.  Returns the
    fresh record.
    """
    record = collect_bench_core(repeats=1, quick=True, headline_side=4)
    validate_bench_record(record)
    committed = Path(path)
    if committed.exists():
        validate_bench_record(json.loads(committed.read_text()))
    return record


def write_bench_core(
    path: str | Path, *, repeats: int = 3, quick: bool = False
) -> dict:
    """Run the suite and write the record to ``path``; return the record."""
    record = collect_bench_core(repeats=repeats, quick=quick)
    validate_bench_record(record)
    Path(path).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return record
