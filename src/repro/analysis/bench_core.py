"""Simulation-core micro-benchmark: reference loop vs fast path.

This module is the single implementation behind two front-ends:

* ``python -m repro bench-core`` — the CLI entry point that writes
  ``BENCH_scheduler.json`` at the repo root, the repo's recorded perf
  trajectory (wall-clock, rounds/sec and messages/sec, before/after);
* ``benchmarks/bench_scheduler_core.py`` — the pytest benchmark that
  asserts the fast path stays equivalent *and* fast.

The headline workload is the scheduler substrate of the RACE
experiment's largest instance (``bench_race_vs_delta`` sweeps
``K_{s,s}`` up to ``s = 16``; all its simulated algorithms execute on
the line graph of that instance).  A fixed-horizon flood is used as the
probe program because its per-node computation is trivial — wall-clock
is then almost entirely simulator overhead, which is exactly what this
benchmark tracks.  The "before" number comes from
:func:`repro.model.reference.reference_run`, the preserved seed loop.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis.harness import (
    SweepResult,
    run_scaling_sweep,
    throughput_columns,
    time_best,
)
from repro.graphs.generators import complete_bipartite, random_regular
from repro.graphs.properties import assign_unique_ids
from repro.model.edge_network import line_graph_network
from repro.model.network import Network
from repro.model.reference import reference_run
from repro.model.scheduler import ExecutionResult, Scheduler
from repro.primitives.node_algorithms import FloodMaxAlgorithm

#: The largest cell of the RACE sweep (``bench_race_vs_delta``).
LARGEST_RACE_SIDE = 16

#: Flood horizon of the headline workload — enough rounds that steady-
#: state per-message costs dominate one-time setup in *both* loops.
HEADLINE_HORIZON = 16


def largest_race_network(side: int | None = None) -> Network:
    """The simulation substrate of the largest RACE instance.

    ``bench_race_vs_delta`` tops out at ``K_{16,16}``; its simulated
    algorithms run on the line graph of that graph (256 agents of
    degree 30).  ``side`` overrides the bipartition size (smoke tests
    shrink it).
    """
    if side is None:
        side = LARGEST_RACE_SIDE
    graph = complete_bipartite(side, side)
    ids = assign_unique_ids(graph, seed=2)
    return line_graph_network(graph, node_ids=ids)


def compare_reference_vs_fast(
    network: Network,
    *,
    horizon: int = HEADLINE_HORIZON,
    repeats: int = 3,
) -> dict:
    """Time the seed loop against the fast path on one flood workload.

    Returns a JSON-safe record with before/after wall-clock and
    throughput, the speedup, and an ``identical_results`` flag diffing
    ``rounds`` / ``messages_sent`` / ``outputs`` between the two loops.
    """
    before_clock, before = time_best(
        lambda: reference_run(network, FloodMaxAlgorithm(horizon)), repeats
    )
    after_clock, after = time_best(
        lambda: Scheduler(network).run(FloodMaxAlgorithm(horizon)), repeats
    )
    assert isinstance(before, ExecutionResult)
    assert isinstance(after, ExecutionResult)
    identical = (
        before.rounds == after.rounds
        and before.messages_sent == after.messages_sent
        and before.outputs == after.outputs
    )
    return {
        "n": network.n,
        "max_degree": network.max_degree,
        "horizon": horizon,
        "rounds": after.rounds,
        "messages": after.messages_sent,
        "before": throughput_columns(before, before_clock),
        "after": throughput_columns(after, after_clock),
        "speedup": before_clock / max(after_clock, 1e-9),
        "identical_results": identical,
    }


def scaling_vs_n(
    sizes: tuple[int, ...] = (64, 256, 1024, 4096),
    *,
    degree: int = 6,
    horizon: int = 8,
    repeats: int = 2,
) -> SweepResult:
    """Fast-path wall-clock on ``degree``-regular graphs of growing n."""
    cells = []
    for n in sizes:
        network = Network(random_regular(degree, n, seed=7))
        cells.append(
            (n, lambda net=network: Scheduler(net).run(FloodMaxAlgorithm(horizon)))
        )
    return run_scaling_sweep(cells, x_label="n", repeats=repeats)


#: The large-scale cells of the scaling record: (n, degree, horizon).
#: The first three rows push n past 10,000 at growing Δ — the regime
#: the ROADMAP's "tens of thousands of nodes" open item asked for.
LARGE_SCALE_CELLS: tuple[tuple[int, int, int], ...] = (
    (10_000, 8, 8),
    (10_000, 16, 6),
    (10_000, 32, 4),
    (20_000, 8, 6),
)


def scaling_large_n(
    cells: tuple[tuple[int, int, int], ...] = LARGE_SCALE_CELLS,
    *,
    repeats: int = 2,
) -> SweepResult:
    """Fast-path throughput on 10k+-node regular instances.

    Each cell is ``(n, degree, horizon)``; rows carry ``n`` and
    ``degree`` columns so the recorded JSON is self-describing.  All
    cells share one arena (via :func:`run_scaling_sweep`), so the flat
    buffers are allocated once for the largest instance.
    """
    sweep_cells = []
    for n, degree, horizon in cells:
        network = Network(random_regular(degree, n, seed=7))

        def cell(net=network, h=horizon, d=degree):
            result = Scheduler(net).run(FloodMaxAlgorithm(h))
            return {
                "n": net.n,
                "degree": d,
                "rounds": result.rounds,
                "messages_sent": result.messages_sent,
            }

        sweep_cells.append((f"n={n} Δ={degree}", cell))
    return run_scaling_sweep(sweep_cells, x_label="instance", repeats=repeats)


def scaling_vs_delta(
    degrees: tuple[int, ...] = (4, 8, 16, 32),
    *,
    n: int = 256,
    horizon: int = 8,
    repeats: int = 2,
) -> SweepResult:
    """Fast-path wall-clock on ``n``-node regular graphs of growing Δ."""
    cells = []
    for degree in degrees:
        network = Network(random_regular(degree, n, seed=7))
        cells.append(
            (degree, lambda net=network: Scheduler(net).run(FloodMaxAlgorithm(horizon)))
        )
    return run_scaling_sweep(cells, x_label="Δ", repeats=repeats)


def _sweep_records(sweep: SweepResult) -> list[dict]:
    return [
        {sweep.x_label: row.x, **row.values} for row in sweep.rows
    ]


def collect_bench_core(
    *,
    repeats: int = 3,
    quick: bool = False,
    headline_side: int | None = None,
) -> dict:
    """Run the full bench-core suite; return the JSON-safe record."""
    network = largest_race_network(headline_side)
    headline = compare_reference_vs_fast(
        network,
        horizon=4 if quick else HEADLINE_HORIZON,
        repeats=1 if quick else repeats,
    )
    sizes = (64, 128) if quick else (64, 256, 1024, 4096)
    degrees = (4, 8) if quick else (4, 8, 16, 32)
    large_cells = ((200, 8, 2),) if quick else LARGE_SCALE_CELLS
    sweep_repeats = 1 if quick else 2
    return {
        "benchmark": "scheduler-core",
        "workload": (
            "fixed-horizon flood (FloodMaxAlgorithm) — trivial per-node "
            "computation, so wall-clock isolates simulator overhead"
        ),
        "before_implementation": "repro.model.reference.reference_run (seed loop)",
        "after_implementation": (
            "repro.model.scheduler.Scheduler.run (columnar round engine)"
        ),
        "largest_race_instance": {
            "instance": (
                f"line graph of K_{{{LARGEST_RACE_SIDE},{LARGEST_RACE_SIDE}}} "
                "(largest bench_race_vs_delta cell)"
            ),
            **headline,
        },
        "scaling_vs_n": _sweep_records(scaling_vs_n(sizes, repeats=sweep_repeats)),
        "scaling_vs_delta": _sweep_records(
            scaling_vs_delta(degrees, repeats=sweep_repeats)
        ),
        "scaling_large_n": _sweep_records(
            scaling_large_n(large_cells, repeats=sweep_repeats)
        ),
        "created_unix": time.time(),
    }


#: Keys every bench record must carry, and the throughput keys every
#: sweep row must carry.  ``validate_bench_record`` checks these — the
#: structure consumers (CI smoke step, regression benchmarks, plots)
#: rely on, never timing values.
_REQUIRED_RECORD_KEYS = (
    "benchmark",
    "workload",
    "before_implementation",
    "after_implementation",
    "largest_race_instance",
    "scaling_vs_n",
    "scaling_vs_delta",
    "scaling_large_n",
    "created_unix",
)
_REQUIRED_ROW_KEYS = ("wall_clock_s", "messages_sent", "messages_per_s")


def validate_bench_record(record: dict) -> None:
    """Raise ``ValueError`` unless ``record`` is a well-formed record.

    Structural checks only (keys present, numbers are numbers, the
    headline diff ran to identical results) — no timing thresholds, so
    the check is deterministic on any machine.
    """
    if not isinstance(record, dict):
        raise ValueError(f"bench record must be a dict, got {type(record)}")
    missing = [key for key in _REQUIRED_RECORD_KEYS if key not in record]
    if missing:
        raise ValueError(f"bench record is missing keys: {missing}")
    headline = record["largest_race_instance"]
    for side in ("before", "after"):
        timing = headline.get(side)
        if not isinstance(timing, dict) or not isinstance(
            timing.get("wall_clock_s"), (int, float)
        ):
            raise ValueError(f"headline {side!r} timing is malformed: {timing!r}")
    if headline.get("identical_results") is not True:
        raise ValueError("headline record does not certify identical results")
    if not isinstance(headline.get("speedup"), (int, float)):
        raise ValueError(f"headline speedup is malformed: {headline.get('speedup')!r}")
    for sweep_key in ("scaling_vs_n", "scaling_vs_delta", "scaling_large_n"):
        rows = record[sweep_key]
        if not isinstance(rows, list) or not rows:
            raise ValueError(f"{sweep_key} must be a non-empty list of rows")
        for row in rows:
            for key in _REQUIRED_ROW_KEYS:
                if not isinstance(row.get(key), (int, float)):
                    raise ValueError(
                        f"{sweep_key} row is missing numeric {key!r}: {row!r}"
                    )


def smoke_check(path: str | Path) -> dict:
    """CI smoke entry: tiny live run + structural check of ``path``.

    Runs the suite in quick mode on a shrunken headline instance (no
    timing assertions — only that the record machinery still produces
    well-formed, identical-results records), validates the fresh
    record, and validates the committed record at ``path`` if one
    exists.  The committed record is never overwritten.  Returns the
    fresh record.
    """
    record = collect_bench_core(repeats=1, quick=True, headline_side=4)
    validate_bench_record(record)
    committed = Path(path)
    if committed.exists():
        validate_bench_record(json.loads(committed.read_text()))
    return record


def write_bench_core(
    path: str | Path, *, repeats: int = 3, quick: bool = False
) -> dict:
    """Run the suite and write the record to ``path``; return the record."""
    record = collect_bench_core(repeats=repeats, quick=quick)
    validate_bench_record(record)
    Path(path).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return record
