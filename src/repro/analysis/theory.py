"""Executable forms of the paper's round-complexity formulas.

The paper proves (Theorem 4.1 and the chain of lemmas):

* ``T(Δ̄, 1, C) <= O(β² log Δ̄) T(Δ̄, β, C) + O(log Δ̄ log* X)``
  (Lemma 4.2);
* ``T(Δ̄, S, C) <= (log p)(1 + T(2p-1, 1, 2p)) + T(Δ̄, S', C/p)``
  (Lemma 4.3, ``S' = S / (24 H_{2p} log p)``);
* ``T(Δ̄, S, C) <= (k log p)(1 + T(2p-1, 1, 2p)) + O(log* X)``
  for ``k = log_p C`` (Lemma 4.5);
* with ``β = α log^{4c} Δ̄`` and ``p = √Δ̄``:
  ``T(Δ̄, 1, Δ̄^c) <= O(log^{8c+2} Δ̄) (T(2√Δ̄ - 1, 1, 2√Δ̄) + 1)``,
  unrolling to ``log^{O(log log Δ̄)} Δ̄`` (Theorem 4.1).

This module evaluates those recurrences with explicit constants so the
benchmarks can plot the predicted growth of the paper's algorithm next
to the baselines' closed forms, find the predicted crossovers, and
check that the measured structural counters (recursion depth,
invocation counts) follow the same shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.errors import ParameterError
from repro.utils.logstar import log_star


@dataclass(frozen=True)
class TheoryModel:
    """A named predicted-rounds curve ``Δ̄ -> rounds``.

    ``rounds`` evaluates at integer ``Δ̄`` (for overlay with measured
    sweeps); ``log2_rounds``, when present, evaluates ``log2(rounds)``
    as a function of ``x = log2(Δ̄)`` so the *asymptotic* comparisons
    can reach the regime where the paper's bound wins (``Δ̄ ~ 2^{10^6}``
    — far beyond any integer scan).
    """

    name: str
    rounds: Callable[[int], float]
    log2_rounds: Callable[[float], float] | None = None

    def evaluate(self, dbars: list[int]) -> list[float]:
        return [self.rounds(dbar) for dbar in dbars]


def _log2(x: float) -> float:
    return math.log2(max(2.0, x))


@lru_cache(maxsize=None)
def _theorem41_recurrence(dbar: int, c: int, constant: float) -> float:
    """Unroll ``T(Δ̄) = K(Δ̄) * (T(2√Δ̄ - 1) + 1)`` down to constant Δ̄.

    ``K(Δ̄) = constant * log^{8c+2} Δ̄`` is the per-level factor of
    Section 4.3.  The recursion depth is ``O(log log Δ̄)``, yielding the
    quasi-polylogarithmic closed form.
    """
    if dbar <= 4:
        return 1.0
    level_factor = constant * _log2(dbar) ** (8 * c + 2)
    smaller = int(2 * math.isqrt(dbar) - 1)
    if smaller >= dbar:  # tiny dbar guard
        smaller = dbar - 1
    return level_factor * (_theorem41_recurrence(smaller, c, constant) + 1.0)


def predicted_balliu_kuhn_olivetti(
    c: int = 1, constant: float = 1.0, n: int | None = None
) -> TheoryModel:
    """Theorem 4.1's bound: ``log^{O(log log Δ̄)} Δ̄ (+ log* n)``.

    The log-domain form unrolls the same recurrence analytically:
    ``f(x) = (8c+2) log2(x) + f(x/2 + 1)`` with ``x = log2 Δ̄`` —
    ``Θ(log² x)`` overall, the quasi-polylog signature.
    """
    if c < 1:
        raise ParameterError(f"c must be >= 1, got {c}")
    additive = float(log_star(n)) if n else 0.0
    exponent = 8 * c + 2

    def rounds(dbar: int) -> float:
        return _theorem41_recurrence(max(2, dbar), c, constant) + additive

    def log2_rounds(x: float) -> float:
        # Unroll f(x) = (8c+2) log2 x + f(x/2 + 1) down to the base
        # regime x <= 4 (Δ̄ <= 16); the iteration x -> x/2 + 1 has
        # fixpoint 2, so cutting at 4 avoids an artificial tail.
        total = math.log2(max(1.0, constant)) if constant > 1 else 0.0
        current = x
        while current > 4.0:
            total += exponent * math.log2(max(2.0, current))
            current = current / 2.0 + 1.0
        return total

    return TheoryModel(
        name="BKO20 quasi-polylog(Δ̄)", rounds=rounds, log2_rounds=log2_rounds
    )


def predicted_kuhn_soda20(constant: float = 1.0, n: int | None = None) -> TheoryModel:
    """Kuhn [SODA'20]: ``2^{O(√log Δ̄)} (+ log* n)``."""
    additive = float(log_star(n)) if n else 0.0

    def rounds(dbar: int) -> float:
        return constant * 2 ** (2.0 * math.sqrt(_log2(dbar))) + additive

    def log2_rounds(x: float) -> float:
        return math.log2(max(1e-9, constant)) + 2.0 * math.sqrt(max(1.0, x))

    return TheoryModel(
        name="Kuhn20 2^{O(√log Δ̄)}", rounds=rounds, log2_rounds=log2_rounds
    )


def predicted_linial_greedy(constant: float = 1.0, n: int | None = None) -> TheoryModel:
    """[Lin87]-style: ``O(Δ̄² + log* n)``."""
    additive = float(log_star(n)) if n else 0.0

    def rounds(dbar: int) -> float:
        return constant * float(dbar) ** 2 + additive

    def log2_rounds(x: float) -> float:
        return math.log2(max(1e-9, constant)) + 2.0 * x

    return TheoryModel(
        name="Linial O(Δ̄²)", rounds=rounds, log2_rounds=log2_rounds
    )


def predicted_kuhn_wattenhofer(
    constant: float = 1.0, n: int | None = None
) -> TheoryModel:
    """[SV93, KW06]: ``O(Δ̄ log Δ̄ + log* n)``."""
    additive = float(log_star(n)) if n else 0.0

    def rounds(dbar: int) -> float:
        return constant * float(dbar) * _log2(dbar) + additive

    def log2_rounds(x: float) -> float:
        return math.log2(max(1e-9, constant)) + x + math.log2(max(2.0, x))

    return TheoryModel(
        name="KW06 O(Δ̄ log Δ̄)", rounds=rounds, log2_rounds=log2_rounds
    )


def predicted_randomized(n: int, constant: float = 1.0) -> TheoryModel:
    """[ABI86/Lub86]: ``O(log n)`` regardless of Δ̄."""
    value = constant * _log2(n)
    return TheoryModel(name="randomized O(log n)", rounds=lambda dbar: value)


def crossover_point(
    model_a: TheoryModel,
    model_b: TheoryModel,
    *,
    low: int = 2,
    high: int = 2**40,
) -> int | None:
    """Smallest ``Δ̄`` past which model_a stays below model_b.

    Scans powers of two in ``[low, high]`` (the curves of interest are
    smooth) and returns the first scan point after the *last* point
    where ``model_a >= model_b`` — i.e. the final crossover, past which
    the paper's curve wins for good.  Returns ``low`` if model_a is
    below everywhere in range, and ``None`` if it never ends up below.
    Used by the RACE benchmark to report *predicted* crossovers — e.g.
    where the quasi-polylog curve undercuts ``2^{O(√log Δ̄)}``.
    """
    last_not_below: int | None = None
    first: int | None = None
    dbar = max(2, low)
    while dbar <= high:
        if first is None:
            first = dbar
        if model_a.rounds(dbar) >= model_b.rounds(dbar):
            last_not_below = dbar
        dbar *= 2
    if last_not_below is None:
        return first
    successor = last_not_below * 2
    if successor > high:
        return None
    return successor


def crossover_log2_dbar(
    model_a: TheoryModel,
    model_b: TheoryModel,
    *,
    low: float = 2.0,
    high: float = 1e8,
    samples: int = 4000,
) -> float | None:
    """Final crossover in the log domain: the ``log2 Δ̄`` past which
    ``model_a`` stays below ``model_b``.

    Works on the models' ``log2_rounds`` forms, so it reaches the
    asymptotic regime (``Δ̄ ~ 2^{10^6}``) that integer evaluation cannot.
    Returns ``log2(Δ̄*)`` or ``None`` if model_a never ends up below
    within range.
    """
    if model_a.log2_rounds is None or model_b.log2_rounds is None:
        raise ParameterError("both models need log-domain forms")
    ratio = (high / low) ** (1.0 / samples)
    last_not_below: float | None = None
    x = low
    for _ in range(samples + 1):
        if model_a.log2_rounds(x) >= model_b.log2_rounds(x):
            last_not_below = x
        x *= ratio
    if last_not_below is None:
        return low
    successor = last_not_below * ratio
    if successor > high:
        return None
    return successor


def lemma42_invocation_bound(beta: int, dbar: int, constant: float = 8.0) -> float:
    """Lemma 4.2's bound on slack-β instances: ``O(β² log Δ̄)``.

    The LEM42 benchmark checks the measured invocation count against
    this with an explicit constant.
    """
    if beta < 1 or dbar < 1:
        raise ParameterError("beta and dbar must be >= 1")
    return constant * beta * beta * _log2(dbar)


def lemma45_level_count(palette_size: int, p: int) -> int:
    """Lemma 4.5's ``k = log_p C`` — reduction steps until constant palette."""
    if p < 2:
        raise ParameterError(f"p must be >= 2, got {p}")
    if palette_size < 1:
        raise ParameterError("palette_size must be >= 1")
    return max(1, math.ceil(math.log(max(2, palette_size)) / math.log(p)))


def theorem41_depth(dbar: int) -> int:
    """Predicted recursion depth ``O(log log Δ̄)`` of Theorem 4.1.

    Counts the iterations of ``Δ̄ -> 2√Δ̄ - 1`` until the base regime;
    the THM41 benchmark compares the solver's measured depth counter
    against this.
    """
    depth = 0
    current = max(2, dbar)
    while current > 4:
        current = int(2 * math.isqrt(current) - 1)
        depth += 1
        if depth > 64:  # pragma: no cover — cannot happen for int inputs
            break
    return depth
