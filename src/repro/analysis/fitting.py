"""Growth-shape estimation for measured round curves.

The paper's claims are about growth *orders* (Δ̄², Δ̄ log Δ̄,
2^{O(√log Δ̄)}, quasi-polylog).  At feasible scale, absolute round
counts are constant-dominated, but growth exponents are already
measurable: this module fits measured sweeps to power laws and reports
the exponent, which the RACE benchmark compares against each
algorithm's predicted order (Linial ≈ 2, KW ≈ 1, the recursions < 1
in the measured window).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ParameterError


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``rounds ≈ a * dbar^b`` in log-log space.

    Attributes
    ----------
    exponent:
        The fitted ``b`` — the measured growth order.
    prefactor:
        The fitted ``a``.
    r_squared:
        Coefficient of determination of the log-log regression
        (1.0 = perfectly power-law-shaped data).
    """

    exponent: float
    prefactor: float
    r_squared: float


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y ≈ a * x^b`` by linear regression in log-log space.

    Requires at least three strictly positive points.
    """
    if len(xs) != len(ys):
        raise ParameterError("xs and ys must have equal length")
    if len(xs) < 3:
        raise ParameterError("need at least three points to fit")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ParameterError("power-law fitting needs positive data")

    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.asarray(ys, dtype=float))
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    residual = float(np.sum((log_y - predicted) ** 2))
    total = float(np.sum((log_y - np.mean(log_y)) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return PowerLawFit(
        exponent=float(slope),
        prefactor=float(math.exp(intercept)),
        r_squared=r_squared,
    )


def doubling_ratios(ys: Sequence[float]) -> list[float]:
    """Return successive ratios ``y[i+1] / y[i]`` (x assumed doubling).

    A crude but assumption-free growth probe: ratios near 4 indicate
    quadratic growth, near 2 linear, near 1 flat.
    """
    if any(y <= 0 for y in ys):
        raise ParameterError("doubling ratios need positive data")
    return [later / earlier for earlier, later in zip(ys, ys[1:])]


def classify_growth(exponent: float) -> str:
    """Human label for a fitted exponent (used in benchmark tables)."""
    if exponent < 0.25:
        return "~flat"
    if exponent < 0.75:
        return "sublinear"
    if exponent < 1.35:
        return "~linear"
    if exponent < 1.8:
        return "superlinear"
    return "~quadratic"
