"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``
    Color the edges of a graph (from an edge-list file or a generated
    family) with the paper's algorithm; optionally write the coloring.
``race``
    Run every algorithm on one instance and print the round table.
``info``
    Print instance measurements (n, m, Δ, Δ̄, palette sizes).
``bench-core``
    Benchmark the simulation core (reference loop vs fast path) and
    write the perf-trajectory record ``BENCH_scheduler.json``.

Examples::

    python -m repro solve --family complete_bipartite --size 8
    python -m repro solve --input graph.txt --output colors.txt
    python -m repro race --family random_regular --size 6
    python -m repro info --input graph.txt
    python -m repro bench-core --output BENCH_scheduler.json
"""

from __future__ import annotations

import argparse
import sys

import networkx as nx

from repro.analysis.harness import run_race_sweep
from repro.analysis.tables import format_series, format_table
from repro.coloring.verify import check_palette_bound, check_proper_edge_coloring
from repro.core.params import fixed_policy, kuhn20_style_policy, paper_policy, scaled_policy
from repro.core.solver import solve_edge_coloring
from repro.graphs import generators
from repro.graphs.io import read_edge_list, write_coloring
from repro.graphs.properties import graph_summary


_FAMILIES = {
    "cycle": lambda size, seed: generators.cycle_graph(max(3, size)),
    "complete": lambda size, seed: generators.complete_graph(max(2, size)),
    "complete_bipartite": lambda size, seed: generators.complete_bipartite(
        max(1, size), max(1, size)
    ),
    "random_regular": lambda size, seed: generators.random_regular(
        max(1, size), 4 * max(1, size) + (4 * size * size) % 2, seed
    ),
    "torus": lambda size, seed: generators.torus_graph(max(3, size), max(3, size)),
    "star": lambda size, seed: generators.star_graph(max(1, size)),
}

_POLICIES = {
    "scaled": scaled_policy,
    "paper": paper_policy,
    "kuhn20": kuhn20_style_policy,
    "machinery": lambda: fixed_policy(
        2, 4, base_degree_threshold=4, base_palette_threshold=6
    ),
}


def _load_graph(args: argparse.Namespace) -> nx.Graph:
    if args.input:
        return read_edge_list(args.input)
    if args.family:
        return _FAMILIES[args.family](args.size, args.seed)
    raise SystemExit("provide --input FILE or --family NAME")


def _add_instance_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", help="edge-list file (one 'u v' per line)")
    parser.add_argument(
        "--family", choices=sorted(_FAMILIES), help="generated instance family"
    )
    parser.add_argument(
        "--size", type=int, default=8, help="family size parameter (default 8)"
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="generator / ID seed (default 1)"
    )


def _command_solve(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    summary = graph_summary(graph)
    result = solve_edge_coloring(
        graph, policy=_POLICIES[args.policy](), seed=args.seed
    )
    check_proper_edge_coloring(graph, result.coloring)
    check_palette_bound(result.coloring, max(1, summary.greedy_palette_size))
    print(
        f"colored {summary.edges} edges with "
        f"{len(set(result.coloring.values()))} colors "
        f"(bound 2Δ-1 = {summary.greedy_palette_size}) in "
        f"{result.rounds} LOCAL rounds [policy: {result.policy_name}]"
    )
    if args.breakdown:
        print(result.ledger.breakdown(max_depth=args.breakdown))
    if args.output:
        write_coloring(result.coloring, args.output)
        print(f"coloring written to {args.output}")
    return 0


def _command_race(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    summary = graph_summary(graph)
    sweep = run_race_sweep(
        [(summary.max_edge_degree, graph)],
        algorithms=[
            "linial_greedy",
            "kuhn_wattenhofer",
            "kuhn_soda20",
            "randomized_luby",
        ],
        seed=args.seed,
    )
    series = {name: sweep.series(name) for name in sweep.series_names()}
    print(format_series("Δ̄", sweep.xs(), series, title="measured LOCAL rounds"))
    return 0


def _command_info(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    summary = graph_summary(graph)
    print(
        format_table(
            ["measure", "value"],
            [
                ["nodes (n)", summary.nodes],
                ["edges (m)", summary.edges],
                ["max degree (Δ)", summary.max_degree],
                ["max edge degree (Δ̄)", summary.max_edge_degree],
                ["greedy palette (2Δ-1)", summary.greedy_palette_size],
            ],
        )
    )
    return 0


def _command_bench_core(args: argparse.Namespace) -> int:
    from repro.analysis.bench_core import write_bench_core

    record = write_bench_core(
        args.output, repeats=args.repeats, quick=args.quick
    )
    headline = record["largest_race_instance"]
    print(
        f"scheduler core on {headline['instance']}: "
        f"{headline['before']['wall_clock_s']:.4f}s -> "
        f"{headline['after']['wall_clock_s']:.4f}s "
        f"({headline['speedup']:.1f}x speedup, "
        f"{headline['after']['messages_per_s']:,.0f} messages/s), "
        f"identical results: {headline['identical_results']}"
    )
    print(f"perf record written to {args.output}")
    return 0 if headline["identical_results"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed edge coloring (Balliu-Kuhn-Olivetti, PODC 2020)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    solve = commands.add_parser("solve", help="color a graph's edges")
    _add_instance_arguments(solve)
    solve.add_argument(
        "--policy", choices=sorted(_POLICIES), default="scaled",
        help="parameter policy (default: scaled)",
    )
    solve.add_argument("--output", help="write the coloring to this file")
    solve.add_argument(
        "--breakdown", type=int, default=0, metavar="DEPTH",
        help="print the round-ledger tree to this depth",
    )
    solve.set_defaults(handler=_command_solve)

    race = commands.add_parser("race", help="compare all algorithms")
    _add_instance_arguments(race)
    race.set_defaults(handler=_command_race)

    info = commands.add_parser("info", help="print instance measurements")
    _add_instance_arguments(info)
    info.set_defaults(handler=_command_info)

    bench = commands.add_parser(
        "bench-core",
        help="benchmark the simulation core and record BENCH_scheduler.json",
    )
    bench.add_argument(
        "--output", default="BENCH_scheduler.json",
        help="record file to write (default: BENCH_scheduler.json)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per measurement, best-of (default 3)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="smaller instances / fewer repeats (for smoke tests)",
    )
    bench.set_defaults(handler=_command_bench_core)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
