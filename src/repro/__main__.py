"""Command-line interface: ``python -m repro <command>``.

A thin shell over :mod:`repro.api` — instances, algorithms, and
parameter policies all resolve through the same registries the library
exposes programmatically.  ``solve`` goes through the spec-driven
batch executor (so its runs are fingerprinted and cached); ``race``
drives the unified registry via the sweep harness, and ``info`` /
``list`` only read the registries.

Commands
--------
``solve``
    Color the edges of a graph (from an edge-list file or a generated
    family) with the paper's algorithm; optionally write the coloring.
``race``
    Run every registered algorithm — the paper solver included — on
    one instance and print the round table.
``info``
    Print instance measurements (n, m, Δ, Δ̄, palette sizes).
``list``
    Print the registries: instance families, algorithms, policies.
``bench-core``
    Benchmark the simulation core (reference loop vs fast path) and
    write the perf-trajectory record ``BENCH_scheduler.json``.

``solve``, ``race``, ``info``, and ``list`` accept ``--json`` for
machine-readable output.

Examples::

    python -m repro solve --family complete_bipartite --size 8
    python -m repro solve --input graph.txt --output colors.txt
    python -m repro race --family random_regular --size 6 --json
    python -m repro info --input graph.txt
    python -m repro list
    python -m repro bench-core --output BENCH_scheduler.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.api import (
    InstanceSpec,
    RunSpec,
    algorithm_registry,
    run,
    specs_for_race,
)
from repro.analysis.harness import run_race_sweep
from repro.analysis.tables import format_series, format_table
from repro.core.params import named_policies
from repro.graphs.families import family_registry
from repro.graphs.io import write_coloring
from repro.graphs.properties import graph_summary


def _instance_spec(args: argparse.Namespace) -> InstanceSpec:
    if args.input:
        return InstanceSpec(path=args.input, seed=args.seed)
    if args.family:
        return InstanceSpec(family=args.family, size=args.size, seed=args.seed)
    raise SystemExit("provide --input FILE or --family NAME")


def _add_instance_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", help="edge-list file (one 'u v' per line)")
    parser.add_argument(
        "--family",
        choices=sorted(family_registry()),
        help="generated instance family (see 'repro list')",
    )
    parser.add_argument(
        "--size", type=int, default=8, help="family size parameter (default 8)"
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="generator / ID seed (default 1)"
    )


def _add_json_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )


def _print_json(payload: object) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True, default=repr))


def _command_solve(args: argparse.Namespace) -> int:
    spec = RunSpec(
        instance=_instance_spec(args),
        algorithm="bko20",
        policy=args.policy,
    )
    result = run(spec)  # validated (properness + palette bound) inside
    if args.json:
        payload = {"spec": spec.to_dict(), "result": result.to_dict()}
        _print_json(payload)
    else:
        print(
            f"colored {len(result.coloring)} edges with "
            f"{result.colors_used()} colors "
            f"(bound 2Δ-1 = {result.palette_size}) in "
            f"{result.rounds} LOCAL rounds [policy: {result.policy_name}]"
        )
        if args.breakdown and result.ledger is not None:
            print(result.ledger.breakdown(max_depth=args.breakdown))
    if args.output:
        write_coloring(result.coloring, args.output)
        if not args.json:
            print(f"coloring written to {args.output}")
    return 0


def _command_race(args: argparse.Namespace) -> int:
    instance = _instance_spec(args)
    graph = instance.build()
    summary = graph_summary(graph)
    # Algorithm list comes from the unified registry (None = everyone,
    # the paper solver included as its own entrant).
    sweep = run_race_sweep(
        [(summary.max_edge_degree, graph)], algorithms=None, seed=args.seed
    )
    if args.json:
        _print_json(
            {
                "instance": instance.to_dict(),
                "x_label": "Δ̄",
                "xs": sweep.xs(),
                "series": {
                    name: sweep.series(name) for name in sweep.series_names()
                },
            }
        )
    else:
        series = {name: sweep.series(name) for name in sweep.series_names()}
        print(format_series("Δ̄", sweep.xs(), series, title="measured LOCAL rounds"))
    return 0


def _command_info(args: argparse.Namespace) -> int:
    instance = _instance_spec(args)
    summary = graph_summary(instance.build())
    measures = [
        ("nodes (n)", summary.nodes),
        ("edges (m)", summary.edges),
        ("max degree (Δ)", summary.max_degree),
        ("max edge degree (Δ̄)", summary.max_edge_degree),
        ("greedy palette (2Δ-1)", summary.greedy_palette_size),
    ]
    if args.json:
        _print_json(
            {
                "instance": instance.to_dict(),
                "fingerprint": instance.fingerprint(),
                "measures": dict(measures),
            }
        )
    else:
        print(
            format_table(
                ["measure", "value"],
                [[label, value] for label, value in measures],
            )
        )
    return 0


def _command_list(args: argparse.Namespace) -> int:
    families = family_registry()
    algorithms = algorithm_registry()
    policies = sorted(named_policies())
    if args.json:
        _print_json(
            {
                "families": {
                    name: {
                        "size_meaning": family.size_meaning,
                        "description": family.description,
                    }
                    for name, family in sorted(families.items())
                },
                "algorithms": {
                    name: {
                        "kind": info.kind,
                        "label": info.label,
                        "description": info.description,
                    }
                    for name, info in algorithms.items()
                },
                "policies": policies,
            }
        )
        return 0
    print(
        format_table(
            ["family", "size parameter"],
            [[name, families[name].size_meaning] for name in sorted(families)],
            title="instance families (--family)",
        )
    )
    print()
    print(
        format_table(
            ["algorithm", "kind", "description"],
            [
                [name, info.kind, info.description]
                for name, info in algorithms.items()
            ],
            title="algorithms (race entrants / RunSpec.algorithm)",
        )
    )
    print()
    print(
        format_table(
            ["policy"],
            [[name] for name in policies],
            title="parameter policies (--policy, paper solver only)",
        )
    )
    return 0


def _command_bench_core(args: argparse.Namespace) -> int:
    from repro.analysis.bench_core import smoke_check, write_bench_core

    if args.smoke:
        # CI mode: tiny live run + structural validation of the fresh
        # record and the committed one; never rewrites the record.
        record = smoke_check(args.output)
        headline = record["largest_race_instance"]
        print(
            f"bench-core smoke ok: fresh record well-formed "
            f"(identical results: {headline['identical_results']}); "
            f"committed record {args.output} validated"
        )
        return 0
    record = write_bench_core(
        args.output, repeats=args.repeats, quick=args.quick
    )
    headline = record["largest_race_instance"]
    print(
        f"scheduler core on {headline['instance']}: "
        f"{headline['before']['wall_clock_s']:.4f}s -> "
        f"{headline['after']['wall_clock_s']:.4f}s "
        f"({headline['speedup']:.1f}x speedup, "
        f"{headline['after']['messages_per_s']:,.0f} messages/s), "
        f"identical results: {headline['identical_results']}"
    )
    print(f"perf record written to {args.output}")
    return 0 if headline["identical_results"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed edge coloring (Balliu-Kuhn-Olivetti, PODC 2020)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    solve = commands.add_parser("solve", help="color a graph's edges")
    _add_instance_arguments(solve)
    solve.add_argument(
        "--policy", choices=sorted(named_policies()), default="scaled",
        help="parameter policy (default: scaled)",
    )
    solve.add_argument("--output", help="write the coloring to this file")
    solve.add_argument(
        "--breakdown", type=int, default=0, metavar="DEPTH",
        help="print the round-ledger tree to this depth",
    )
    _add_json_argument(solve)
    solve.set_defaults(handler=_command_solve)

    race = commands.add_parser(
        "race", help="compare all registered algorithms (paper solver included)"
    )
    _add_instance_arguments(race)
    _add_json_argument(race)
    race.set_defaults(handler=_command_race)

    info = commands.add_parser("info", help="print instance measurements")
    _add_instance_arguments(info)
    _add_json_argument(info)
    info.set_defaults(handler=_command_info)

    listing = commands.add_parser(
        "list", help="print the family / algorithm / policy registries"
    )
    _add_json_argument(listing)
    listing.set_defaults(handler=_command_list)

    bench = commands.add_parser(
        "bench-core",
        help="benchmark the simulation core and record BENCH_scheduler.json",
    )
    bench.add_argument(
        "--output", default="BENCH_scheduler.json",
        help="record file to write (default: BENCH_scheduler.json)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per measurement, best-of (default 3)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="smaller instances / fewer repeats (for smoke tests)",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="CI mode: tiny run + structural validation of the record "
             "file, no timing assertions, nothing written",
    )
    bench.set_defaults(handler=_command_bench_core)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
