"""Command-line interface: ``python -m repro <command>``.

A thin shell over :mod:`repro.api` — instances, algorithms, and
parameter policies all resolve through the same registries the library
exposes programmatically.  ``solve`` goes through the spec-driven
batch executor (so its runs are fingerprinted and cached); ``race``
drives the unified registry via the sweep harness, and ``info`` /
``list`` only read the registries.

Commands
--------
``solve``
    Color the edges of a graph (from an edge-list file or a generated
    family) with the paper's algorithm; optionally write the coloring.
``race``
    Run every registered algorithm — the paper solver included — on
    one instance and print the round table.
``scenario``
    Run a scenario-capable algorithm under an adversarial execution
    model (asynchrony, crash faults, message loss) and print the
    degradation observables; ``--smoke`` runs the CI structural check.
``info``
    Print instance measurements (n, m, Δ, Δ̄, palette sizes).
``list``
    Print the registries: instance families, algorithms, policies —
    and, with ``--scenarios``, the execution models.
``bench-core``
    Benchmark the simulation core (reference loop vs fast path) and
    write the perf-trajectory record ``BENCH_scheduler.json``.
``cache-prune``
    Evict least-recently-used entries of an on-disk result cache.
``shard``
    The cluster layer's coordinator verbs (:mod:`repro.cluster`):
    ``plan`` a spec batch into a sharded job directory (``--shards
    auto`` sizes the count to CPUs and batch length), print a job's
    ``status`` (done / running / stale / pending shards, with
    per-shard wall-clock and specs/sec; ``--watch N`` refreshes the
    live dashboard every N seconds), ``merge`` a completed job
    into the ordered result list, ``retry-failed`` re-queue the job's
    quarantined specs (``--drain`` re-runs them in-process, optionally
    under a fresh failure policy); ``--smoke`` runs the CI end-to-end
    check (plan → 2 worker subprocesses → merge → byte-identical to
    serial ``run_many``).
``worker``
    Drain claimable shards of a job directory through the batch
    executor — run any number of these, on any machine that shares
    the directory.  ``--on-error capture`` (the default) quarantines
    poison specs as dead letters instead of dying; ``--retries`` /
    ``--backoff-s`` / ``--timeout-s`` set the failure policy.
``chaos``
    The deterministic fault-injection harness (:mod:`repro.faults`);
    ``--smoke`` drives a seeded schedule of poison/flaky/hang specs,
    torn writes, killed workers, and a stale lease through
    ``run_sharded`` end-to-end and asserts the failure-domain
    contracts (CI step).
``serve``
    The HTTP experiment service (:mod:`repro.service`): idempotent
    ``POST /v1/run`` (identical concurrent requests coalesce onto one
    solve), streaming sharded jobs (``POST /v1/jobs`` + NDJSON
    ``GET /v1/jobs/<id>/stream``), a resumable live job event stream
    (``GET /v1/jobs/<id>/events?after=<cursor>``), registry / health /
    metrics endpoints (``GET /v1/metrics?format=prometheus`` for the
    text exposition); ``--smoke`` starts a server on an ephemeral port
    and asserts the live contracts over real HTTP (CI step).
``report``
    The fleet rollup (:mod:`repro.telemetry`): aggregate a job's (or
    any) run-ledger directory into per-algorithm/per-scenario latency
    percentiles, cache-hit and retry rates, per-worker throughput,
    ledger-driven retry advice, and the dead-letter summary;
    ``--flame`` adds the span flame rollup (self/total time by call
    path, critical path); ``--smoke`` runs a real sharded job in a
    temporary directory and structurally checks the rollup (CI step).
``top``
    Refreshing terminal dashboard over a running sharded job — local
    job directory or service job URL: per-shard state, per-worker
    throughput, retry / cache-hit / dead-letter counters, recent
    events, and an ETA from observed throughput.

``solve``, ``race``, ``scenario``, ``info``, ``list``, ``cache-prune``,
``shard``, ``worker``, ``chaos``, ``report``, and ``serve --smoke``
accept ``--json`` for machine-readable output.

Examples::

    python -m repro solve --family complete_bipartite --size 8
    python -m repro solve --input graph.txt --output colors.txt
    python -m repro race --family random_regular --size 6 --json
    python -m repro scenario --family grid --size 4 --model lossy_links \\
        --set drop=0.2 --scenario-seed 7
    python -m repro scenario --smoke
    python -m repro info --input graph.txt
    python -m repro list --scenarios
    python -m repro bench-core --output BENCH_scheduler.json
    python -m repro cache-prune --cache-dir results/ --max-entries 500
    python -m repro shard plan --specs sweep.json --job-dir jobs/sweep \\
        --shards 4
    python -m repro worker jobs/sweep
    python -m repro shard status --job-dir jobs/sweep
    python -m repro shard merge --job-dir jobs/sweep --output results.json
    python -m repro shard retry-failed --job-dir jobs/sweep --drain \\
        --retries 2 --timeout-s 30
    python -m repro shard --smoke
    python -m repro shard status --job-dir jobs/sweep --watch 2
    python -m repro top jobs/sweep
    python -m repro top http://127.0.0.1:8000/v1/jobs/<id>
    python -m repro report jobs/sweep
    python -m repro report jobs/sweep --flame
    python -m repro report --smoke
    python -m repro chaos --smoke --chaos-seed 7
    python -m repro serve --port 8000 --data-dir service-data
    python -m repro serve --smoke
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.api import (
    InstanceSpec,
    RunSpec,
    ScenarioSpec,
    algorithm_registry,
    prune_cache,
    run,
    specs_for_race,
)
from repro.analysis.harness import run_race_sweep
from repro.analysis.tables import format_series, format_table
from repro.core.params import named_policies
from repro.graphs.families import family_registry
from repro.graphs.io import write_coloring
from repro.graphs.properties import graph_summary
from repro.scenarios import model_names, scenario_capable, scenario_registry


def _instance_spec(args: argparse.Namespace) -> InstanceSpec:
    if args.input:
        return InstanceSpec(path=args.input, seed=args.seed)
    if args.family:
        return InstanceSpec(family=args.family, size=args.size, seed=args.seed)
    raise SystemExit("provide --input FILE or --family NAME")


def _add_instance_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", help="edge-list file (one 'u v' per line)")
    parser.add_argument(
        "--family",
        choices=sorted(family_registry()),
        help="generated instance family (see 'repro list')",
    )
    parser.add_argument(
        "--size", type=int, default=8, help="family size parameter (default 8)"
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="generator / ID seed (default 1)"
    )


def _add_json_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )


def _print_json(payload: object) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True, default=repr))


def _command_solve(args: argparse.Namespace) -> int:
    spec = RunSpec(
        instance=_instance_spec(args),
        algorithm="bko20",
        policy=args.policy,
    )
    result = run(spec)  # validated (properness + palette bound) inside
    if args.json:
        payload = {"spec": spec.to_dict(), "result": result.to_dict()}
        _print_json(payload)
    else:
        print(
            f"colored {len(result.coloring)} edges with "
            f"{result.colors_used()} colors "
            f"(bound 2Δ-1 = {result.palette_size}) in "
            f"{result.rounds} LOCAL rounds [policy: {result.policy_name}]"
        )
        if args.breakdown and result.ledger is not None:
            print(result.ledger.breakdown(max_depth=args.breakdown))
    if args.output:
        write_coloring(result.coloring, args.output)
        if not args.json:
            print(f"coloring written to {args.output}")
    return 0


def _command_race(args: argparse.Namespace) -> int:
    instance = _instance_spec(args)
    graph = instance.build()
    summary = graph_summary(graph)
    # Algorithm list comes from the unified registry (None = everyone,
    # the paper solver included as its own entrant).
    sweep = run_race_sweep(
        [(summary.max_edge_degree, graph)], algorithms=None, seed=args.seed
    )
    if args.json:
        _print_json(
            {
                "instance": instance.to_dict(),
                "x_label": "Δ̄",
                "xs": sweep.xs(),
                "series": {
                    name: sweep.series(name) for name in sweep.series_names()
                },
            }
        )
    else:
        series = {name: sweep.series(name) for name in sweep.series_names()}
        print(format_series("Δ̄", sweep.xs(), series, title="measured LOCAL rounds"))
    return 0


def _parse_model_params(pairs: list[str]) -> dict[str, object]:
    """Parse ``--set key=value`` pairs (ints, then floats, then strings)."""
    params: dict[str, object] = {}
    for pair in pairs:
        key, separator, text = pair.partition("=")
        if not separator or not key:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        value: object = text
        try:
            value = int(text)
        except ValueError:
            try:
                value = float(text)
            except ValueError:
                pass
        params[key] = value
    return params


def _command_scenario(args: argparse.Namespace) -> int:
    if args.smoke:
        from repro.scenarios import smoke_check

        summary = smoke_check()
        if args.json:
            _print_json(summary)
        else:
            models = ", ".join(sorted(summary["deterministic_models"]))
            print(
                "scenario smoke ok: synchronous identity pinned "
                f"(fingerprint {summary['identity_fingerprint']}); "
                f"deterministic under fixed seeds: {models}"
            )
        return 0
    spec = RunSpec(
        instance=_instance_spec(args),
        algorithm=args.algorithm,
        scenario=ScenarioSpec(
            model=args.model,
            seed=args.scenario_seed,
            params=_parse_model_params(args.set),
        ),
    )
    result = run(spec)  # survivor-validated inside for adversarial models
    if args.json:
        _print_json({"spec": spec.to_dict(), "result": result.to_dict()})
        return 0
    details = result.details
    scenario = details.get("scenario")
    if scenario is None:
        # Identity model: the run took the plain path, bit-for-bit.
        print(
            f"synchronous (identity) run: {len(result.coloring)} edges, "
            f"{result.colors_used()} colors, {result.rounds} rounds "
            f"[fingerprint {result.fingerprint[:12]}]"
        )
        return 0
    measures = [
        ("model", scenario["model"]),
        ("adversary seed", scenario["seed"]),
        ("params", ", ".join(f"{k}={v}" for k, v in sorted(scenario["params"].items())) or "-"),
        ("rounds to quiescence", details["rounds_to_quiescence"]),
        ("messages delivered", details["messages_delivered"]),
        ("messages dropped", details["messages_dropped"]),
        ("messages deferred", details["messages_deferred"]),
        ("messages duplicated", details["messages_duplicated"]),
        ("undelivered at finish", details["undelivered_at_finish"]),
        ("crashed agents", details["crashed_count"]),
        # Survivor fields are null on aborted runs (no per-agent outcome).
        ("survivors", "unknown" if details["survivors"] is None else details["survivors"]),
        ("uncolored survivors", "unknown" if details["uncolored_survivors"] is None else details["uncolored_survivors"]),
        ("conflicts on survivors", details["conflicts_on_survivors"]),
        ("proper on survivors", details["proper_on_survivors"]),
        ("aborted", details["aborted"] or "-"),
    ]
    print(
        format_table(
            ["observable", "value"],
            [[label, value] for label, value in measures],
            title=f"{spec.label()} [fingerprint {result.fingerprint[:12]}]",
        )
    )
    return 0


def _shard_timing_table(status: dict) -> str:
    """Per-shard progress rows: state, wall-clock, throughput, worker —
    plus the run-ledger's attempt accounting where a ledger exists.

    Delegates to :func:`repro.telemetry.top.shard_progress_table` — the
    exact renderer ``repro top`` and ``shard status --watch`` refresh,
    so the one-shot and live views can never drift apart.
    """
    from repro.telemetry.top import shard_progress_table

    return shard_progress_table(status)


def _command_shard(args: argparse.Namespace) -> int:
    from repro.cluster import coordinator, planner

    if args.smoke:
        summary = coordinator.smoke_check()
        if args.json:
            _print_json(summary)
        else:
            print(
                f"shard smoke ok: {summary['specs']} mixed specs over "
                f"{summary['shards']} shards via 2 worker subprocesses, "
                "merged byte-identical to serial run_many "
                f"(plan {summary['plan_fingerprint']})"
            )
        return 0
    if args.action is None:
        raise SystemExit(
            "shard needs an action (plan|status|merge|retry-failed) "
            "or --smoke"
        )
    if args.job_dir is None:
        raise SystemExit("shard actions need --job-dir DIR")
    if args.shards == "auto":
        shards: int | str = "auto"
    else:
        try:
            shards = int(args.shards)
        except ValueError:
            raise SystemExit(
                f"--shards expects an integer or 'auto', got {args.shards!r}"
            )
    if args.action == "plan":
        if not args.specs:
            raise SystemExit("shard plan needs --specs FILE (JSON spec list)")
        with open(args.specs) as handle:
            payload = json.load(handle)
        if not isinstance(payload, list):
            raise SystemExit(
                f"{args.specs} must hold a JSON list of RunSpec dicts"
            )
        specs = [RunSpec.from_dict(entry) for entry in payload]
        plan = planner.ensure_plan(specs, args.job_dir, shards=shards)
        if args.json:
            _print_json(
                {
                    "job_dir": args.job_dir,
                    "plan_fingerprint": plan.plan_fingerprint(),
                    "shards": plan.shards,
                    "specs": len(plan.specs),
                    "distinct_specs": len(set(plan.fingerprints)),
                }
            )
        else:
            print(
                f"planned {len(plan.specs)} specs "
                f"({len(set(plan.fingerprints))} distinct) into "
                f"{plan.shards} shards at {args.job_dir} "
                f"[plan {plan.plan_fingerprint()[:12]}]; start workers "
                f"with: python -m repro worker {args.job_dir}"
            )
        return 0
    if args.action == "status":
        if args.watch is not None:
            from repro.telemetry.top import run_top

            return run_top(
                args.job_dir,
                interval=args.watch,
                lease_ttl=args.lease_ttl,
            )
        status = coordinator.job_status(args.job_dir, lease_ttl=args.lease_ttl)
        if args.json:
            _print_json(status)
        else:
            print(
                f"job {args.job_dir} [plan "
                f"{status['plan_fingerprint'][:12]}]: "
                f"{len(status['done'])}/{status['shards']} shards done "
                f"({status['specs_done']}/{status['distinct_specs']} "
                f"distinct specs), {len(status['running'])} running, "
                f"{len(status['stale'])} stale, "
                f"{len(status['pending'])} pending, "
                f"{len(status['failed'])} specs quarantined"
            )
            print(_shard_timing_table(status))
            for fingerprint, failure in status["failed"].items():
                print(
                    f"  failed {fingerprint[:12]}: "
                    f"{failure['error_type']}: {failure['error_message']} "
                    f"({failure['attempts']} attempts)"
                )
            for event in status["worker_events"]:
                print(f"  worker event: {event}")
        return 0
    if args.action == "retry-failed":
        summary = coordinator.retry_failed(
            args.job_dir, fingerprints=args.fingerprint or None
        )
        drained = None
        if args.drain and summary["requeued"]:
            from repro.cluster import work_loop

            drained = work_loop(
                args.job_dir,
                lease_ttl=args.lease_ttl,
                on_error=_failure_policy(args),
            )
        if args.json:
            _print_json({**summary, "drained": drained})
        else:
            if not summary["requeued"]:
                print(
                    f"no quarantined specs to retry in {args.job_dir}"
                    + (
                        ""
                        if not summary["remaining_failures"]
                        else " (matching --fingerprint filters)"
                    )
                )
            else:
                requeued = ", ".join(f[:12] for f in summary["requeued"])
                print(
                    f"re-queued {len(summary['requeued'])} quarantined "
                    f"specs ({requeued}) — reset shards "
                    f"{summary['shards_reset']} of {args.job_dir}"
                )
            if drained is not None:
                print(
                    f"  drained in-process: {drained['specs_run']} specs "
                    f"re-run across shards {drained['completed']}; "
                    + (
                        "job complete"
                        if drained["job_complete"]
                        else f"shards {drained['outstanding']} outstanding"
                    )
                )
            elif summary["requeued"]:
                print(
                    "  re-run them with: python -m repro worker "
                    f"{args.job_dir}  (or shard retry-failed --drain)"
                )
            if summary["requeued"]:
                # Ledger-driven retry advice: if flaky specs previously
                # recovered on retry, say what budget was enough.
                try:
                    from repro.telemetry import rollup as _rollup

                    advice = _rollup(args.job_dir).get("retry_advice") or {}
                except Exception:
                    advice = {}
                suggested = advice.get("suggested_retries", 0)
                if suggested:
                    print(
                        f"  retry advice: flaky specs recovered within "
                        f"{suggested} retr"
                        f"{'y' if suggested == 1 else 'ies'} — try "
                        f"--retries {suggested} (details: python -m repro "
                        f"report {args.job_dir})"
                    )
                else:
                    print(
                        "  retry advice: no flaky recovery in the ledger "
                        "yet — python -m repro report "
                        f"{args.job_dir} breaks down flaky vs poison rates"
                    )
        return 0
    # merge
    results = coordinator.merge_results(None, args.job_dir)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(
                [result.to_dict() for result in results],
                handle,
                sort_keys=True,
                default=repr,
            )
    failures = sum(1 for result in results if result.is_failure())
    if args.json:
        _print_json(
            {
                "job_dir": args.job_dir,
                "results": len(results),
                "failures": failures,
                "result_fingerprints": [
                    result.result_fingerprint() for result in results
                ],
                "output": args.output,
            }
        )
    else:
        print(
            f"merged {len(results)} results from {args.job_dir}"
            + (f" ({failures} captured failures)" if failures else "")
            + (f" -> {args.output}" if args.output else "")
        )
        for result in results:
            marker = "FAILED " if result.is_failure() else ""
            print(
                f"  {marker}{result.result_fingerprint()[:12]}  {result.name}"
            )
    return 0


def _failure_policy(args: argparse.Namespace) -> "object":
    from repro.api import FailurePolicy

    return FailurePolicy(
        on_error=args.on_error,
        retries=args.retries,
        backoff_s=args.backoff_s,
        timeout_s=args.timeout_s,
    )


def _command_worker(args: argparse.Namespace) -> int:
    from repro.cluster import work_loop
    from repro.faults import install_from_env

    # A coordinator running a chaos schedule ships its fault plan in
    # the environment; ordinary workers find nothing and install nothing.
    install_from_env()
    summary = work_loop(
        args.job_dir,
        worker_id=args.worker_id,
        lease_ttl=args.lease_ttl,
        validate=not args.no_validate,
        on_error=_failure_policy(args),
    )
    if args.json:
        _print_json(summary)
    else:
        outstanding = summary["outstanding"]
        print(
            f"worker {summary['worker']} drained "
            f"{len(summary['completed'])} shards "
            f"({summary['specs_run']} specs run) from {args.job_dir}; "
            + (
                "job complete"
                if summary["job_complete"]
                else f"shards {outstanding} still outstanding "
                     "(leased to live workers)"
            )
        )
    return 0


def _command_chaos(args: argparse.Namespace) -> int:
    if not args.smoke:
        raise SystemExit(
            "chaos currently has one mode: --smoke (the seeded "
            "end-to-end fault schedule); compose custom schedules "
            "programmatically via repro.faults"
        )
    from repro.faults import chaos_smoke

    summary = chaos_smoke(args.chaos_seed)
    if args.json:
        _print_json(summary)
    else:
        print(
            f"chaos smoke ok (seed {summary['seed']}): "
            f"{summary['specs']} specs under fault plan "
            f"{summary['plan_fingerprint']}; slots "
            f"{summary['failed_slots']} quarantined "
            f"({', '.join(summary['failed_fingerprints'])}), survivors "
            "byte-identical to the fault-free serial baseline, failure "
            "records reproduced by a serial replay "
            f"[{summary['worker_kills_observed']} worker kill(s) observed]"
        )
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from repro.telemetry import format_report, report_smoke, rollup

    if args.smoke:
        summary = report_smoke()
        if args.json:
            _print_json(summary)
        else:
            print(
                f"report smoke ok: {summary['specs']} specs "
                f"({summary['specs_distinct']} distinct) through a real "
                f"sharded job -> {summary['run_records']} ledger run "
                f"records across {summary['workers']} worker(s), "
                f"cache-hit rate {summary['cache_hit_rate']:.2f}, "
                f"report rendered ({summary['report_chars']} chars)"
            )
        return 0
    if not args.dir:
        raise SystemExit("report needs a <job_dir|ledger_dir> (or --smoke)")
    summary = rollup(args.dir)
    flame = None
    if args.flame:
        from repro.telemetry import flame_rollup

        flame = flame_rollup(args.dir)
        summary = {**summary, "flame": flame}
    if args.json:
        _print_json(summary)
        return 0
    if summary["run_records"] == 0:
        print(
            f"no run records under {summary['ledger_dir']} — "
            "run the job with the ledger on (cluster workers default it "
            "on; pass ledger_dir=/ledger_context() elsewhere)"
        )
        return 1
    print(format_report(summary))
    if flame is not None:
        from repro.telemetry import format_flame

        print()
        print(format_flame(flame))
    return 0


def _command_top(args: argparse.Namespace) -> int:
    from repro.telemetry.top import run_top

    return run_top(
        args.target,
        interval=args.interval,
        once=args.once,
        lease_ttl=args.lease_ttl,
    )


def _command_cache_prune(args: argparse.Namespace) -> int:
    removed = prune_cache(args.cache_dir, args.max_entries)
    if args.json:
        _print_json(
            {
                "cache_dir": args.cache_dir,
                "max_entries": args.max_entries,
                "removed": removed,
            }
        )
    else:
        print(
            f"pruned {removed} least-recently-used entries from "
            f"{args.cache_dir} (budget {args.max_entries})"
        )
    return 0


def _command_info(args: argparse.Namespace) -> int:
    instance = _instance_spec(args)
    summary = graph_summary(instance.build())
    measures = [
        ("nodes (n)", summary.nodes),
        ("edges (m)", summary.edges),
        ("max degree (Δ)", summary.max_degree),
        ("max edge degree (Δ̄)", summary.max_edge_degree),
        ("greedy palette (2Δ-1)", summary.greedy_palette_size),
    ]
    if args.json:
        _print_json(
            {
                "instance": instance.to_dict(),
                "fingerprint": instance.fingerprint(),
                "measures": dict(measures),
            }
        )
    else:
        print(
            format_table(
                ["measure", "value"],
                [[label, value] for label, value in measures],
            )
        )
    return 0


def _command_list(args: argparse.Namespace) -> int:
    families = family_registry()
    algorithms = algorithm_registry()
    policies = sorted(named_policies())
    if args.json:
        payload = {
            "families": {
                name: {
                    "size_meaning": family.size_meaning,
                    "description": family.description,
                }
                for name, family in sorted(families.items())
            },
            "algorithms": {
                name: {
                    "kind": info.kind,
                    "label": info.label,
                    "description": info.description,
                }
                for name, info in algorithms.items()
            },
            "policies": policies,
        }
        if args.scenarios:
            payload["scenarios"] = {
                name: {
                    "identity": model.identity,
                    "description": model.description,
                    "params": dict(model.param_docs),
                }
                for name, model in scenario_registry().items()
            }
            payload["scenario_capable_algorithms"] = scenario_capable()
        _print_json(payload)
        return 0
    if args.scenarios:
        print(
            format_table(
                ["model", "parameters", "description"],
                [
                    [
                        name,
                        ", ".join(sorted(model.param_docs)) or "-",
                        model.description,
                    ]
                    for name, model in scenario_registry().items()
                ],
                title="execution models (scenario --model / ScenarioSpec.model)",
            )
        )
        print()
        print(
            format_table(
                ["algorithm"],
                [[name] for name in scenario_capable()],
                title="scenario-capable algorithms (have a message-passing program)",
            )
        )
        print()
    print(
        format_table(
            ["family", "size parameter"],
            [[name, families[name].size_meaning] for name in sorted(families)],
            title="instance families (--family)",
        )
    )
    print()
    print(
        format_table(
            ["algorithm", "kind", "description"],
            [
                [name, info.kind, info.description]
                for name, info in algorithms.items()
            ],
            title="algorithms (race entrants / RunSpec.algorithm)",
        )
    )
    print()
    print(
        format_table(
            ["policy"],
            [[name] for name in policies],
            title="parameter policies (--policy, paper solver only)",
        )
    )
    return 0


def _command_bench_core(args: argparse.Namespace) -> int:
    from repro.analysis.bench_core import (
        smoke_check,
        write_bench_core,
        write_profile,
    )

    if args.profile:
        # Profile-only mode: cProfile the engines' hot loops and write
        # the sidecar next to the record; the record itself is not
        # rewritten (pair with a plain bench-core run for that).
        sidecar = write_profile(args.output, quick=args.quick)
        print(f"profile sidecar written to {sidecar}")
        return 0
    if args.smoke:
        # CI mode: tiny live run + structural validation of the fresh
        # record and the committed one; never rewrites the record.
        record = smoke_check(args.output)
        headline = record["largest_race_instance"]
        print(
            f"bench-core smoke ok: fresh record well-formed "
            f"(identical results: {headline['identical_results']}); "
            f"committed record {args.output} validated"
        )
        return 0
    record = write_bench_core(
        args.output, repeats=args.repeats, quick=args.quick
    )
    headline = record["largest_race_instance"]
    print(
        f"scheduler core on {headline['instance']}: "
        f"{headline['before']['wall_clock_s']:.4f}s -> "
        f"{headline['after']['wall_clock_s']:.4f}s "
        f"({headline['speedup']:.1f}x speedup, "
        f"{headline['after']['messages_per_s']:,.0f} messages/s), "
        f"identical results: {headline['identical_results']}"
    )
    print(f"perf record written to {args.output}")
    return 0 if headline["identical_results"] else 1


def _command_serve(args: argparse.Namespace) -> int:
    if args.smoke:
        from repro.service import smoke_check

        summary = smoke_check()
        if args.json:
            _print_json(summary)
        else:
            print(
                f"serve smoke ok at {summary['address']}: "
                f"{summary['clients']} concurrent identical POSTs -> "
                f"{summary['executions']} execution "
                f"({summary['coalesced']} coalesced); sharded job "
                f"{summary['job']}… streamed {summary['streamed']} results "
                "byte-identical to serial run_many; "
                f"{summary['events']} job events resumed exactly-once; "
                f"prometheus exposition parsed "
                f"({summary['prometheus_samples']} samples); "
                f"{summary['hygiene']}"
            )
        return 0
    from repro.service import ReproService, make_server

    service = ReproService(
        args.data_dir,
        validate=not args.no_validate,
        cache_max_entries=args.cache_max_entries,
        max_local_workers=args.max_local_workers,
    )
    server = make_server(service, host=args.host, port=args.port, quiet=False)
    host, port = server.server_address[:2]
    print(
        f"repro service listening on http://{host}:{port} "
        f"(data dir {args.data_dir}); Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.shutdown()
        server.server_close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed edge coloring (Balliu-Kuhn-Olivetti, PODC 2020)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    solve = commands.add_parser("solve", help="color a graph's edges")
    _add_instance_arguments(solve)
    solve.add_argument(
        "--policy", choices=sorted(named_policies()), default="scaled",
        help="parameter policy (default: scaled)",
    )
    solve.add_argument("--output", help="write the coloring to this file")
    solve.add_argument(
        "--breakdown", type=int, default=0, metavar="DEPTH",
        help="print the round-ledger tree to this depth",
    )
    _add_json_argument(solve)
    solve.set_defaults(handler=_command_solve)

    race = commands.add_parser(
        "race", help="compare all registered algorithms (paper solver included)"
    )
    _add_instance_arguments(race)
    _add_json_argument(race)
    race.set_defaults(handler=_command_race)

    scenario = commands.add_parser(
        "scenario",
        help="run an algorithm under an adversarial execution model",
    )
    _add_instance_arguments(scenario)
    scenario.add_argument(
        "--algorithm", default="greedy_sequential",
        help="scenario-capable algorithm (see 'repro list --scenarios'; "
             "default: greedy_sequential)",
    )
    scenario.add_argument(
        "--model", choices=model_names(), default="lossy_links",
        help="execution model (default: lossy_links)",
    )
    scenario.add_argument(
        "--scenario-seed", type=int, default=0,
        help="adversary seed — fixes the drop/crash/quota schedule "
             "(default 0)",
    )
    scenario.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        help="model parameter, repeatable (e.g. --set drop=0.2 --set f=3)",
    )
    scenario.add_argument(
        "--smoke", action="store_true",
        help="CI mode: identity bit-for-bit + per-model determinism "
             "checks on a tiny instance, nothing written",
    )
    _add_json_argument(scenario)
    scenario.set_defaults(handler=_command_scenario)

    info = commands.add_parser("info", help="print instance measurements")
    _add_instance_arguments(info)
    _add_json_argument(info)
    info.set_defaults(handler=_command_info)

    listing = commands.add_parser(
        "list", help="print the family / algorithm / policy registries"
    )
    listing.add_argument(
        "--scenarios", action="store_true",
        help="also list execution models and scenario-capable algorithms",
    )
    _add_json_argument(listing)
    listing.set_defaults(handler=_command_list)

    shard = commands.add_parser(
        "shard",
        help="plan / inspect / merge / retry a sharded multi-worker job",
    )
    shard.add_argument(
        "action", nargs="?",
        choices=["plan", "status", "merge", "retry-failed"],
        help="coordinator verb (omit with --smoke)",
    )
    shard.add_argument(
        "--job-dir",
        help="shared job directory all workers coordinate through",
    )
    shard.add_argument(
        "--specs", metavar="FILE",
        help="plan: JSON file holding a list of RunSpec dicts",
    )
    shard.add_argument(
        "--shards", default="2",
        help="plan: number of work units to split the batch into, or "
             "'auto' to size from CPU count and batch length (default 2)",
    )
    shard.add_argument(
        "--lease-ttl", type=float, default=60.0,
        help="status / retry-failed --drain: seconds without a heartbeat "
             "before a lease counts as stale (default 60)",
    )
    shard.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="status: refresh the live dashboard (the `repro top` "
             "renderer) every SECONDS until the job completes",
    )
    shard.add_argument(
        "--output", metavar="FILE",
        help="merge: also write the ordered result dicts to this JSON file",
    )
    shard.add_argument(
        "--fingerprint", action="append", metavar="FP",
        help="retry-failed: restrict to this quarantined spec "
             "fingerprint (repeatable; default: all)",
    )
    shard.add_argument(
        "--drain", action="store_true",
        help="retry-failed: immediately re-run the re-queued specs "
             "in-process (under --on-error/--retries/--backoff-s/"
             "--timeout-s)",
    )
    shard.add_argument(
        "--on-error", choices=["raise", "capture"], default="capture",
        help="retry-failed --drain: failure policy (default: capture)",
    )
    shard.add_argument(
        "--retries", type=int, default=0,
        help="retry-failed --drain: extra attempts per failing spec "
             "(default 0)",
    )
    shard.add_argument(
        "--backoff-s", type=float, default=0.0,
        help="retry-failed --drain: base seconds of deterministic "
             "backoff between attempts (default 0)",
    )
    shard.add_argument(
        "--timeout-s", type=float, default=None,
        help="retry-failed --drain: per-attempt wall-clock budget "
             "(default: none)",
    )
    shard.add_argument(
        "--smoke", action="store_true",
        help="CI mode: plan a tiny mixed batch, drain it with 2 worker "
             "subprocesses, merge, and assert byte-identity with serial "
             "run_many (temporary directory, nothing kept)",
    )
    _add_json_argument(shard)
    shard.set_defaults(handler=_command_shard)

    worker = commands.add_parser(
        "worker",
        help="drain claimable shards of a job directory (run many of these)",
    )
    worker.add_argument(
        "job_dir",
        help="the shared job directory (see 'repro shard plan')",
    )
    worker.add_argument(
        "--worker-id",
        help="lease identity (default: hostname:pid)",
    )
    worker.add_argument(
        "--lease-ttl", type=float, default=60.0,
        help="seconds without a heartbeat before a foreign lease may be "
             "reclaimed (default 60)",
    )
    worker.add_argument(
        "--no-validate", action="store_true",
        help="skip independent re-validation of every produced coloring",
    )
    worker.add_argument(
        "--on-error", choices=["raise", "capture"], default="capture",
        help="failure policy: capture quarantines poison specs as dead "
             "letters; raise dies on the first failure (default: capture)",
    )
    worker.add_argument(
        "--retries", type=int, default=0,
        help="extra attempts per failing spec (default 0)",
    )
    worker.add_argument(
        "--backoff-s", type=float, default=0.0,
        help="base seconds of deterministic backoff between attempts "
             "(doubles per retry; default 0 = immediate)",
    )
    worker.add_argument(
        "--timeout-s", type=float, default=None,
        help="per-attempt wall-clock budget in seconds (default: none)",
    )
    _add_json_argument(worker)
    worker.set_defaults(handler=_command_worker)

    chaos = commands.add_parser(
        "chaos",
        help="deterministic fault-injection harness (repro.faults)",
    )
    chaos.add_argument(
        "--smoke", action="store_true",
        help="CI mode: drive a seeded mixed-fault schedule through "
             "run_sharded end-to-end and assert the failure-domain "
             "contracts (temporary directory, nothing kept)",
    )
    chaos.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed of the fault schedule (default 0)",
    )
    _add_json_argument(chaos)
    chaos.set_defaults(handler=_command_chaos)

    report = commands.add_parser(
        "report",
        help="roll a run-ledger directory up into fleet metrics",
    )
    report.add_argument(
        "dir", nargs="?",
        help="a job directory (its ledger/ is found automatically) or a "
             "ledger directory itself",
    )
    report.add_argument(
        "--smoke", action="store_true",
        help="CI mode: run a small batch through a real sharded job in a "
             "temporary directory and structurally check the rollup "
             "(nothing kept)",
    )
    report.add_argument(
        "--flame", action="store_true",
        help="also render the span flame rollup: self/total time by "
             "call path plus the critical path (with --json, adds a "
             "'flame' key)",
    )
    _add_json_argument(report)
    report.set_defaults(handler=_command_report)

    top = commands.add_parser(
        "top",
        help="refreshing live dashboard over a running sharded job",
    )
    top.add_argument(
        "target",
        help="a job directory, or a service job URL "
             "(http://host:port/v1/jobs/<id>)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes (default 2)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )
    top.add_argument(
        "--lease-ttl", type=float, default=60.0,
        help="job-directory targets: lease staleness window for the "
             "shard state columns (default 60)",
    )
    top.set_defaults(handler=_command_top)

    cache = commands.add_parser(
        "cache-prune",
        help="evict least-recently-used entries of an on-disk result cache",
    )
    cache.add_argument(
        "--cache-dir", required=True,
        help="the cache directory (as passed to run/run_many cache_dir=)",
    )
    cache.add_argument(
        "--max-entries", type=int, required=True,
        help="number of most-recently-used entries to keep",
    )
    _add_json_argument(cache)
    cache.set_defaults(handler=_command_cache_prune)

    bench = commands.add_parser(
        "bench-core",
        help="benchmark the simulation core and record BENCH_scheduler.json",
    )
    bench.add_argument(
        "--output", default="BENCH_scheduler.json",
        help="record file to write (default: BENCH_scheduler.json)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per measurement, best-of (default 3)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="smaller instances / fewer repeats (for smoke tests)",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="CI mode: tiny run + structural validation of the record "
             "file, no timing assertions, nothing written",
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="cProfile the engines' hot loops and write the "
             "<record>_profile.txt sidecar instead of the record",
    )
    bench.set_defaults(handler=_command_bench_core)

    serve = commands.add_parser(
        "serve",
        help="run the idempotent HTTP experiment service",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8000,
        help="port to bind, 0 for ephemeral (default 8000)",
    )
    serve.add_argument(
        "--data-dir", default="service-data",
        help="root for the result cache and job directories "
             "(default service-data)",
    )
    serve.add_argument(
        "--max-local-workers", type=int, default=2,
        help="cap on worker subprocesses a job may request (default 2)",
    )
    serve.add_argument(
        "--cache-max-entries", type=int, default=None,
        help="LRU budget for the single-run cache (default: unbounded)",
    )
    serve.add_argument(
        "--no-validate", action="store_true",
        help="skip independent validation of produced colorings",
    )
    serve.add_argument(
        "--smoke", action="store_true",
        help="CI mode: start an in-process server on an ephemeral port "
             "and assert the live contracts (idempotent concurrency, "
             "streaming byte-identity, strict 400s) over real HTTP",
    )
    _add_json_argument(serve)
    serve.set_defaults(handler=_command_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
