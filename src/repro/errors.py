"""Exception hierarchy for the ``repro`` library.

Every error raised by this library derives from :class:`ReproError`, so
downstream users can catch a single base class.  The more specific
subclasses distinguish between *user* mistakes (bad inputs), *model*
violations (an algorithm tried to do something the LOCAL model forbids)
and *algorithm* failures (an internal invariant of one of the paper's
procedures was violated — these indicate a bug and are always worth
reporting).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidInstanceError(ReproError, ValueError):
    """An input instance violates a documented precondition.

    Examples: a list edge coloring instance where some list is smaller
    than ``deg(e) + 1``, a palette that does not cover the lists, or a
    graph with self-loops.
    """


class ModelViolationError(ReproError, RuntimeError):
    """A simulated node attempted an operation the LOCAL model forbids.

    Examples: sending a message to a non-neighbor, or reading another
    node's private state outside of message passing.
    """


class AlgorithmInvariantError(ReproError, RuntimeError):
    """An internal invariant of one of the paper's procedures failed.

    These errors indicate a bug in the implementation (or an instance
    outside the regime an algorithm supports), never a user mistake.
    """


class ColoringValidationError(ReproError, AssertionError):
    """A produced coloring failed independent validation.

    Raised by :mod:`repro.coloring.verify` when a coloring is not a
    proper edge coloring, uses a color outside an edge's list, or
    exceeds a defect bound it promised to satisfy.
    """


class RoundLimitExceededError(ReproError, RuntimeError):
    """A simulated execution exceeded its configured round budget."""


class ParameterError(ReproError, ValueError):
    """A tuning parameter is outside its allowed range.

    Examples: a slack parameter smaller than one, a color-space split
    parameter ``p`` outside ``[2, C]``, or a non-positive defect target.
    """
