"""Exception hierarchy for the ``repro`` library.

Every error raised by this library derives from :class:`ReproError`, so
downstream users can catch a single base class.  The more specific
subclasses distinguish between *user* mistakes (bad inputs), *model*
violations (an algorithm tried to do something the LOCAL model forbids)
and *algorithm* failures (an internal invariant of one of the paper's
procedures was violated — these indicate a bug and are always worth
reporting).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidInstanceError(ReproError, ValueError):
    """An input instance violates a documented precondition.

    Examples: a list edge coloring instance where some list is smaller
    than ``deg(e) + 1``, a palette that does not cover the lists, or a
    graph with self-loops.
    """


class ModelViolationError(ReproError, RuntimeError):
    """A simulated node attempted an operation the LOCAL model forbids.

    Examples: sending a message to a non-neighbor, or reading another
    node's private state outside of message passing.
    """


class AlgorithmInvariantError(ReproError, RuntimeError):
    """An internal invariant of one of the paper's procedures failed.

    These errors indicate a bug in the implementation (or an instance
    outside the regime an algorithm supports), never a user mistake.
    """


class ColoringValidationError(ReproError, AssertionError):
    """A produced coloring failed independent validation.

    Raised by :mod:`repro.coloring.verify` when a coloring is not a
    proper edge coloring, uses a color outside an edge's list, or
    exceeds a defect bound it promised to satisfy.
    """


class RoundLimitExceededError(ReproError, RuntimeError):
    """A simulated execution exceeded its configured round budget."""


class ParameterError(ReproError, ValueError):
    """A tuning parameter is outside its allowed range.

    Examples: a slack parameter smaller than one, a color-space split
    parameter ``p`` outside ``[2, C]``, or a non-positive defect target.
    """


class EngineUnavailableError(ReproError, RuntimeError):
    """An explicitly requested execution engine cannot run here.

    Raised when ``engine="numpy"`` is requested but numpy cannot be
    imported.  ``engine="auto"`` never raises this — it degrades to the
    always-correct list engine instead.
    """


class SpecFormatError(ReproError, ValueError):
    """A serialized spec carries fields this library does not understand.

    Raised by the ``from_dict`` constructors of
    :class:`repro.api.InstanceSpec` / :class:`repro.api.RunSpec` /
    :class:`repro.scenarios.ScenarioSpec` when a payload contains
    unknown keys.  Silently dropping them would let a spec written by a
    newer library version round-trip into a *different* experiment (and
    a different fingerprint), so unknown fields are an error, never a
    warning.
    """


def check_known_keys(payload, allowed, what: str) -> None:
    """Raise :class:`SpecFormatError` on keys ``from_dict`` would drop.

    Shared by every spec deserializer (it lives here, next to the error
    it raises, because the api and scenarios spec layers both use it):
    a payload written by a newer (or foreign) library version must fail
    loudly instead of silently round-tripping into a different
    experiment.
    """
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise SpecFormatError(
            f"{what} payload carries unknown fields {unknown} "
            f"(known: {sorted(allowed)}); refusing to drop them — "
            "the payload may come from a newer library version"
        )


class ScenarioError(ReproError, ValueError):
    """A scenario description cannot be executed.

    Examples: an unknown execution model, a model parameter outside its
    range, or an algorithm that has no message-passing program and
    therefore cannot run under an adversarial execution model.
    """


class ClusterError(ReproError, RuntimeError):
    """A sharded job's on-disk state is unusable or inconsistent.

    Examples: a job directory whose manifest does not match the specs
    handed to the coordinator, a sealed shard-result file that fails
    its integrity check, or a merge attempted while shards are still
    missing.  Stale *leases* are never an error — crashed workers are
    an expected execution condition and their shards are reclaimed.
    """


class SpecTimeoutError(ReproError, TimeoutError):
    """A single spec execution exceeded its ``timeout_s`` budget.

    Raised by the executor's per-attempt deadline
    (:func:`repro.api.failures.execution_deadline`) when one attempt at
    one spec runs past the failure policy's ``timeout_s``.  Under
    ``on_error="capture"`` it is recorded in a
    :class:`~repro.results.FailedResult` like any other per-spec
    failure; under ``on_error="raise"`` it propagates.
    """


class InjectedFault(ReproError, RuntimeError):
    """A failure deliberately injected by the chaos harness.

    Raised by :mod:`repro.faults` fault hooks (``poison`` / ``flaky``
    fault kinds) so injected failures are distinguishable from organic
    ones in captured failure records and dead-letter files.
    """


class FaultError(ReproError, ValueError):
    """A fault-injection description cannot be executed.

    Examples: an unknown fault kind, a fault parameter outside its
    range, or a fault plan payload that fails to deserialize.
    """


class ServiceError(ReproError, RuntimeError):
    """The experiment service breached one of its contracts.

    Raised by the service smoke (``python -m repro serve --smoke``)
    when a live check fails — e.g. concurrent identical ``POST
    /v1/run`` requests did not coalesce onto exactly one solve, or a
    streamed job result is not byte-identical to serial ``run_many``.
    Client-visible request errors are *not* exceptions: the HTTP layer
    reports them as 4xx JSON bodies.
    """
