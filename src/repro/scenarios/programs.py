"""Scenario programs: message-passing workloads an adversary can drive.

An execution model can only perturb an algorithm that actually
*exchanges messages*.  Most registry entries (the paper solver, the
ledger-accounted baselines) compute centrally with round accounting —
there is nothing for an adversary to delay, drop, or crash.  This
module therefore keeps its own capability table: algorithm name ->
:class:`ScenarioProgram`, a genuinely distributed
:class:`~repro.model.algorithm.NodeAlgorithm` realisation of that
algorithm, runnable on the columnar engine with a delivery hook
installed.  Asking for a scenario run of an algorithm without a
program raises a clear :class:`~repro.errors.ScenarioError` naming the
capable ones; registering a new program is one
:func:`register_program` call.

Three programs ship:

``greedy_sequential``
    The sequential greedy baseline as a distributed sweep on the line
    graph: the launcher ranks the edge-agents by their (seeded)
    derived IDs, and agent ``r`` picks its color in round ``r + 1``,
    greedily avoiding every color announced so far.  Colored agents
    *retransmit* their color every round until global halting, which
    makes the program naturally fault-tolerant — a dropped or deferred
    announcement usually arrives before it matters, so degradation
    under adversarial schedules is gradual and measurable.
``linial_greedy``
    The two-stage [Lin87]-style pipeline (Linial color reduction, then
    a class sweep) from :mod:`repro.primitives.distributed_pipeline`,
    run stage after stage under *one* adversary timeline.  Linial's
    reduction assumes its invariants hold round by round, so harsh
    schedules can abort it — the executor records the abort as an
    outcome instead of crashing the sweep (brittleness under
    asynchrony is itself a measurement).
``randomized_luby``
    The randomized ``O(log n)`` trial baseline [ABI86/Lub86 style] as a
    genuinely distributed protocol: each round every uncolored agent
    draws a uniform proposal from its residual list (using a private
    per-agent RNG derived from the run seed, so the randomness is
    independent of message timing), announces it, and keeps it if no
    neighbor proposed or already owns the same color.  Colored agents
    rebroadcast their final color every round; an agent halts once all
    its neighbors are final — or, so crashed neighbors cannot wedge
    the run, after ``patience`` consecutive silent rounds.  *Liveness*
    is fault-tolerant — losses lower the per-round success rate but
    never wedge the run; *safety* degrades measurably — symmetric
    proposal loss can finalize a conflict, recorded (like the sibling
    programs' conflicts) in ``conflicts_on_survivors``, not forbidden.

Agents of both programs are the *edges* of the underlying graph, so
"crash a node" at the model layer means "crash an edge-agent" here;
survivor-induced validation happens over the edges whose agents
survived.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import networkx as nx

from repro.errors import AlgorithmInvariantError, ScenarioError
from repro.graphs.edges import Edge, edge_set
from repro.graphs.properties import assign_unique_ids, max_degree
from repro.model.algorithm import NodeAlgorithm, NodeContext
from repro.model.edge_network import edge_identifier, line_graph_network
from repro.model.scheduler import Scheduler
from repro.primitives.node_algorithms import LinialColorReductionAlgorithm
from repro.scenarios.models import ScenarioHook


@dataclass(frozen=True)
class ProgramOutcome:
    """What one scenario program run observed.

    Attributes
    ----------
    coloring:
        Edge -> color over the *surviving, colored* agents only.
    rounds:
        Simulated rounds to quiescence (all survivors halted), summed
        over the program's stages.
    messages:
        Messages actually delivered into the columns (the hook's
        counters hold the dropped/deferred/duplicated complement).
    crashed_edges:
        Edges whose agents the adversary crashed (no output).
    uncolored_survivors:
        Surviving agents that finished without a color (their decision
        inputs never arrived).
    extra:
        Program-specific JSON-safe observables (e.g. the intermediate
        class-palette size of the pipeline).
    """

    coloring: dict[Edge, int]
    rounds: int
    messages: int
    crashed_edges: list[Edge] = field(default_factory=list)
    uncolored_survivors: int = 0
    extra: dict[str, Any] = field(default_factory=dict)


#: Signature of a program runner: build the network(s), run the
#: scheduler(s) with ``delivery_hook=hook``, and report what happened.
ProgramRunner = Callable[..., ProgramOutcome]


@dataclass(frozen=True)
class ScenarioProgram:
    """One capability-table entry.

    ``params`` names the run-level keyword arguments
    (``RunSpec.params``) the runner accepts — the executor rejects
    anything else with a :class:`~repro.errors.ScenarioError` naming
    this set, so a typo'd parameter fails loudly instead of silently
    configuring nothing.
    """

    name: str
    description: str
    runner: ProgramRunner = field(repr=False)
    params: frozenset[str] = frozenset({"max_rounds"})


class ResilientGreedySweepAlgorithm(NodeAlgorithm):
    """A class sweep that retransmits, built to degrade gracefully.

    Like :class:`~repro.primitives.node_algorithms.GreedyClassSweepAlgorithm`
    — in round ``r`` the agents of class ``r`` pick the smallest list
    color no neighbor has announced — but hardened for adversarial
    delivery: a colored agent rebroadcasts its color *every* round
    until halting (so a single dropped announcement is not fatal), and
    class assignments arrive from the launcher rather than over the
    wire.  Under the identity model the sweep is exactly sequential
    greedy in class order; under faults the only possible failure is a
    *conflict* (two neighbors picking the same color after a lost
    announcement), which the executor measures rather than forbids.
    """

    def __init__(
        self,
        classes: Mapping[Any, int],
        lists: Mapping[Any, frozenset[int]],
        class_count: int,
    ) -> None:
        self._classes = dict(classes)
        self._lists = dict(lists)
        self._class_count = class_count

    def initialize(self, ctx: NodeContext) -> None:
        ctx.state["class"] = self._classes[ctx.node]
        ctx.state["taken"] = set()
        ctx.state["round"] = 0
        ctx.state["color"] = None

    def compose_messages(self, ctx: NodeContext) -> Mapping[int, Any]:
        color = ctx.state["color"]
        if color is None:
            return {}
        return dict.fromkeys(range(ctx.degree), color)

    def receive_messages(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        taken = ctx.state["taken"]
        taken.update(inbox.values())
        if ctx.state["round"] == ctx.state["class"] and ctx.state["color"] is None:
            free = [c for c in self._lists[ctx.node] if c not in taken]
            if not free:
                # Cannot happen under the identity model (the palette
                # strictly exceeds the agent's degree); under faults a
                # neighborhood could in principle over-announce via
                # duplication, so fail loudly rather than miscolor.
                raise AlgorithmInvariantError(
                    f"agent {ctx.unique_id} ran out of list colors"
                )
            ctx.state["color"] = min(free)
        ctx.state["round"] += 1
        # One extra round after the last class lets the final picks be
        # announced before everyone halts.
        if ctx.state["round"] > self._class_count:
            ctx.halt()

    def output(self, ctx: NodeContext) -> int | None:
        return ctx.state["color"]


def _greedy_palette(graph: nx.Graph) -> frozenset[int]:
    delta = max_degree(graph)
    return frozenset(range(1, max(2, 2 * delta)))


def _collect(
    graph: nx.Graph, outputs: Mapping[Any, int | None]
) -> tuple[dict[Edge, int], list[Edge], int]:
    """Split scheduler outputs into (coloring, crashed edges, uncolored)."""
    coloring = {
        edge: color for edge, color in outputs.items() if color is not None
    }
    uncolored = sum(1 for color in outputs.values() if color is None)
    crashed = [edge for edge in edge_set(graph) if edge not in outputs]
    return coloring, crashed, uncolored


def _run_greedy_sweep(
    graph: nx.Graph,
    *,
    seed: int,
    hook: ScenarioHook,
    max_rounds: int = 100_000,
) -> ProgramOutcome:
    """Distributed sequential greedy (ID-rank sweep) under ``hook``."""
    if graph.number_of_edges() == 0:
        return ProgramOutcome(coloring={}, rounds=0, messages=0)
    node_ids = assign_unique_ids(graph, seed=seed)
    network = line_graph_network(graph, node_ids=node_ids)
    edges = edge_set(graph)
    # Rank the agents by their derived IDs: the run seed scatters the
    # node IDs, so it also permutes the sweep order — deterministic,
    # and locally known to every agent's launcher-side twin.
    max_id = max(node_ids.values())
    order = sorted(edges, key=lambda edge: edge_identifier(edge, node_ids, max_id))
    classes = {edge: rank for rank, edge in enumerate(order)}
    palette = _greedy_palette(graph)
    lists = {edge: palette for edge in edges}
    execution = Scheduler(
        network, max_rounds=max_rounds, delivery_hook=hook
    ).run(ResilientGreedySweepAlgorithm(classes, lists, len(edges)))
    coloring, crashed, uncolored = _collect(graph, execution.outputs)
    return ProgramOutcome(
        coloring=coloring,
        rounds=execution.rounds,
        messages=execution.messages_sent,
        crashed_edges=crashed,
        uncolored_survivors=uncolored,
    )


def _run_linial_pipeline(
    graph: nx.Graph,
    *,
    seed: int,
    hook: ScenarioHook,
    max_rounds: int = 100_000,
) -> ProgramOutcome:
    """The two-stage Linial+sweep pipeline under one adversary timeline."""
    if graph.number_of_edges() == 0:
        return ProgramOutcome(coloring={}, rounds=0, messages=0)
    node_ids = assign_unique_ids(graph, seed=seed)
    network = line_graph_network(graph, node_ids=node_ids)
    edges = edge_set(graph)

    # Stage 1: Linial color reduction to an O(Δ̄²) class assignment.
    stage1 = Scheduler(
        network, max_rounds=max_rounds, delivery_hook=hook
    ).run(LinialColorReductionAlgorithm(id_space=network.max_id()))
    survivors_classes = dict(stage1.outputs)
    class_count = max(survivors_classes.values(), default=0) + 1

    # Stage 2: the class sweep.  The same hook carries the adversary
    # timeline over (its crash set is re-applied before round 1);
    # crashed agents still need *a* class for initialisation, but they
    # never act on it.
    classes = {edge: survivors_classes.get(edge, 0) for edge in edges}
    palette = _greedy_palette(graph)
    lists = {edge: palette for edge in edges}
    stage2 = Scheduler(
        network, max_rounds=max_rounds, delivery_hook=hook
    ).run(ResilientGreedySweepAlgorithm(classes, lists, class_count))

    coloring, crashed, uncolored = _collect(graph, stage2.outputs)
    return ProgramOutcome(
        coloring=coloring,
        rounds=stage1.rounds + stage2.rounds,
        messages=stage1.messages_sent + stage2.messages_sent,
        crashed_edges=crashed,
        uncolored_survivors=uncolored,
        extra={"class_palette": class_count},
    )


class RandomizedTrialAlgorithm(NodeAlgorithm):
    """Distributed Luby-style random trials, hardened for adversaries.

    Protocol per round, per agent:

    * **uncolored** — draw a uniform proposal from the residual list
      (the ``2Δ̄-1`` palette minus every color a neighbor has announced
      as final) and broadcast ``("prop", color)``.  On receive, keep
      the proposal iff no neighbor proposed the same color this round
      and no arriving final claims it.  Residual lists can never empty:
      the palette strictly exceeds the line-graph degree.
    * **colored** — broadcast ``("final", color)`` every round (so a
      single dropped announcement is not fatal), and halt once a final
      has arrived from every port, or after ``patience`` consecutive
      rounds without any proposal traffic (a crashed neighbor sends
      nothing forever; waiting for its final would wedge the run).

    Each agent draws from a private ``random.Random`` seeded from
    ``(run seed, unique id)`` through SHA-256, so randomness is
    deterministic per spec, identical across processes, and — unlike a
    single shared RNG — independent of message timing: the adversary
    reorders deliveries, never the dice.
    """

    def __init__(
        self,
        lists: Mapping[Any, frozenset[int]],
        seed: int,
        patience: int = 3,
    ) -> None:
        self._lists = dict(lists)
        self._seed = seed
        self._patience = patience

    def initialize(self, ctx: NodeContext) -> None:
        digest = hashlib.sha256(
            f"luby:{self._seed}:{ctx.unique_id}".encode()
        ).digest()
        ctx.state["rng"] = random.Random(int.from_bytes(digest[:8], "big"))
        ctx.state["color"] = None
        ctx.state["proposal"] = None
        ctx.state["neighbor_finals"] = set()
        ctx.state["final_ports"] = set()
        ctx.state["quiet"] = 0

    def compose_messages(self, ctx: NodeContext) -> Mapping[int, Any]:
        color = ctx.state["color"]
        if color is not None:
            return dict.fromkeys(range(ctx.degree), ("final", color))
        residual = sorted(
            self._lists[ctx.node] - ctx.state["neighbor_finals"]
        )
        if not residual:
            # Impossible under faithful delivery (palette > degree);
            # duplication echoing stale finals cannot add *distinct*
            # colors either, so this is a genuine invariant.
            raise AlgorithmInvariantError(
                f"agent {ctx.unique_id} ran out of residual colors"
            )
        proposal = ctx.state["rng"].choice(residual)
        ctx.state["proposal"] = proposal
        return dict.fromkeys(range(ctx.degree), ("prop", proposal))

    def receive_messages(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        finals = ctx.state["neighbor_finals"]
        proposals_heard = set()
        for port, (kind, color) in inbox.items():
            if kind == "final":
                finals.add(color)
                ctx.state["final_ports"].add(port)
            else:
                proposals_heard.add(color)
        if ctx.state["color"] is None:
            proposal = ctx.state["proposal"]
            if (
                proposal is not None
                and proposal not in proposals_heard
                and proposal not in finals
            ):
                ctx.state["color"] = proposal
            return
        if len(ctx.state["final_ports"]) == ctx.degree:
            ctx.halt()
            return
        if proposals_heard:
            ctx.state["quiet"] = 0
        else:
            ctx.state["quiet"] += 1
            if ctx.state["quiet"] >= self._patience:
                ctx.halt()

    def output(self, ctx: NodeContext) -> int | None:
        return ctx.state["color"]


def _run_randomized_luby(
    graph: nx.Graph,
    *,
    seed: int,
    hook: ScenarioHook,
    max_rounds: int = 100_000,
    patience: int = 3,
) -> ProgramOutcome:
    """Distributed randomized trials on the line graph, under ``hook``."""
    if graph.number_of_edges() == 0:
        return ProgramOutcome(coloring={}, rounds=0, messages=0)
    node_ids = assign_unique_ids(graph, seed=seed)
    network = line_graph_network(graph, node_ids=node_ids)
    palette = _greedy_palette(graph)
    lists = {edge: palette for edge in edge_set(graph)}
    execution = Scheduler(
        network, max_rounds=max_rounds, delivery_hook=hook
    ).run(RandomizedTrialAlgorithm(lists, seed, patience=patience))
    coloring, crashed, uncolored = _collect(graph, execution.outputs)
    return ProgramOutcome(
        coloring=coloring,
        rounds=execution.rounds,
        messages=execution.messages_sent,
        crashed_edges=crashed,
        uncolored_survivors=uncolored,
    )


_PROGRAMS: dict[str, ScenarioProgram] = {}


def register_program(program: ScenarioProgram) -> ScenarioProgram:
    """Add (or replace) a capability-table entry."""
    _PROGRAMS[program.name] = program
    return program


register_program(
    ScenarioProgram(
        name="greedy_sequential",
        description=(
            "distributed ID-rank greedy sweep on the line graph, with "
            "per-round retransmission (fault-tolerant by construction)"
        ),
        runner=_run_greedy_sweep,
    )
)
register_program(
    ScenarioProgram(
        name="linial_greedy",
        description=(
            "two-stage Linial reduction + class sweep pipeline; stage 1 "
            "may abort under harsh schedules (recorded, not raised)"
        ),
        runner=_run_linial_pipeline,
    )
)
register_program(
    ScenarioProgram(
        name="randomized_luby",
        description=(
            "distributed randomized trials on the line graph (per-agent "
            "seeded RNG, per-round retransmission of finals); losses "
            "never wedge the run, but may finalize measured conflicts"
        ),
        runner=_run_randomized_luby,
        params=frozenset({"max_rounds", "patience"}),
    )
)


def scenario_capable() -> list[str]:
    """Algorithm names that have a message-passing program, sorted."""
    return sorted(_PROGRAMS)


def get_program(name: str) -> ScenarioProgram:
    """Look up the program behind an algorithm name."""
    try:
        return _PROGRAMS[name]
    except KeyError:
        raise ScenarioError(
            f"algorithm {name!r} has no message-passing program, so it "
            "cannot run under an adversarial execution model; "
            f"scenario-capable algorithms: {scenario_capable()} "
            "(register one via repro.scenarios.programs.register_program)"
        ) from None
