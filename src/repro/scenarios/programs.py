"""Scenario programs: message-passing workloads an adversary can drive.

An execution model can only perturb an algorithm that actually
*exchanges messages*.  Most registry entries (the paper solver, the
ledger-accounted baselines) compute centrally with round accounting —
there is nothing for an adversary to delay, drop, or crash.  This
module therefore keeps its own capability table: algorithm name ->
:class:`ScenarioProgram`, a genuinely distributed
:class:`~repro.model.algorithm.NodeAlgorithm` realisation of that
algorithm, runnable on the columnar engine with a delivery hook
installed.  Asking for a scenario run of an algorithm without a
program raises a clear :class:`~repro.errors.ScenarioError` naming the
capable ones; registering a new program is one
:func:`register_program` call.

Two programs ship:

``greedy_sequential``
    The sequential greedy baseline as a distributed sweep on the line
    graph: the launcher ranks the edge-agents by their (seeded)
    derived IDs, and agent ``r`` picks its color in round ``r + 1``,
    greedily avoiding every color announced so far.  Colored agents
    *retransmit* their color every round until global halting, which
    makes the program naturally fault-tolerant — a dropped or deferred
    announcement usually arrives before it matters, so degradation
    under adversarial schedules is gradual and measurable.
``linial_greedy``
    The two-stage [Lin87]-style pipeline (Linial color reduction, then
    a class sweep) from :mod:`repro.primitives.distributed_pipeline`,
    run stage after stage under *one* adversary timeline.  Linial's
    reduction assumes its invariants hold round by round, so harsh
    schedules can abort it — the executor records the abort as an
    outcome instead of crashing the sweep (brittleness under
    asynchrony is itself a measurement).

Agents of both programs are the *edges* of the underlying graph, so
"crash a node" at the model layer means "crash an edge-agent" here;
survivor-induced validation happens over the edges whose agents
survived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import networkx as nx

from repro.errors import AlgorithmInvariantError, ScenarioError
from repro.graphs.edges import Edge, edge_set
from repro.graphs.properties import assign_unique_ids, max_degree
from repro.model.algorithm import NodeAlgorithm, NodeContext
from repro.model.edge_network import edge_identifier, line_graph_network
from repro.model.scheduler import Scheduler
from repro.primitives.node_algorithms import LinialColorReductionAlgorithm
from repro.scenarios.models import ScenarioHook


@dataclass(frozen=True)
class ProgramOutcome:
    """What one scenario program run observed.

    Attributes
    ----------
    coloring:
        Edge -> color over the *surviving, colored* agents only.
    rounds:
        Simulated rounds to quiescence (all survivors halted), summed
        over the program's stages.
    messages:
        Messages actually delivered into the columns (the hook's
        counters hold the dropped/deferred/duplicated complement).
    crashed_edges:
        Edges whose agents the adversary crashed (no output).
    uncolored_survivors:
        Surviving agents that finished without a color (their decision
        inputs never arrived).
    extra:
        Program-specific JSON-safe observables (e.g. the intermediate
        class-palette size of the pipeline).
    """

    coloring: dict[Edge, int]
    rounds: int
    messages: int
    crashed_edges: list[Edge] = field(default_factory=list)
    uncolored_survivors: int = 0
    extra: dict[str, Any] = field(default_factory=dict)


#: Signature of a program runner: build the network(s), run the
#: scheduler(s) with ``delivery_hook=hook``, and report what happened.
ProgramRunner = Callable[..., ProgramOutcome]


@dataclass(frozen=True)
class ScenarioProgram:
    """One capability-table entry."""

    name: str
    description: str
    runner: ProgramRunner = field(repr=False)


class ResilientGreedySweepAlgorithm(NodeAlgorithm):
    """A class sweep that retransmits, built to degrade gracefully.

    Like :class:`~repro.primitives.node_algorithms.GreedyClassSweepAlgorithm`
    — in round ``r`` the agents of class ``r`` pick the smallest list
    color no neighbor has announced — but hardened for adversarial
    delivery: a colored agent rebroadcasts its color *every* round
    until halting (so a single dropped announcement is not fatal), and
    class assignments arrive from the launcher rather than over the
    wire.  Under the identity model the sweep is exactly sequential
    greedy in class order; under faults the only possible failure is a
    *conflict* (two neighbors picking the same color after a lost
    announcement), which the executor measures rather than forbids.
    """

    def __init__(
        self,
        classes: Mapping[Any, int],
        lists: Mapping[Any, frozenset[int]],
        class_count: int,
    ) -> None:
        self._classes = dict(classes)
        self._lists = dict(lists)
        self._class_count = class_count

    def initialize(self, ctx: NodeContext) -> None:
        ctx.state["class"] = self._classes[ctx.node]
        ctx.state["taken"] = set()
        ctx.state["round"] = 0
        ctx.state["color"] = None

    def compose_messages(self, ctx: NodeContext) -> Mapping[int, Any]:
        color = ctx.state["color"]
        if color is None:
            return {}
        return dict.fromkeys(range(ctx.degree), color)

    def receive_messages(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        taken = ctx.state["taken"]
        taken.update(inbox.values())
        if ctx.state["round"] == ctx.state["class"] and ctx.state["color"] is None:
            free = [c for c in self._lists[ctx.node] if c not in taken]
            if not free:
                # Cannot happen under the identity model (the palette
                # strictly exceeds the agent's degree); under faults a
                # neighborhood could in principle over-announce via
                # duplication, so fail loudly rather than miscolor.
                raise AlgorithmInvariantError(
                    f"agent {ctx.unique_id} ran out of list colors"
                )
            ctx.state["color"] = min(free)
        ctx.state["round"] += 1
        # One extra round after the last class lets the final picks be
        # announced before everyone halts.
        if ctx.state["round"] > self._class_count:
            ctx.halt()

    def output(self, ctx: NodeContext) -> int | None:
        return ctx.state["color"]


def _greedy_palette(graph: nx.Graph) -> frozenset[int]:
    delta = max_degree(graph)
    return frozenset(range(1, max(2, 2 * delta)))


def _collect(
    graph: nx.Graph, outputs: Mapping[Any, int | None]
) -> tuple[dict[Edge, int], list[Edge], int]:
    """Split scheduler outputs into (coloring, crashed edges, uncolored)."""
    coloring = {
        edge: color for edge, color in outputs.items() if color is not None
    }
    uncolored = sum(1 for color in outputs.values() if color is None)
    crashed = [edge for edge in edge_set(graph) if edge not in outputs]
    return coloring, crashed, uncolored


def _run_greedy_sweep(
    graph: nx.Graph,
    *,
    seed: int,
    hook: ScenarioHook,
    max_rounds: int = 100_000,
) -> ProgramOutcome:
    """Distributed sequential greedy (ID-rank sweep) under ``hook``."""
    if graph.number_of_edges() == 0:
        return ProgramOutcome(coloring={}, rounds=0, messages=0)
    node_ids = assign_unique_ids(graph, seed=seed)
    network = line_graph_network(graph, node_ids=node_ids)
    edges = edge_set(graph)
    # Rank the agents by their derived IDs: the run seed scatters the
    # node IDs, so it also permutes the sweep order — deterministic,
    # and locally known to every agent's launcher-side twin.
    max_id = max(node_ids.values())
    order = sorted(edges, key=lambda edge: edge_identifier(edge, node_ids, max_id))
    classes = {edge: rank for rank, edge in enumerate(order)}
    palette = _greedy_palette(graph)
    lists = {edge: palette for edge in edges}
    execution = Scheduler(
        network, max_rounds=max_rounds, delivery_hook=hook
    ).run(ResilientGreedySweepAlgorithm(classes, lists, len(edges)))
    coloring, crashed, uncolored = _collect(graph, execution.outputs)
    return ProgramOutcome(
        coloring=coloring,
        rounds=execution.rounds,
        messages=execution.messages_sent,
        crashed_edges=crashed,
        uncolored_survivors=uncolored,
    )


def _run_linial_pipeline(
    graph: nx.Graph,
    *,
    seed: int,
    hook: ScenarioHook,
    max_rounds: int = 100_000,
) -> ProgramOutcome:
    """The two-stage Linial+sweep pipeline under one adversary timeline."""
    if graph.number_of_edges() == 0:
        return ProgramOutcome(coloring={}, rounds=0, messages=0)
    node_ids = assign_unique_ids(graph, seed=seed)
    network = line_graph_network(graph, node_ids=node_ids)
    edges = edge_set(graph)

    # Stage 1: Linial color reduction to an O(Δ̄²) class assignment.
    stage1 = Scheduler(
        network, max_rounds=max_rounds, delivery_hook=hook
    ).run(LinialColorReductionAlgorithm(id_space=network.max_id()))
    survivors_classes = dict(stage1.outputs)
    class_count = max(survivors_classes.values(), default=0) + 1

    # Stage 2: the class sweep.  The same hook carries the adversary
    # timeline over (its crash set is re-applied before round 1);
    # crashed agents still need *a* class for initialisation, but they
    # never act on it.
    classes = {edge: survivors_classes.get(edge, 0) for edge in edges}
    palette = _greedy_palette(graph)
    lists = {edge: palette for edge in edges}
    stage2 = Scheduler(
        network, max_rounds=max_rounds, delivery_hook=hook
    ).run(ResilientGreedySweepAlgorithm(classes, lists, class_count))

    coloring, crashed, uncolored = _collect(graph, stage2.outputs)
    return ProgramOutcome(
        coloring=coloring,
        rounds=stage1.rounds + stage2.rounds,
        messages=stage1.messages_sent + stage2.messages_sent,
        crashed_edges=crashed,
        uncolored_survivors=uncolored,
        extra={"class_palette": class_count},
    )


_PROGRAMS: dict[str, ScenarioProgram] = {}


def register_program(program: ScenarioProgram) -> ScenarioProgram:
    """Add (or replace) a capability-table entry."""
    _PROGRAMS[program.name] = program
    return program


register_program(
    ScenarioProgram(
        name="greedy_sequential",
        description=(
            "distributed ID-rank greedy sweep on the line graph, with "
            "per-round retransmission (fault-tolerant by construction)"
        ),
        runner=_run_greedy_sweep,
    )
)
register_program(
    ScenarioProgram(
        name="linial_greedy",
        description=(
            "two-stage Linial reduction + class sweep pipeline; stage 1 "
            "may abort under harsh schedules (recorded, not raised)"
        ),
        runner=_run_linial_pipeline,
    )
)


def scenario_capable() -> list[str]:
    """Algorithm names that have a message-passing program, sorted."""
    return sorted(_PROGRAMS)


def get_program(name: str) -> ScenarioProgram:
    """Look up the program behind an algorithm name."""
    try:
        return _PROGRAMS[name]
    except KeyError:
        raise ScenarioError(
            f"algorithm {name!r} has no message-passing program, so it "
            "cannot run under an adversarial execution model; "
            f"scenario-capable algorithms: {scenario_capable()} "
            "(register one via repro.scenarios.programs.register_program)"
        ) from None
