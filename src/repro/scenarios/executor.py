"""Executing scenario runs and validating their survivor claims.

:func:`execute_scenario` is what the batch executor
(:mod:`repro.api.runner`) calls when a spec carries a non-identity
scenario: it resolves the execution model and the algorithm's
message-passing program, runs the program under a freshly seeded hook,
and assembles a plain :class:`~repro.results.RunResult` — same type,
same caches, same process-pool path as every other run.  Scenario
provenance and the adversarial outcome fields live in
``result.details`` (all JSON-safe, so results round-trip exactly
through the on-disk cache):

``scenario``
    ``{"model", "seed", "params"}`` — normalised provenance.
``rounds_to_quiescence`` / ``messages_delivered``
    Rounds until every survivor halted; messages actually flushed.
``messages_dropped`` / ``messages_deferred`` / ``messages_duplicated``
    The hook's adversary counters (deferral in message-rounds).
``undelivered_at_finish``
    Backlog still in flight when the run (or a stage) ended.
``crashed_edges`` / ``survivors`` / ``uncolored_survivors``
    Crash outcome: edge tokens of crashed agents, survivor count, and
    survivors that finished undecided.
``conflicts_on_survivors`` / ``proper_on_survivors``
    Survivor-induced validity: adjacent same-colored pairs among the
    surviving colored edges.  Adversarial executions may legitimately
    produce conflicts — they are *measured*, and independently
    re-checked by :func:`validate_scenario_result`.
``aborted``
    ``None``, or the error that stopped a brittle program (Linial's
    invariants do not survive every schedule); recorded, not raised,
    so sweeps keep streaming.

A failed *claim* is still an error: validation recomputes the conflict
count from the graph and the returned coloring and raises
:class:`~repro.errors.ColoringValidationError` on any mismatch, exactly
like the properness check does for ordinary runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

import networkx as nx

from repro.coloring.verify import check_palette_bound, measure_defects
from repro.errors import (
    AlgorithmInvariantError,
    ColoringValidationError,
    ModelViolationError,
    RoundLimitExceededError,
    ScenarioError,
)
from repro.graphs.edges import Edge, edge_set, edge_to_token, token_to_edge
from repro.graphs.properties import max_degree
from repro.model.algorithm import NodeAlgorithm
from repro.model.network import Network
from repro.model.scheduler import ExecutionResult, Scheduler
from repro.results import RunResult
from repro.scenarios.programs import ProgramOutcome, get_program
from repro.scenarios.registry import get_model

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.spec import RunSpec



def conflict_count(graph: nx.Graph, coloring: Mapping[Edge, int]) -> int:
    """Number of adjacent same-colored pairs among the colored edges.

    Defined through :func:`repro.coloring.verify.measure_defects` — the
    module designated as the single independent correctness checker —
    so the scenario layer cannot drift from the library's one notion of
    a conflict.  Each conflicting pair contributes a defect of 1 to
    both endpoints, hence the halving.
    """
    return sum(measure_defects(graph, coloring).values()) // 2


def run_under_model(
    network: Network,
    algorithm: NodeAlgorithm,
    *,
    model: str = "synchronous",
    seed: int = 0,
    params: Mapping[str, Any] | None = None,
    max_rounds: int = 10_000,
) -> ExecutionResult:
    """Engine-level entry: run one node algorithm under a named model.

    The low-level sibling of the spec path, for benchmarks and tests
    that already hold a :class:`~repro.model.network.Network`.  The
    identity model builds no hook at all, so its runs are the untouched
    fast path — this is what ``benchmarks/bench_scenarios.py`` pins the
    wrapper-overhead claim on.
    """
    entry = get_model(model)
    # build_hook is the single normalisation point — it validates and
    # fills defaults itself, so raw partial params are fine here.
    hook = entry.build_hook(seed, params or {})
    scheduler = Scheduler(network, max_rounds=max_rounds, delivery_hook=hook)
    return scheduler.run(algorithm)


def execute_scenario(spec: "RunSpec", graph: nx.Graph) -> RunResult:
    """Run one non-identity scenario spec and assemble its result."""
    scenario = spec.scenario
    assert scenario is not None and not scenario.is_identity()
    model = get_model(scenario.model)
    params = model.validate_params(dict(scenario.params))
    program = get_program(spec.algorithm)
    if spec.policy is not None:
        raise ScenarioError(
            f"scenario programs take no parameter policy (got "
            f"{spec.policy!r}); policies configure the paper solver only"
        )
    run_params = dict(spec.params)
    # Each program declares its own run-parameter set (``max_rounds``
    # everywhere, plus program-specific knobs like randomized_luby's
    # ``patience``); a typo must fail loudly, not configure nothing.
    unknown = sorted(set(run_params) - program.params)
    if unknown:
        raise ScenarioError(
            f"scenario program {spec.algorithm!r} does not take run "
            f"parameters {unknown}; have {sorted(program.params)}"
        )

    hook = model.build_hook(scenario.seed, params)
    assert hook is not None  # identity models never reach the executor
    aborted: str | None = None
    try:
        outcome = program.runner(
            graph, seed=spec.effective_seed(), hook=hook, **run_params
        )
    except (
        AlgorithmInvariantError,
        ModelViolationError,
        RoundLimitExceededError,
    ) as error:
        # Brittle programs can die under harsh schedules; that is a
        # *finding* of the scenario run, not a sweep-stopping crash.
        # The hook's counters survive the unwind (the engine reports
        # flushed messages through end_run even on failure), so the
        # adversary observables stay real — only the per-agent outcome
        # is lost.
        aborted = f"{type(error).__name__}: {error}"
        outcome = ProgramOutcome(
            coloring={}, rounds=hook.global_round, messages=hook.delivered
        )

    conflicts = conflict_count(graph, outcome.coloring)
    edges_total = graph.number_of_edges()
    details: dict[str, Any] = {
        "scenario": {
            "model": scenario.model,
            "seed": scenario.seed,
            "params": params,
        },
        "rounds_to_quiescence": outcome.rounds,
        "messages_delivered": outcome.messages,
        **hook.stats(),
        "crashed_edges": sorted(
            edge_to_token(edge) for edge in outcome.crashed_edges
        ),
        "survivors": edges_total - len(outcome.crashed_edges),
        "uncolored_survivors": outcome.uncolored_survivors,
        "conflicts_on_survivors": conflicts,
        "proper_on_survivors": conflicts == 0 and aborted is None,
        "aborted": aborted,
        **outcome.extra,
    }
    # Crash observables describe the *outcome*, not the adversary's
    # plan: on an aborted run no per-agent outcome exists, so the count
    # must agree with the (empty) crashed_edges list rather than with
    # the hook's schedule — which remains visible as provenance via
    # crash_schedule.  On completed runs the two are identical (the
    # hook's crash set is exactly the agents excluded from outputs).
    details["crashed_count"] = len(outcome.crashed_edges)
    if aborted is not None:
        # Survivor-population fields are *unknown*, not zero/full —
        # a null keeps an aborted row from reading healthier than a
        # degraded-but-finished one in the sweep tables.
        details["survivors"] = None
        details["uncolored_survivors"] = None
    return RunResult(
        name=spec.algorithm,
        coloring=outcome.coloring,
        rounds=outcome.rounds,
        palette_size=max(1, 2 * max_degree(graph) - 1),
        details=details,
    )


def is_scenario_result(result: RunResult) -> bool:
    """Did ``result`` come out of a scenario execution?"""
    return isinstance(result.details.get("scenario"), dict)


def validate_scenario_result(result: RunResult, graph: nx.Graph) -> None:
    """Independently re-check a scenario result's survivor claims.

    The scenario counterpart of the properness check: colored edges
    must exist in the graph and must not belong to crashed agents,
    colors must respect the palette bound, and the recorded
    survivor-induced validity (conflict count and properness flag) must
    match a from-scratch recomputation.  Any mismatch raises
    :class:`~repro.errors.ColoringValidationError`.
    """
    details = result.details
    crashed = {
        token_to_edge(token) for token in details.get("crashed_edges", [])
    }
    edge_lookup = set(edge_set(graph))
    for edge in result.coloring:
        if edge not in edge_lookup:
            raise ColoringValidationError(
                f"colored edge {edge!r} does not exist in the graph"
            )
        if edge in crashed:
            raise ColoringValidationError(
                f"edge {edge!r} is recorded as crashed yet carries a color"
            )
    if result.palette_size:
        check_palette_bound(result.coloring, result.palette_size)
    conflicts = conflict_count(graph, result.coloring)
    if conflicts != details.get("conflicts_on_survivors"):
        raise ColoringValidationError(
            f"recorded conflicts_on_survivors="
            f"{details.get('conflicts_on_survivors')!r} but recomputation "
            f"found {conflicts}"
        )
    proper = conflicts == 0 and details.get("aborted") is None
    if bool(details.get("proper_on_survivors")) != proper:
        raise ColoringValidationError(
            f"recorded proper_on_survivors="
            f"{details.get('proper_on_survivors')!r} disagrees with the "
            f"recomputed value {proper}"
        )


def smoke_check() -> dict[str, Any]:
    """CI smoke: tiny structural + determinism check of the subsystem.

    Pins the two contracts cheaply (no timing, no files): the identity
    scenario shares fingerprint *and* result payload with a plain run,
    and every adversarial model reproduces its result byte-for-byte
    under a fixed seed.  Returns a JSON-safe summary; raises on any
    violation.
    """
    # Imported here: repro.api.spec imports this package's spec module,
    # so the api layer must not be a module-level dependency.
    from repro.api.runner import run
    from repro.api.spec import InstanceSpec, RunSpec
    from repro.scenarios.registry import scenario_registry
    from repro.scenarios.spec import ScenarioSpec

    instance = InstanceSpec(family="complete_bipartite", size=3, seed=2)
    plain = RunSpec(instance=instance, algorithm="greedy_sequential")
    identity = RunSpec(
        instance=instance,
        algorithm="greedy_sequential",
        scenario=ScenarioSpec(model="synchronous"),
    )
    if identity.fingerprint() != plain.fingerprint():
        raise ScenarioError(
            "identity scenario changed the spec fingerprint — the "
            "bit-for-bit contract is broken"
        )
    plain_result = run(plain, cache=False)
    identity_result = run(identity, cache=False)
    if (
        identity_result.result_fingerprint()
        != plain_result.result_fingerprint()
    ):
        raise ScenarioError(
            "identity scenario produced a different result payload than "
            "the plain run"
        )

    deterministic: dict[str, str] = {}
    for name, model in scenario_registry().items():
        if model.identity:
            continue
        spec = RunSpec(
            instance=instance,
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(model=name, seed=7),
        )
        first = run(spec, cache=False)
        second = run(spec, cache=False)
        if first.result_fingerprint() != second.result_fingerprint():
            raise ScenarioError(
                f"model {name!r} is not deterministic under a fixed seed"
            )
        deterministic[name] = first.result_fingerprint()[:12]
    return {
        "identity_fingerprint": plain.fingerprint()[:12],
        "identity_bit_for_bit": True,
        "deterministic_models": deterministic,
    }
