"""Declarative, serializable scenario descriptions.

A :class:`ScenarioSpec` names an execution model from the scenario
registry, the adversary's seed, and the model's parameters — nothing
else.  It composes into :class:`repro.api.RunSpec` (the ``scenario``
field) and therefore into the spec fingerprint, the result cache, and
the process-pool executor: a scenario run is just a run whose spec
carries one more declarative block.

Fingerprint semantics mirror the rest of the spec layer:

* parameters are normalised through the model's schema before
  fingerprinting, so ``{}`` and spelled-out defaults are one scenario;
* the **identity** scenario (``synchronous``) contributes *nothing* to
  the enclosing run fingerprint — a spec carrying it is the same
  experiment as a spec without one, shares its fingerprint, and hits
  the same cache entries (that is the bit-for-bit contract).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.errors import check_known_keys
from repro.scenarios.registry import get_model

#: Keys a serialized ScenarioSpec may carry.
_SCENARIO_KEYS = frozenset({"model", "seed", "params"})


@dataclass(frozen=True)
class ScenarioSpec:
    """A serializable description of one execution model instance.

    Attributes
    ----------
    model:
        Name from the scenario registry
        (:func:`repro.scenarios.registry.model_names`).
    seed:
        The adversary's seed — drives the drop/crash/quota schedule,
        independently of the run seed (same algorithm randomness, a
        different adversary, and vice versa).
    params:
        Model parameters.  Accepts any mapping; stored as a sorted
        tuple of pairs so specs stay hashable (``dict(spec.params)``
        recovers the mapping).  Validated eagerly against the model's
        schema.
    """

    model: str = "synchronous"
    seed: int = 0
    params: Mapping[str, Any] | tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "params", tuple(sorted(dict(self.params).items()))
        )
        # Eager validation: unknown models and bad parameters fail at
        # construction, not deep inside a sweep.
        get_model(self.model).validate_params(dict(self.params))

    def is_identity(self) -> bool:
        """``True`` when runs under this scenario are the plain engine."""
        return get_model(self.model).identity

    def normalized_params(self) -> dict[str, Any]:
        """The parameters that actually execute (defaults filled in)."""
        return get_model(self.model).validate_params(dict(self.params))

    def label(self) -> str:
        """Short human-readable identifier (table row label)."""
        if self.is_identity():
            return self.model
        inside = ",".join(
            f"{key}={value}" for key, value in sorted(self.normalized_params().items())
        )
        suffix = f"[{inside}]" if inside else ""
        return f"{self.model}{suffix}#s{self.seed}"

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """A copy of this scenario with a different adversary seed."""
        return replace(self, seed=seed)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (empty params dropped)."""
        payload: dict[str, Any] = {"model": self.model, "seed": self.seed}
        if self.params:
            payload["params"] = dict(self.params)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; unknown fields raise."""
        check_known_keys(payload, _SCENARIO_KEYS, "ScenarioSpec")
        return cls(
            model=payload.get("model", "synchronous"),
            seed=int(payload.get("seed", 0)),
            params=dict(payload.get("params", {})),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def _fingerprint_payload(self) -> dict[str, Any]:
        """Canonical form entering the enclosing run fingerprint.

        Only non-identity scenarios ever reach a fingerprint (the run
        spec omits identity scenarios entirely), and parameters are
        normalised, so equal adversaries hash equal regardless of
        spelling.
        """
        return {
            "model": self.model,
            "seed": self.seed,
            "params": self.normalized_params(),
        }
