"""Execution models: the adversaries a scenario run executes under.

An :class:`ExecutionModel` is one entry of the scenario registry
(:mod:`repro.scenarios.registry`).  It owns two things: a *parameter
schema* (``validate_params`` — unknown keys and out-of-range values
raise :class:`~repro.errors.ScenarioError`; defaults are filled in, so
two spellings of the same adversary normalise to one fingerprint) and a
*hook factory* (``build_hook`` — the seeded
:class:`~repro.model.scheduler.DeliveryHook` the columnar engine runs
under).

Four models ship:

``synchronous``
    The identity model: no hook at all.  Runs are *bit-for-bit* the
    plain engine — a :class:`repro.api.RunSpec` carrying the identity
    scenario even shares the fingerprint (and therefore the cache
    entries) of the same spec without one.
``bounded_async``
    Bounded asynchrony via seeded per-round message quotas: each round
    at most ``quota (+ seeded jitter)`` messages flush from the global
    FIFO backlog into the delivery columns; everything else carries
    over.  Messages are never lost, only late.
``crash_stop``
    An adversary crashes up to ``f`` nodes, each at a seeded round in
    ``{1, ..., horizon}``.  Crashed nodes stop composing and receiving
    immediately and are excluded from the run's outputs; survivors keep
    running against whatever stale neighbor state their inboxes
    reflect.
``lossy_links``
    Seeded per-link-use loss: every message is independently dropped
    with probability ``drop``; a delivered message is echoed once more
    a round later with probability ``duplicate``.

Determinism: every hook draws from one ``random.Random(seed)`` whose
consumption order is fixed by the engine's canonical node order, so a
fixed scenario seed yields the identical drop/crash/quota schedule in
every process — serial runs, pool workers, and future sessions agree.
"""

from __future__ import annotations

import abc
import random
from typing import Any, Iterable, Mapping

from repro.errors import ScenarioError
from repro.model.network import Network
from repro.model.scheduler import Send


class ScenarioHook:
    """Base :class:`~repro.model.scheduler.DeliveryHook` with bookkeeping.

    Owns the FIFO backlog of withheld sends, the adversary's crash set,
    a global round counter spanning multi-stage runs (a program that
    chains several scheduler runs on the same agents keeps *one*
    adversary timeline), and the outcome counters the scenario result
    reports.  Subclasses override :meth:`_bind` (build the seeded
    schedule once the network is known), :meth:`_crashes_at`, and
    :meth:`gate`.
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._rng = random.Random(seed)
        self._backlog: list[Send] = []
        self._bound = False
        self.crashed: set[int] = set()
        self.global_round = 0
        self.stages = 0
        self.dropped = 0
        self.deferred = 0
        self.duplicated = 0
        self.delivered = 0
        self.undelivered_at_finish = 0

    # -- scheduler-facing protocol ------------------------------------

    def begin_run(self, network: Network) -> None:
        self.stages += 1
        if not self._bound:
            self._bind(network)
            self._bound = True

    def initially_crashed(self) -> Iterable[int]:
        return sorted(self.crashed)

    def round_crashes(self, round_index: int) -> Iterable[int]:
        self.global_round += 1
        victims = self._crashes_at(self.global_round)
        self.crashed.update(victims)
        return victims

    def gate(self, round_index: int, new_sends: list[Send]) -> list[Send]:
        return new_sends  # synchronous delivery unless overridden

    def requeue(self, round_index: int, sends: list[Send]) -> None:
        # A busy link hands surplus sends back; they rejoin the *front*
        # of the backlog so per-link FIFO order is preserved.
        self._backlog[:0] = sends
        self.deferred += len(sends)

    def end_run(self, rounds: int, delivered: int = 0) -> None:
        # In-flight messages do not survive a run (or stage) boundary.
        # The engine reports how many messages it flushed, so the count
        # survives even when a run dies mid-flight (aborted programs
        # still record their real delivery totals).
        self.undelivered_at_finish += len(self._backlog)
        self.delivered += delivered
        self._backlog = []

    # -- model-specific pieces ----------------------------------------

    def _bind(self, network: Network) -> None:
        """Build the seeded schedule; called once, at the first run."""

    def _crashes_at(self, global_round: int) -> list[int]:
        return []

    def stats(self) -> dict[str, Any]:
        """JSON-safe outcome counters for the scenario result."""
        return {
            "messages_dropped": self.dropped,
            "messages_deferred": self.deferred,
            "messages_duplicated": self.duplicated,
            "undelivered_at_finish": self.undelivered_at_finish,
            "crashed_count": len(self.crashed),
            "stages": self.stages,
        }


class ExecutionModel(abc.ABC):
    """One registry entry: a named, parameterised execution model."""

    #: Registry key (also ``ScenarioSpec.model``).
    name: str = ""
    #: One-line description for ``repro list --scenarios``.
    description: str = ""
    #: ``True`` for the model whose runs are the plain engine.
    identity: bool = False
    #: Parameter name -> one-line doc (with default), for the CLI table.
    param_docs: Mapping[str, str] = {}

    @abc.abstractmethod
    def validate_params(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Return the normalised parameter dict (defaults filled in).

        Raises :class:`~repro.errors.ScenarioError` on unknown keys or
        out-of-range values.  The normalised dict is what fingerprints
        and executes, so ``{}`` and spelled-out defaults are one
        scenario.
        """

    @abc.abstractmethod
    def build_hook(self, seed: int, params: Mapping[str, Any]) -> ScenarioHook | None:
        """Return a fresh seeded hook (``None`` for the identity model).

        Accepts raw *or* normalised parameters — it runs
        :meth:`validate_params` itself, so it is safe as the single
        entry point (callers that also need the normalised dict, like
        the executor's provenance block, may validate first; the repeat
        is a few dict probes).
        """

    def _check_keys(self, params: Mapping[str, Any]) -> None:
        unknown = sorted(set(params) - set(self.param_docs))
        if unknown:
            raise ScenarioError(
                f"execution model {self.name!r} does not take parameters "
                f"{unknown}; have {sorted(self.param_docs)}"
            )


def _int_param(model: str, params: Mapping[str, Any], key: str, default: int, minimum: int) -> int:
    value = params.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(
            f"{model} parameter {key!r} must be an integer, got {value!r}"
        )
    if value < minimum:
        raise ScenarioError(
            f"{model} parameter {key!r} must be >= {minimum}, got {value}"
        )
    return value


def _rate_param(model: str, params: Mapping[str, Any], key: str, default: float) -> float:
    value = params.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(
            f"{model} parameter {key!r} must be a number, got {value!r}"
        )
    value = float(value)
    if not 0.0 <= value < 1.0:
        raise ScenarioError(
            f"{model} parameter {key!r} must lie in [0, 1), got {value}"
        )
    return value


class Synchronous(ExecutionModel):
    """The identity model: the plain synchronous engine, bit-for-bit."""

    name = "synchronous"
    description = (
        "identity model — the untouched synchronous engine; shares "
        "fingerprints (and cache entries) with scenario-less specs"
    )
    identity = True
    param_docs: Mapping[str, str] = {}

    def validate_params(self, params: Mapping[str, Any]) -> dict[str, Any]:
        self._check_keys(params)
        return {}

    def build_hook(self, seed: int, params: Mapping[str, Any]) -> ScenarioHook | None:
        return None


class _BoundedAsynchronyHook(ScenarioHook):
    def __init__(self, seed: int, quota: int, jitter: int) -> None:
        super().__init__(seed)
        self._quota = quota
        self._jitter = jitter

    def gate(self, round_index: int, new_sends: list[Send]) -> list[Send]:
        backlog = self._backlog
        backlog.extend(new_sends)
        quota = self._quota
        if self._jitter:
            quota += self._rng.randint(0, self._jitter)
        deliver = backlog[:quota]
        self._backlog = backlog[quota:]
        # Deferral is counted in message-rounds: a message that waits
        # three rounds in the backlog contributes three.
        self.deferred += len(self._backlog)
        return deliver


class BoundedAsynchrony(ExecutionModel):
    """Seeded per-round message quotas; late delivery, never loss."""

    name = "bounded_async"
    description = (
        "bounded asynchrony — at most quota (+ seeded jitter) messages "
        "flush per round from a global FIFO backlog; the rest carry over"
    )
    param_docs = {
        "quota": "messages delivered per round (int >= 1, default 2)",
        "jitter": "extra seeded per-round headroom in [0, jitter] (int >= 0, default 0)",
    }

    def validate_params(self, params: Mapping[str, Any]) -> dict[str, Any]:
        self._check_keys(params)
        return {
            "quota": _int_param(self.name, params, "quota", 2, 1),
            "jitter": _int_param(self.name, params, "jitter", 0, 0),
        }

    def build_hook(self, seed: int, params: Mapping[str, Any]) -> ScenarioHook:
        normalized = self.validate_params(params)
        return _BoundedAsynchronyHook(
            seed, normalized["quota"], normalized["jitter"]
        )


class _CrashStopHook(ScenarioHook):
    def __init__(self, seed: int, f: int, horizon: int) -> None:
        super().__init__(seed)
        self._f = f
        self._horizon = horizon
        self._schedule: dict[int, list[int]] = {}
        #: Seeded ``[round, node_index]`` pairs, for result provenance.
        self.crash_schedule: list[list[int]] = []

    def _bind(self, network: Network) -> None:
        victims = self._rng.sample(range(network.n), min(self._f, network.n))
        for victim in victims:
            crash_round = self._rng.randint(1, self._horizon)
            self._schedule.setdefault(crash_round, []).append(victim)
        self.crash_schedule = sorted(
            [crash_round, victim]
            for crash_round, victims_at in self._schedule.items()
            for victim in victims_at
        )

    def _crashes_at(self, global_round: int) -> list[int]:
        return sorted(self._schedule.get(global_round, ()))

    def stats(self) -> dict[str, Any]:
        stats = super().stats()
        stats["crash_schedule"] = self.crash_schedule
        return stats


class CrashStop(ExecutionModel):
    """Up to ``f`` seeded crash-stop faults within the first rounds."""

    name = "crash_stop"
    description = (
        "crash-stop faults — the adversary crashes up to f nodes at "
        "seeded rounds in {1..horizon}; survivors keep running against "
        "stale neighbor state"
    )
    param_docs = {
        "f": "maximum number of crashed nodes (int >= 0, default 1)",
        "horizon": "crash rounds are drawn from {1..horizon} (int >= 1, default 8)",
    }

    def validate_params(self, params: Mapping[str, Any]) -> dict[str, Any]:
        self._check_keys(params)
        return {
            "f": _int_param(self.name, params, "f", 1, 0),
            "horizon": _int_param(self.name, params, "horizon", 8, 1),
        }

    def build_hook(self, seed: int, params: Mapping[str, Any]) -> ScenarioHook:
        normalized = self.validate_params(params)
        return _CrashStopHook(seed, normalized["f"], normalized["horizon"])


class _LossyLinksHook(ScenarioHook):
    def __init__(self, seed: int, drop: float, duplicate: float) -> None:
        super().__init__(seed)
        self._drop = drop
        self._duplicate = duplicate

    def gate(self, round_index: int, new_sends: list[Send]) -> list[Send]:
        # Echoes scheduled by an earlier round's duplication (and any
        # link-busy requeues) arrive ahead of this round's traffic.
        deliver = self._backlog
        self._backlog = []
        rng = self._rng
        drop = self._drop
        duplicate = self._duplicate
        for send in new_sends:
            if rng.random() < drop:
                self.dropped += 1
                continue
            deliver.append(send)
            if duplicate and rng.random() < duplicate:
                self.duplicated += 1
                self._backlog.append(send)
        return deliver


class LossyLinks(ExecutionModel):
    """Seeded per-link-use message drop and duplication."""

    name = "lossy_links"
    description = (
        "lossy links — every message is independently dropped with "
        "probability drop; delivered messages echo once more a round "
        "later with probability duplicate"
    )
    param_docs = {
        "drop": "per-message drop probability in [0, 1) (default 0.1)",
        "duplicate": "per-message echo probability in [0, 1) (default 0.0)",
    }

    def validate_params(self, params: Mapping[str, Any]) -> dict[str, Any]:
        self._check_keys(params)
        return {
            "drop": _rate_param(self.name, params, "drop", 0.1),
            "duplicate": _rate_param(self.name, params, "duplicate", 0.0),
        }

    def build_hook(self, seed: int, params: Mapping[str, Any]) -> ScenarioHook:
        normalized = self.validate_params(params)
        return _LossyLinksHook(seed, normalized["drop"], normalized["duplicate"])
