"""repro.scenarios — adversarial execution models as first-class specs.

The paper's round-complexity claims live in the clean synchronous
CONGEST/LOCAL world; this subsystem asks what happens to the same
programs when the world misbehaves.  An execution model (asynchrony,
crash faults, message loss) is a registry entry with a declarative,
seeded :class:`ScenarioSpec` that composes into
:class:`repro.api.RunSpec` — scenario runs flow through ``run`` /
``run_many`` / ``run_many_iter``, the fingerprint-keyed caches, and
the process-pool executor like any other run::

    from repro.api import InstanceSpec, RunSpec, run
    from repro.scenarios import ScenarioSpec

    spec = RunSpec(
        instance=InstanceSpec(family="random_regular", size=6, seed=1),
        algorithm="greedy_sequential",
        scenario=ScenarioSpec(model="lossy_links", seed=7,
                              params={"drop": 0.2}),
    )
    result = run(spec)          # deterministic: seed fixes the adversary
    print(result.details["conflicts_on_survivors"])

The pieces:

* :class:`ScenarioSpec` (:mod:`repro.scenarios.spec`) — the
  declarative block; the identity model fingerprints away entirely, so
  ``synchronous`` runs are bit-for-bit (and cache-compatible with)
  plain runs;
* the model registry (:mod:`repro.scenarios.registry`) —
  ``synchronous`` / ``bounded_async`` / ``crash_stop`` /
  ``lossy_links``, each a parameter schema plus a seeded
  :class:`~repro.model.scheduler.DeliveryHook` factory
  (:mod:`repro.scenarios.models`);
* the capability table (:mod:`repro.scenarios.programs`) —
  message-passing programs adversaries can actually drive, keyed by
  algorithm name;
* the executor (:mod:`repro.scenarios.executor`) — runs a program
  under a hook and reports survivor-induced validity, drop/defer/crash
  counters, and rounds-to-quiescence; plus the engine-level
  :func:`run_under_model` for benchmarks and tests.

The CLI front ends are ``python -m repro scenario`` and
``python -m repro list --scenarios``; the sweep harness adds
:func:`repro.analysis.harness.run_scenario_sweep`.
"""

from repro.scenarios.executor import (
    conflict_count,
    execute_scenario,
    is_scenario_result,
    run_under_model,
    smoke_check,
    validate_scenario_result,
)
from repro.scenarios.models import (
    BoundedAsynchrony,
    CrashStop,
    ExecutionModel,
    LossyLinks,
    ScenarioHook,
    Synchronous,
)
from repro.scenarios.programs import (
    ProgramOutcome,
    ScenarioProgram,
    get_program,
    register_program,
    scenario_capable,
)
from repro.scenarios.registry import get_model, model_names, scenario_registry
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "BoundedAsynchrony",
    "CrashStop",
    "ExecutionModel",
    "LossyLinks",
    "ProgramOutcome",
    "ScenarioHook",
    "ScenarioProgram",
    "ScenarioSpec",
    "Synchronous",
    "conflict_count",
    "execute_scenario",
    "get_model",
    "get_program",
    "is_scenario_result",
    "model_names",
    "register_program",
    "run_under_model",
    "scenario_capable",
    "scenario_registry",
    "smoke_check",
    "validate_scenario_result",
]
