"""The execution-model registry, mirroring ``repro.api.registry``.

One table, one lookup idiom: models register here, scenario specs name
them, the CLI lists them (``python -m repro list --scenarios``).  To
add a new execution model, subclass
:class:`~repro.scenarios.models.ExecutionModel` (a parameter schema
plus a seeded hook factory) and add an instance to :data:`_MODELS`;
the spec layer, fingerprints, executor, harness and CLI pick it up
with no further wiring.
"""

from __future__ import annotations

from repro.errors import ScenarioError
from repro.scenarios.models import (
    BoundedAsynchrony,
    CrashStop,
    ExecutionModel,
    LossyLinks,
    Synchronous,
)

#: The registered execution models, identity model first.
_MODELS: dict[str, ExecutionModel] = {
    model.name: model
    for model in (Synchronous(), BoundedAsynchrony(), CrashStop(), LossyLinks())
}


def scenario_registry() -> dict[str, ExecutionModel]:
    """Return the model registry (name -> :class:`ExecutionModel`)."""
    return dict(_MODELS)


def model_names() -> list[str]:
    """Every registered model name, identity model first."""
    return list(_MODELS)


def get_model(name: str) -> ExecutionModel:
    """Look up one execution model by name."""
    try:
        return _MODELS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown execution model {name!r}; have {list(_MODELS)}"
        ) from None
