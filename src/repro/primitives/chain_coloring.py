"""Cole-Vishkin style 3-coloring of paths and cycles.

Section 4.1 of the paper 3-colors the path/cycle conflict structures of
its defective coloring "in ``O(log* X)`` rounds" — this module is that
subroutine.  Given a chain whose items carry an initial proper coloring
with values below ``X`` (in our use: the initial ``O(Δ̄²)``-edge
coloring), the classic bit-trick reduction

    ``new_color = 2 * i + bit_i(color)``

where ``i`` is the lowest bit position at which ``color`` differs from
the successor's color, drops the palette from ``X`` to
``2 * ceil(log2 X)`` in one round.  Iterating reaches 6 colors after
``O(log* X)`` rounds, and three shift-down rounds finish the job:
classes 5, 4, 3 recolor (simultaneously within a class) to the smallest
free color in ``{0, 1, 2}``.

The functional form below performs exactly those synchronous
iterations and counts them; the message-passing twin
(:class:`repro.primitives.node_algorithms.ColeVishkinOnChain`) is
validated against it round-for-round by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.errors import InvalidInstanceError
from repro.utils.chains import Chain


@dataclass(frozen=True)
class ChainColoringResult:
    """Outcome of 3-coloring one chain.

    Attributes
    ----------
    colors:
        Item -> color in ``{0, 1, 2}``.
    rounds:
        Synchronous rounds consumed (reduction iterations + shift-down
        rounds).
    iterations:
        Number of bit-trick reduction iterations alone.
    """

    colors: dict[Hashable, int]
    rounds: int
    iterations: int


def _lowest_differing_bit(a: int, b: int) -> int:
    """Return the index of the lowest bit where ``a`` and ``b`` differ."""
    diff = a ^ b
    if diff == 0:
        raise InvalidInstanceError(
            f"adjacent chain items share the color {a}; initial coloring "
            "must be proper along the chain"
        )
    return (diff & -diff).bit_length() - 1


def _reduction_step(colors: Sequence[int], cyclic: bool) -> list[int]:
    """One synchronous Cole-Vishkin reduction round over the chain."""
    length = len(colors)
    new_colors = []
    for index, color in enumerate(colors):
        if index + 1 < length:
            successor = colors[index + 1]
        elif cyclic:
            successor = colors[0]
        else:
            # Path tail: pretend a successor with a different color; the
            # choice only needs to differ from the item's own color.
            successor = color + 1
        bit = _lowest_differing_bit(color, successor)
        new_colors.append(2 * bit + ((color >> bit) & 1))
    return new_colors


def _shift_down_step(colors: list[int], target_class: int, cyclic: bool) -> int:
    """Recolor every item of ``target_class`` to a free color in {0,1,2}.

    Items of one class are pairwise non-adjacent (the coloring is
    proper), so the simultaneous recoloring is conflict-free.  Returns
    the number of items recolored.
    """
    length = len(colors)
    recolored = 0
    updates: dict[int, int] = {}
    for index, color in enumerate(colors):
        if color != target_class:
            continue
        forbidden = set()
        if index > 0:
            forbidden.add(colors[index - 1])
        elif cyclic:
            forbidden.add(colors[-1])
        if index + 1 < length:
            forbidden.add(colors[index + 1])
        elif cyclic:
            forbidden.add(colors[0])
        for candidate in (0, 1, 2):
            if candidate not in forbidden:
                updates[index] = candidate
                break
        else:  # pragma: no cover - degree <= 2 guarantees a free color
            raise InvalidInstanceError(
                "no free color in {0,1,2} for a degree-<=2 item"
            )
        recolored += 1
    for index, color in updates.items():
        colors[index] = color
    return recolored


def three_color_chain(
    chain: Chain, initial_colors: Mapping[Hashable, int]
) -> ChainColoringResult:
    """3-color ``chain`` starting from a proper initial coloring.

    Parameters
    ----------
    chain:
        The path or cycle to color.
    initial_colors:
        Item -> non-negative integer; adjacent items must differ.  In
        the paper's usage these are the colors of an initial
        ``X``-edge coloring, so the round count is ``O(log* X)``.

    Returns
    -------
    ChainColoringResult
        Proper 3-coloring of the chain and the rounds used.
    """
    items = chain.items
    try:
        colors = [int(initial_colors[item]) for item in items]
    except KeyError as exc:
        raise InvalidInstanceError(f"missing initial color for {exc.args[0]!r}") from None
    if any(c < 0 for c in colors):
        raise InvalidInstanceError("initial colors must be non-negative")
    for left, right in chain.neighbor_pairs():
        if initial_colors[left] == initial_colors[right]:
            raise InvalidInstanceError(
                f"initial coloring is not proper: {left!r} and {right!r} "
                f"both have color {initial_colors[left]}"
            )

    iterations = 0
    # The bit-trick fixpoint is a palette of size 6 ({0..5}): with all
    # colors < 6 the lowest differing bit is at most 2, so new colors
    # stay below 6.  Iterate until we are inside that fixpoint.
    while max(colors) > 5:
        colors = _reduction_step(colors, chain.cyclic)
        iterations += 1

    shift_rounds = 0
    for target_class in (5, 4, 3):
        _shift_down_step(colors, target_class, chain.cyclic)
        shift_rounds += 1

    result = {item: color for item, color in zip(items, colors)}
    return ChainColoringResult(
        colors=result, rounds=iterations + shift_rounds, iterations=iterations
    )


def three_color_chains(
    chains: Sequence[Chain], initial_colors: Mapping[Hashable, int]
) -> tuple[dict[Hashable, int], int]:
    """3-color many chains in parallel; rounds = max over chains.

    The chains are disjoint, so in the LOCAL model they run
    concurrently and the round cost is the maximum.
    """
    combined: dict[Hashable, int] = {}
    rounds = 0
    for chain in chains:
        result = three_color_chain(chain, initial_colors)
        combined.update(result.colors)
        rounds = max(rounds, result.rounds)
    return combined, rounds
