"""Section 4.1's defective edge coloring as a message-passing program.

The functional form (:mod:`repro.primitives.defective`) computes the
defective coloring centrally with round accounting; this module is the
*distributed* twin: a :class:`~repro.model.algorithm.NodeAlgorithm`
whose agents are the edges of the underlying graph (run it on a
line-graph network).  It exchanges real messages and follows the
paper's construction phase by phase:

1. **Numbering exchange** (1 round): each edge-agent is initialised
   with the two numbers ``(i, j)`` and group indices its endpoints
   assigned to it (per-node grouping is a purely local computation of
   the endpoints, performed by the launcher from the same deterministic
   rule as the functional form) and broadcasts its
   ``(group keys, temporary color)`` to all line-graph neighbors.

2. **Conflict discovery** (same round's inbox): an agent's conflict
   partners are the neighbors that share a group key *and* the
   temporary color — at most two, by the numbering argument (checked).

3. **Chain coloring** (``O(log* X)`` rounds): along the conflict
   chains, agents run a Linial-style reduction restricted to their
   ≤ 2 partners, down to a constant palette, then shift-down rounds to
   3 colors.  All chains run in parallel.

4. **Output**: the final color is the dense encoding of
   ``(i, j, chain color)`` — identical to the functional form's
   encoding, so the two implementations are directly comparable.

Tests validate that both forms yield colorings with the same defect and
color-count guarantees, and that the message-passing round count stays
in the ``O(log* X)`` envelope.
"""

from __future__ import annotations

from typing import Any, Hashable, Mapping

import networkx as nx

from repro.errors import AlgorithmInvariantError, ParameterError
from repro.graphs.edges import Edge, incident_edges
from repro.model.algorithm import NodeAlgorithm, NodeContext
from repro.model.edge_network import line_graph_network
from repro.model.network import Network
from repro.model.scheduler import ExecutionResult, Scheduler
from repro.primitives.defective import _pair_count, _pair_index
from repro.primitives.node_algorithms import build_linial_schedule
from repro.utils.gf import FieldPolynomial


class DefectiveEdgeColoringAlgorithm(NodeAlgorithm):
    """The distributed Section 4.1 program (agents = edges).

    Parameters
    ----------
    numbers:
        Edge -> ``(i, j)`` with ``i <= j`` — the numbers assigned by
        the edge's endpoints (local knowledge of the agent).
    group_keys:
        Edge -> the two ``(node, group index)`` keys of the edge.
    group_size:
        The ``4β`` cap (defines the final color encoding).
    id_space:
        Upper bound on the agents' unique IDs (the ``X`` of the
        ``O(log* X)`` chain-coloring bound); all agents derive the same
        reduction schedule from it.
    """

    #: Palette the degree-2 Linial schedule is guaranteed to reach
    #: before the shift-down.  The reduction stalls once no prime q
    #: satisfies q² < m and q > 2(k-1) with k = ceil(log_q m); for
    #: degree 2 every m > 25 admits a step (q = 5 or larger works), so
    #: the stall palette is at most 25 — a constant, as the O(log* X)
    #: bound requires.
    _INTERMEDIATE_PALETTE = 25

    def __init__(
        self,
        numbers: Mapping[Edge, tuple[int, int]],
        group_keys: Mapping[Edge, tuple[tuple[Hashable, int], tuple[Hashable, int]]],
        group_size: int,
        id_space: int,
    ) -> None:
        if group_size < 1:
            raise ParameterError(f"group_size must be >= 1, got {group_size}")
        self._numbers = dict(numbers)
        self._group_keys = dict(group_keys)
        self._group_size = group_size
        self._id_space = id_space

    # ------------------------------------------------------------------

    def initialize(self, ctx: NodeContext) -> None:
        edge = ctx.node
        ctx.state["temp"] = self._numbers[edge]
        ctx.state["groups"] = frozenset(self._group_keys[edge])
        ctx.state["phase"] = "announce"
        ctx.state["partners"] = None  # ports of conflict partners
        ctx.state["color"] = ctx.unique_id  # chain-coloring working color
        ctx.state["schedule"] = build_linial_schedule(self._id_space, 2)
        ctx.state["step"] = 0
        ctx.state["shift"] = self._INTERMEDIATE_PALETTE - 1

    def compose_messages(self, ctx: NodeContext) -> Mapping[int, Any]:
        phase = ctx.state["phase"]
        if phase == "announce":
            payload = (
                tuple(sorted(ctx.state["groups"], key=repr)),
                ctx.state["temp"],
            )
            return {port: payload for port in range(ctx.degree)}
        if phase in ("reduce", "shift"):
            return {
                port: ctx.state["color"] for port in ctx.state["partners"]
            }
        return {}

    def receive_messages(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        phase = ctx.state["phase"]
        if phase == "announce":
            self._discover_partners(ctx, inbox)
            return
        if phase == "reduce":
            self._reduction_step(ctx, inbox)
            return
        if phase == "shift":
            self._shift_step(ctx, inbox)
            return

    # ------------------------------------------------------------------

    def _discover_partners(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        partners = []
        for port, (groups, temp) in inbox.items():
            if temp == ctx.state["temp"] and set(groups) & set(
                ctx.state["groups"]
            ):
                partners.append(port)
        if len(partners) > 2:
            raise AlgorithmInvariantError(
                f"edge-agent {ctx.unique_id} found {len(partners)} conflict "
                "partners; the numbering argument bounds this by 2"
            )
        ctx.state["partners"] = tuple(sorted(partners))
        if not ctx.state["schedule"]:
            ctx.state["phase"] = "shift"
            if ctx.state["color"] >= self._INTERMEDIATE_PALETTE:
                raise AlgorithmInvariantError(
                    "empty schedule with an out-of-range starting color"
                )
        else:
            ctx.state["phase"] = "reduce"

    def _reduction_step(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        schedule = ctx.state["schedule"]
        params = schedule[ctx.state["step"]]
        q, k = params.q, params.k
        own = FieldPolynomial.from_color(ctx.state["color"], q, k)
        forbidden: set[int] = set()
        for port in ctx.state["partners"]:
            if port in inbox:
                other = FieldPolynomial.from_color(inbox[port], q, k)
                forbidden.update(own.agreement_points(other))
        for x in range(q):
            if x not in forbidden:
                ctx.state["color"] = x * q + own.evaluate(x)
                break
        else:  # pragma: no cover — q > 2(k-1) guarantees room
            raise AlgorithmInvariantError("no evaluation point left")
        ctx.state["step"] += 1
        if ctx.state["step"] == len(schedule):
            ctx.state["phase"] = "shift"

    def _shift_step(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        """Shift-down: classes 24, 23, ..., 3 recolor into {0, 1, 2}."""
        target = ctx.state["shift"]
        if ctx.state["color"] == target:
            used = {inbox[port] for port in ctx.state["partners"] if port in inbox}
            for candidate in (0, 1, 2):
                if candidate not in used:
                    ctx.state["color"] = candidate
                    break
            else:  # pragma: no cover — degree <= 2
                raise AlgorithmInvariantError("no free color in {0,1,2}")
        ctx.state["shift"] -= 1
        if ctx.state["shift"] < 3:
            ctx.halt()

    def output(self, ctx: NodeContext) -> int:
        i, j = ctx.state["temp"]
        return _pair_index(i, j, self._group_size) * 3 + ctx.state["color"]


def run_distributed_defective_coloring(
    graph: nx.Graph, beta: int, *, seed: int | None = None
) -> tuple[dict[Edge, int], ExecutionResult, int]:
    """Launch the distributed Section 4.1 program on ``graph``.

    Performs the per-node grouping locally (the same deterministic rule
    as the functional form), builds the line-graph network, runs the
    algorithm, and returns ``(coloring, execution, color_count)``.
    """
    if beta < 1:
        raise ParameterError(f"beta must be >= 1, got {beta}")
    group_size = 4 * beta
    numbers: dict[Edge, list[int]] = {}
    group_keys: dict[Edge, list[tuple[Hashable, int]]] = {}
    for node in graph.nodes():
        for index, edge in enumerate(incident_edges(graph, node)):
            numbers.setdefault(edge, []).append(index % group_size + 1)
            group_keys.setdefault(edge, []).append((node, index // group_size))
    temp = {
        edge: (min(values), max(values)) for edge, values in numbers.items()
    }
    keys = {edge: tuple(values) for edge, values in group_keys.items()}

    from repro.graphs.properties import assign_unique_ids

    node_ids = assign_unique_ids(graph, seed=seed)
    network = line_graph_network(graph, node_ids=node_ids)
    algorithm = DefectiveEdgeColoringAlgorithm(
        temp, keys, group_size, id_space=network.max_id()
    )
    execution = Scheduler(network).run(algorithm)
    color_count = _pair_count(group_size) * 3
    return dict(execution.outputs), execution, color_count
