"""Linial-style color reduction to an ``O(d²)`` palette in ``O(log* X)`` rounds.

The paper starts its main algorithm by "computing an O(Δ̄²)-edge
coloring in O(log* n) rounds [Lin87]" (Section 4.3) and repeatedly
appeals to the fact that, given an ``X``-coloring, list coloring
constant-degree graphs costs ``O(log* X)``.  This module provides that
machinery as a *vertex* procedure on an arbitrary conflict graph — the
callers run it on the line graph to color edges.

One reduction round (the classic construction): let the current proper
coloring use palette ``{0, ..., m-1}`` and let ``d`` be the maximum
degree.  Pick a prime ``q`` and write each color as a polynomial of
degree ``< k`` over ``GF(q)`` (its base-``q`` digits), where
``k = ceil(log_q m)``.  Two distinct polynomials agree on at most
``k - 1`` field elements, so if ``q > d * (k - 1)`` every node can pick
a point ``x`` where its polynomial disagrees with all neighbors'
polynomials; the new color ``(x, f(x))`` lives in a palette of size
``q²``.  Iterating shrinks ``m`` to a fixpoint of size
``next_prime(d + 1)² = O(d²)`` after ``O(log* m)`` rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import numpy as np

from repro.errors import AlgorithmInvariantError, InvalidInstanceError
from repro.utils.gf import digits_base_q
from repro.utils.logstar import ceil_log
from repro.utils.primes import next_prime


@dataclass(frozen=True)
class LinialStepParameters:
    """The ``(q, k)`` pair used by one reduction round.

    ``q`` is the field size (prime), ``k`` the number of base-``q``
    digits of the current palette, and ``q²`` the next palette size.
    """

    q: int
    k: int

    @property
    def new_palette_size(self) -> int:
        return self.q * self.q


def linial_step_parameters(palette_size: int, degree: int) -> LinialStepParameters:
    """Return the smallest valid ``(q, k)`` for one reduction round.

    Searches primes upward until ``q > degree * (k - 1)`` with
    ``k = ceil(log_q palette_size)`` — the collision bound that makes
    the step sound.
    """
    if palette_size < 2:
        raise InvalidInstanceError(
            f"palette size must be >= 2, got {palette_size}"
        )
    if degree < 0:
        raise InvalidInstanceError(f"degree must be >= 0, got {degree}")
    q = 2
    while True:
        q = next_prime(q)
        k = max(1, ceil_log(q, palette_size))
        if q > degree * max(0, k - 1):
            return LinialStepParameters(q=q, k=k)
        q += 1


@dataclass(frozen=True)
class LinialResult:
    """Outcome of the iterated reduction.

    Attributes
    ----------
    colors:
        Item -> color in ``{0, ..., palette_size - 1}``.
    palette_size:
        Size of the final palette (``O(d²)``).
    rounds:
        Number of synchronous reduction rounds performed.
    step_parameters:
        The ``(q, k)`` used by each round, for analysis/benchmarks.
    """

    colors: dict[Hashable, int]
    palette_size: int
    rounds: int
    step_parameters: tuple[LinialStepParameters, ...]


def _one_round(
    adjacency: Mapping[Hashable, list[Hashable]],
    colors: Mapping[Hashable, int],
    params: LinialStepParameters,
) -> dict[Hashable, int]:
    """Execute one synchronous reduction round (all nodes in parallel).

    Vectorised: each item's polynomial is evaluated on all of ``GF(q)``
    at once (a ``digits @ powers`` product mod ``q``); the forbidden
    evaluation points against all neighbors reduce to elementwise
    equality of the evaluation tables.  This is a pure performance
    rewrite of the textbook per-pair ``agreement_points`` loop — tests
    cross-check it against :meth:`FieldPolynomial.agreement_points`.
    """
    q, k = params.q, params.k
    xs = np.arange(q, dtype=np.int64)
    # powers[j, x] = x^j mod q
    powers = np.ones((k, q), dtype=np.int64)
    for j in range(1, k):
        powers[j] = (powers[j - 1] * xs) % q

    tables: dict[Hashable, np.ndarray] = {}
    for item, color in colors.items():
        digits = np.array(digits_base_q(color, q, k), dtype=np.int64)
        tables[item] = (digits @ powers) % q

    new_colors: dict[Hashable, int] = {}
    for item, neighbors in adjacency.items():
        own = tables[item]
        if neighbors:
            for neighbor in neighbors:
                if colors[neighbor] == colors[item]:
                    raise InvalidInstanceError(
                        f"items {item!r} and {neighbor!r} share color "
                        f"{colors[item]}; the input coloring must be proper"
                    )
            stacked = np.stack([tables[neighbor] for neighbor in neighbors])
            collision = np.any(stacked == own, axis=0)
            free = np.flatnonzero(~collision)
        else:
            free = xs
        if free.size == 0:
            raise AlgorithmInvariantError(
                f"no evaluation point left for {item!r}: q={q} too small "
                f"for degree {len(neighbors)} and k={k}"
            )
        x = int(free[0])
        new_colors[item] = x * q + int(own[x])
    return new_colors


def linial_reduce(
    adjacency: Mapping[Hashable, list[Hashable]],
    initial_colors: Mapping[Hashable, int],
    *,
    stop_at: int | None = None,
) -> LinialResult:
    """Iterate the reduction until the ``O(d²)`` fixpoint.

    Parameters
    ----------
    adjacency:
        Symmetric adjacency of the conflict graph (for edge coloring:
        the line graph).
    initial_colors:
        Proper coloring with non-negative integer colors — typically
        the unique IDs, giving the ``O(log* n)`` round bound.
    stop_at:
        Optional early-exit palette size: stop as soon as the palette
        is at most this value.

    Returns
    -------
    LinialResult
        Final proper coloring, its palette size and the round count.
    """
    if not adjacency:
        return LinialResult(colors={}, palette_size=0, rounds=0, step_parameters=())
    missing = [item for item in adjacency if item not in initial_colors]
    if missing:
        raise InvalidInstanceError(
            f"items without initial colors: {missing[:3]!r}"
        )
    colors = {item: int(initial_colors[item]) for item in adjacency}
    if any(c < 0 for c in colors.values()):
        raise InvalidInstanceError("initial colors must be non-negative")
    for item, neighbors in adjacency.items():
        for neighbor in neighbors:
            if colors[item] == colors[neighbor]:
                raise InvalidInstanceError(
                    f"items {item!r} and {neighbor!r} share color "
                    f"{colors[item]}; the input coloring must be proper"
                )

    degree = max(len(neighbors) for neighbors in adjacency.values())
    if degree == 0:
        # No conflicts at all: a single color suffices, zero rounds.
        return LinialResult(
            colors={item: 0 for item in adjacency},
            palette_size=1,
            rounds=0,
            step_parameters=(),
        )

    palette_size = max(colors.values()) + 1
    steps: list[LinialStepParameters] = []
    while True:
        if stop_at is not None and palette_size <= stop_at:
            break
        if palette_size < 2:
            break
        params = linial_step_parameters(palette_size, degree)
        if params.new_palette_size >= palette_size:
            break  # fixpoint reached; further rounds would not shrink
        colors = _one_round(adjacency, colors, params)
        palette_size = params.new_palette_size
        steps.append(params)

    return LinialResult(
        colors=colors,
        palette_size=palette_size,
        rounds=len(steps),
        step_parameters=tuple(steps),
    )


def linial_fixpoint_palette(degree: int) -> int:
    """Return the fixpoint palette size ``next_prime(degree + 1)²``.

    Exposed for the analysis module: this is the explicit ``O(d²)``
    the implementation converges to, used when predicting the size of
    the initial edge coloring.
    """
    if degree < 0:
        raise InvalidInstanceError(f"degree must be >= 0, got {degree}")
    if degree == 0:
        return 1
    q = next_prime(degree + 1)  # smallest prime strictly greater than degree
    return q * q
