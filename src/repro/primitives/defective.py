"""The ``deg(e)/(2β)``-defective ``O(β²)``-edge coloring of Section 4.1.

The construction, exactly as in the paper:

1.  Every node ``v`` partitions its incident edges into
    ``ceil(deg(v) / 4β)`` groups of size at most ``4β`` and numbers the
    edges within each group with distinct values ``1 .. 4β``.
2.  Each edge ``e = {u, v}`` learns the two numbers ``i, j`` it was
    assigned by its endpoints (one round of communication) and takes
    the *temporary color* ``(min(i,j), max(i,j))``.
3.  Within one group, at most two edges share a temporary color, so
    the conflict graph "same temporary color + share a group" has
    maximum degree 2 — a disjoint union of paths and cycles.  These
    chains are 3-colored in ``O(log* X)`` rounds (Cole-Vishkin), seeded
    by the given initial ``X``-edge coloring.
4.  The final color of an edge is the triple ``(i, j, chain color)`` —
    at most ``3 * 4β * (4β + 1) / 2 = O(β²)`` colors.

Defect bound (proved in the paper, *checked* by our validator): two
edges sharing a final color and a node must lie in different groups of
that node, so the defect of ``e = {u, v}`` is at most
``(ceil(deg(u)/4β) - 1) + (ceil(deg(v)/4β) - 1) <= deg(e) / (2β)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import networkx as nx

from repro.errors import AlgorithmInvariantError, InvalidInstanceError, ParameterError
from repro.graphs.edges import Edge, edge_key, incident_edges
from repro.primitives.chain_coloring import three_color_chains
from repro.utils.chains import Chain, chains_from_adjacency


@dataclass(frozen=True)
class DefectiveColoringResult:
    """Outcome of the defective edge coloring.

    Attributes
    ----------
    colors:
        Edge -> defective color (dense non-negative integers).
    color_count:
        Number of *possible* colors for this β (the ``O(β²)`` bound;
        the number of colors actually used may be smaller).
    rounds:
        LOCAL rounds: 1 for the number exchange, plus the parallel
        chain coloring, plus 1 to publish the final color.
    beta:
        The β the coloring was built for (defect promise
        ``deg(e) / (2β)``).
    groups:
        Node -> edge -> group index, exposed for validation and the
        figure-reproduction benches.
    """

    colors: dict[Edge, int]
    color_count: int
    rounds: int
    beta: int
    groups: dict[Hashable, dict[Edge, int]]


def _assign_groups_and_numbers(
    graph: nx.Graph, group_size: int
) -> tuple[dict[Hashable, dict[Edge, int]], dict[tuple[Hashable, Edge], int]]:
    """Each node partitions its edges into groups and numbers them.

    Returns ``(groups, numbers)`` where ``groups[v][e]`` is the group
    index of ``e`` at ``v`` and ``numbers[(v, e)]`` the 1-based number
    of ``e`` inside that group.
    """
    groups: dict[Hashable, dict[Edge, int]] = {}
    numbers: dict[tuple[Hashable, Edge], int] = {}
    for node in graph.nodes():
        node_groups: dict[Edge, int] = {}
        for index, edge in enumerate(incident_edges(graph, node)):
            node_groups[edge] = index // group_size
            numbers[(node, edge)] = index % group_size + 1
        groups[node] = node_groups
    return groups, numbers


def _conflict_adjacency(
    graph: nx.Graph,
    groups: Mapping[Hashable, Mapping[Edge, int]],
    temp_colors: Mapping[Edge, tuple[int, int]],
) -> dict[Edge, set[Edge]]:
    """Adjacency of "same temporary color and share a group".

    By the numbering argument this graph has maximum degree 2; we
    *verify* that instead of assuming it.
    """
    adjacency: dict[Edge, set[Edge]] = {edge: set() for edge in temp_colors}
    for node, node_groups in groups.items():
        # Bucket this node's edges by (group, temp color); any bucket of
        # size 2 contributes a conflict pair.
        buckets: dict[tuple[int, tuple[int, int]], list[Edge]] = {}
        for edge, group in node_groups.items():
            buckets.setdefault((group, temp_colors[edge]), []).append(edge)
        for bucket_edges in buckets.values():
            if len(bucket_edges) > 2:
                raise AlgorithmInvariantError(
                    "more than two edges share a group and a temporary "
                    f"color at node {node!r}: {bucket_edges!r}"
                )
            if len(bucket_edges) == 2:
                first, second = bucket_edges
                adjacency[first].add(second)
                adjacency[second].add(first)
    for edge, neighbors in adjacency.items():
        if len(neighbors) > 2:
            raise AlgorithmInvariantError(
                f"conflict degree of {edge!r} is {len(neighbors)} > 2"
            )
    return adjacency


def defective_edge_coloring(
    graph: nx.Graph,
    beta: int,
    initial_coloring: Mapping[Edge, int],
) -> DefectiveColoringResult:
    """Compute the Section 4.1 defective edge coloring.

    Parameters
    ----------
    graph:
        Host graph.
    beta:
        The defect parameter β >= 1; the result promises defect at most
        ``deg(e) / (2β)`` per edge using ``O(β²)`` colors.
    initial_coloring:
        A proper ``X``-edge coloring used to seed the chain 3-coloring
        (the paper's given initial coloring).  Must cover all edges.

    Returns
    -------
    DefectiveColoringResult
    """
    if beta < 1:
        raise ParameterError(f"beta must be >= 1, got {beta}")
    edges = [edge_key(u, v) for u, v in graph.edges()]
    missing = [e for e in edges if e not in initial_coloring]
    if missing:
        raise InvalidInstanceError(
            f"edges without an initial color: {missing[:3]!r}"
        )
    if not edges:
        return DefectiveColoringResult(
            colors={}, color_count=0, rounds=0, beta=beta, groups={}
        )

    group_size = 4 * beta
    groups, numbers = _assign_groups_and_numbers(graph, group_size)

    # Round 1: endpoints exchange their numbers; each edge forms its
    # temporary color (i, j) with i <= j.
    temp_colors: dict[Edge, tuple[int, int]] = {}
    for edge in edges:
        u, v = edge
        i, j = numbers[(u, edge)], numbers[(v, edge)]
        temp_colors[edge] = (min(i, j), max(i, j))

    # Chains of conflicting edges, 3-colored in parallel (O(log* X)).
    adjacency = _conflict_adjacency(graph, groups, temp_colors)
    chains: list[Chain] = chains_from_adjacency(adjacency)
    chain_colors, chain_rounds = three_color_chains(chains, initial_coloring)

    # Final color: dense encoding of the triple (i, j, chain color).
    colors: dict[Edge, int] = {}
    for edge in edges:
        i, j = temp_colors[edge]
        pair_index = _pair_index(i, j, group_size)
        colors[edge] = pair_index * 3 + chain_colors[edge]
    color_count = _pair_count(group_size) * 3

    # Rounds: 1 (exchange numbers) + chains (parallel) + 1 (publish).
    rounds = 1 + chain_rounds + 1
    return DefectiveColoringResult(
        colors=colors,
        color_count=color_count,
        rounds=rounds,
        beta=beta,
        groups=groups,
    )


def _pair_index(i: int, j: int, group_size: int) -> int:
    """Dense index of the pair ``(i, j)`` with ``1 <= i <= j <= group_size``."""
    if not 1 <= i <= j <= group_size:
        raise AlgorithmInvariantError(
            f"invalid number pair ({i}, {j}) for group size {group_size}"
        )
    # Pairs are ordered (1,1), (1,2), ..., (1,g), (2,2), ..., (g,g).
    preceding = (i - 1) * group_size - (i - 1) * (i - 2) // 2
    return preceding + (j - i)


def _pair_count(group_size: int) -> int:
    """Number of pairs ``(i, j)`` with ``1 <= i <= j <= group_size``."""
    return group_size * (group_size + 1) // 2


def defect_bound(edge_degree: int, beta: int) -> float:
    """The paper's defect promise for an edge of degree ``deg(e)``.

    ``deg(e) / (2β)`` — exposed so validators and tests state the bound
    exactly once.
    """
    if beta < 1:
        raise ParameterError(f"beta must be >= 1, got {beta}")
    return edge_degree / (2 * beta)
