"""Message-passing implementations of the primitive subroutines.

The functional primitives (:mod:`repro.primitives.linial`,
:mod:`repro.primitives.greedy_class`, ...) compute results plus round
counts directly; the classes here are genuine
:class:`~repro.model.algorithm.NodeAlgorithm` programs that run on the
synchronous simulator of :mod:`repro.model`, exchanging real messages.
Tests cross-validate the two forms: same proper colorings, and round
counts matching the functional accounting.

All three algorithms are *uniform*: every node runs the same code and
decides everything from ``(n, Δ, unique_id, ports, messages)`` only, as
the LOCAL model requires.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import AlgorithmInvariantError, ParameterError
from repro.model.algorithm import NodeAlgorithm, NodeContext
from repro.primitives.linial import LinialStepParameters, linial_step_parameters
from repro.utils.gf import FieldPolynomial


def build_linial_schedule(
    id_space: int, degree_bound: int
) -> list[LinialStepParameters]:
    """Return the deterministic ``(q, k)`` schedule all nodes agree on.

    Every node knows the ID space and ``Δ``, so all nodes compute the
    same schedule locally — no coordination needed.  The schedule runs
    the reduction until its fixpoint.
    """
    if id_space < 1:
        raise ParameterError(f"id_space must be >= 1, got {id_space}")
    schedule: list[LinialStepParameters] = []
    palette = id_space + 1
    while palette >= 2:
        params = linial_step_parameters(palette, degree_bound)
        if params.new_palette_size >= palette:
            break
        schedule.append(params)
        palette = params.new_palette_size
    return schedule


class LinialColorReductionAlgorithm(NodeAlgorithm):
    """Linial's color reduction as a real message-passing program.

    Each round, every node broadcasts its current color, then applies
    one ``GF(q)`` reduction step against the received neighbor colors.
    After the schedule is exhausted the node halts with a color in an
    ``O(Δ²)`` palette.  Rounds: ``len(schedule) = O(log* id_space)``.
    """

    #: Colors are plain ints, so engine="auto" may vectorize this.
    scalar_payloads = True

    def __init__(self, id_space: int) -> None:
        self._id_space = id_space

    def initialize(self, ctx: NodeContext) -> None:
        ctx.state["color"] = ctx.unique_id
        ctx.state["schedule"] = build_linial_schedule(
            self._id_space, ctx.max_degree
        )
        ctx.state["step"] = 0
        if not ctx.state["schedule"]:
            ctx.halt()

    def compose_messages(self, ctx: NodeContext) -> Mapping[int, Any]:
        return dict.fromkeys(range(ctx.degree), ctx.state["color"])

    def receive_messages(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        schedule: list[LinialStepParameters] = ctx.state["schedule"]
        params = schedule[ctx.state["step"]]
        q, k = params.q, params.k
        own = FieldPolynomial.from_color(ctx.state["color"], q, k)
        forbidden: set[int] = set()
        for color in inbox.values():
            if color == ctx.state["color"]:
                raise AlgorithmInvariantError(
                    f"node {ctx.unique_id} saw its own color at a neighbor"
                )
            other = FieldPolynomial.from_color(color, q, k)
            forbidden.update(own.agreement_points(other))
        for x in range(q):
            if x not in forbidden:
                ctx.state["color"] = x * q + own.evaluate(x)
                break
        else:  # pragma: no cover — guarded by q > d(k-1)
            raise AlgorithmInvariantError(
                f"node {ctx.unique_id} found no free evaluation point"
            )
        ctx.state["step"] += 1
        if ctx.state["step"] == len(schedule):
            ctx.halt()

    def output(self, ctx: NodeContext) -> int:
        return ctx.state["color"]


class GreedyClassSweepAlgorithm(NodeAlgorithm):
    """The greedy class sweep as a message-passing program.

    Intended to run on the *line graph* network: each simulated node is
    an edge of the underlying graph.  Nodes are given a proper class
    assignment and a color list; in round ``r`` the nodes of class
    ``r`` pick the smallest list color not yet announced by a neighbor,
    then announce it.  Rounds: ``class_count (+1 for the final
    announcement of the last class)``.
    """

    def __init__(
        self,
        classes: Mapping[Any, int],
        lists: Mapping[Any, frozenset[int]],
        class_count: int,
    ) -> None:
        self._classes = dict(classes)
        self._lists = dict(lists)
        self._class_count = class_count

    def initialize(self, ctx: NodeContext) -> None:
        ctx.state["class"] = self._classes[ctx.node]
        ctx.state["list"] = set(self._lists[ctx.node])
        ctx.state["round"] = 0
        ctx.state["color"] = None
        ctx.state["announced"] = False

    def compose_messages(self, ctx: NodeContext) -> Mapping[int, Any]:
        if ctx.state["color"] is not None and not ctx.state["announced"]:
            ctx.state["announced"] = True
            return dict.fromkeys(range(ctx.degree), ctx.state["color"])
        return {}

    def receive_messages(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        for color in inbox.values():
            ctx.state["list"].discard(color)
        if ctx.state["round"] == ctx.state["class"]:
            if not ctx.state["list"]:
                raise AlgorithmInvariantError(
                    f"node {ctx.unique_id} ran out of list colors"
                )
            ctx.state["color"] = min(ctx.state["list"])
        ctx.state["round"] += 1
        # One extra round after the last class lets the final picks be
        # announced (an edge halts once nothing more can affect it).
        if ctx.state["round"] > self._class_count:
            ctx.halt()

    def output(self, ctx: NodeContext) -> int | None:
        return ctx.state["color"]


class PushFloodAlgorithm(NodeAlgorithm):
    """FloodMax with per-port distinct payloads (push-path perf probe).

    Computes exactly what :class:`FloodMaxAlgorithm` computes, but
    encodes each payload as ``best * (Δ + 1) + port`` — distinct across
    ports, so the scheduler's broadcast fast path never applies and
    every message exercises the per-message push path (the part the
    numpy engine turns into one fancy-indexed scatter per round).
    Receivers decode with a floor division; for ``best1 > best2`` the
    encodings never interleave (``(best1 - best2)·(Δ+1) > Δ ≥ port``),
    so the decoded maximum is the true maximum.  Used by
    ``python -m repro bench-core`` as the push-scatter workload.
    """

    #: Encoded IDs are plain ints, so engine="auto" may vectorize this.
    scalar_payloads = True

    def __init__(self, horizon: int) -> None:
        if horizon < 0:
            raise ParameterError(f"horizon must be >= 0, got {horizon}")
        self._horizon = horizon

    def initialize(self, ctx: NodeContext) -> None:
        ctx.state["best"] = ctx.unique_id
        ctx.state["round"] = 0
        if self._horizon == 0:
            ctx.halt()

    def compose_messages(self, ctx: NodeContext) -> Mapping[int, Any]:
        base = ctx.state["best"] * (ctx.max_degree + 1)
        return {port: base + port for port in range(ctx.degree)}

    def receive_messages(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        if inbox:
            best = max(inbox.values()) // (ctx.max_degree + 1)
            if best > ctx.state["best"]:
                ctx.state["best"] = best
        ctx.state["round"] += 1
        if ctx.state["round"] >= self._horizon:
            ctx.halt()

    def output(self, ctx: NodeContext) -> int:
        return ctx.state["best"]


class FloodMaxAlgorithm(NodeAlgorithm):
    """Flood the maximum ID for a fixed horizon (scheduler demo/test).

    After ``horizon`` rounds every node within distance ``horizon`` of
    the maximum-ID node knows the maximum; with ``horizon >= diameter``
    all do.  Used by the model tests to pin down the synchronous
    semantics (information travels exactly one hop per round).
    """

    #: IDs are plain ints, so engine="auto" may vectorize this.
    scalar_payloads = True

    def __init__(self, horizon: int) -> None:
        if horizon < 0:
            raise ParameterError(f"horizon must be >= 0, got {horizon}")
        self._horizon = horizon

    def initialize(self, ctx: NodeContext) -> None:
        ctx.state["best"] = ctx.unique_id
        ctx.state["round"] = 0
        if self._horizon == 0:
            ctx.halt()

    def compose_messages(self, ctx: NodeContext) -> Mapping[int, Any]:
        # dict.fromkeys builds the uniform broadcast outbox at C speed;
        # identical mapping to a per-port comprehension.
        return dict.fromkeys(range(ctx.degree), ctx.state["best"])

    def receive_messages(self, ctx: NodeContext, inbox: Mapping[int, Any]) -> None:
        if inbox:
            best = max(inbox.values())
            if best > ctx.state["best"]:
                ctx.state["best"] = best
        ctx.state["round"] += 1
        if ctx.state["round"] >= self._horizon:
            ctx.halt()

    def output(self, ctx: NodeContext) -> int:
        return ctx.state["best"]
