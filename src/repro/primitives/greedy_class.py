"""Greedy list coloring by color classes.

The universal base case of the paper's recursion: given a proper
coloring ``φ`` of the (residual) conflict graph with ``X`` classes,
iterate over the classes; all edges of one class are pairwise
non-adjacent, so they can simultaneously (one LOCAL round per class)
pick the smallest color remaining in their residual lists.  For a
``(deg(e) + 1)``-list instance the residual list of an uncolored edge
is never empty (see the residual invariant in
:mod:`repro.coloring.edge_coloring`), so the sweep always completes.

Round cost: one round per class — ``X`` rounds.  The callers keep ``X``
small by first reducing the class count (Linial to ``O(Δ̄²)``, then
optionally Kuhn-Wattenhofer to ``Δ̄ + 1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import AlgorithmInvariantError, InvalidInstanceError
from repro.coloring.edge_coloring import PartialEdgeColoring
from repro.graphs.edges import Edge


@dataclass(frozen=True)
class GreedyClassResult:
    """Outcome of a greedy class sweep.

    Attributes
    ----------
    rounds:
        Rounds consumed — the number of classes processed (every class
        costs a round in lockstep execution, whether or not any of the
        executing node's edges belong to it).
    edges_colored:
        Number of edges colored by the sweep.
    """

    rounds: int
    edges_colored: int


def greedy_by_classes(
    coloring: PartialEdgeColoring,
    classes: Mapping[Edge, int],
    *,
    class_count: int | None = None,
) -> GreedyClassResult:
    """Color all uncolored edges of ``coloring`` by sweeping ``classes``.

    Parameters
    ----------
    coloring:
        Partial coloring to complete; every uncolored edge must appear
        in ``classes``.
    classes:
        A proper coloring of the residual conflict graph: adjacent
        uncolored edges must be in different classes.  (Violations are
        detected — the simultaneous greedy inside a class would then
        produce a conflict, which :class:`PartialEdgeColoring` refuses.)
    class_count:
        The number of classes to charge as rounds.  Defaults to the
        palette size implied by ``classes`` (max class value + 1 when
        classes are 0-based integers, else the number of distinct
        values).  Lockstep execution costs a round per class even if a
        class is empty.

    Returns
    -------
    GreedyClassResult

    Raises
    ------
    AlgorithmInvariantError
        If some edge has an empty residual list — impossible for
        ``(deg(e)+1)``-list instances, so this signals a caller bug.
    """
    pending = coloring.uncolored_edges()
    missing = [edge for edge in pending if edge not in classes]
    if missing:
        raise InvalidInstanceError(
            f"uncolored edges without a class: {missing[:3]!r}"
        )

    by_class: dict[int, list[Edge]] = {}
    for edge in pending:
        by_class.setdefault(classes[edge], []).append(edge)

    if class_count is None:
        values = set(by_class)
        if values and all(isinstance(v, int) and v >= 0 for v in values):
            class_count = max(values) + 1
        else:
            class_count = len(values)

    edges_colored = 0
    for class_value in sorted(by_class):
        # One LOCAL round: all edges of this class act simultaneously.
        # They are pairwise non-adjacent, so PartialEdgeColoring's
        # incremental conflict detection will accept all of them; if the
        # caller supplied an improper class partition, assign() raises.
        for edge in by_class[class_value]:
            residual = coloring.residual_list(edge)
            if not residual:
                raise AlgorithmInvariantError(
                    f"edge {edge!r} ran out of list colors during the "
                    "greedy sweep; the instance was not (deg+1)-feasible"
                )
            coloring.assign(edge, min(residual))
            edges_colored += 1

    return GreedyClassResult(rounds=class_count, edges_colored=edges_colored)
