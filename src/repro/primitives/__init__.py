"""Primitive distributed subroutines the paper builds on.

These are the procedures whose round costs appear as the additive and
multiplicative terms of the paper's bounds:

* :mod:`repro.primitives.chain_coloring` — Cole-Vishkin style
  3-coloring of paths/cycles in ``O(log* X)`` rounds, used inside the
  defective edge coloring of Section 4.1;
* :mod:`repro.primitives.linial` — Linial-style color reduction to an
  ``O(d²)`` palette in ``O(log* X)`` rounds via polynomials over
  ``GF(q)``; running it on the line graph yields the initial
  ``O(Δ̄²)``-edge coloring of Section 4.3;
* :mod:`repro.primitives.greedy_class` — the greedy sweep over the
  classes of a proper coloring (edges of one class are non-adjacent and
  can pick colors simultaneously), the universal base case;
* :mod:`repro.primitives.color_reduction` — trivial one-color-per-round
  reduction and the Kuhn-Wattenhofer parallel reduction (the
  ``O(Δ log Δ + log* n)`` baseline of [SV93, KW06]);
* :mod:`repro.primitives.defective` — the ``deg(e)/(2β)``-defective
  ``O(β²)``-edge coloring of Section 4.1.

Each functional primitive returns its result together with the number
of LOCAL rounds it needs; message-passing twins in
:mod:`repro.primitives.node_algorithms` run on the simulator and are
cross-validated against the functional forms by the test suite.
"""

from repro.primitives.chain_coloring import ChainColoringResult, three_color_chain
from repro.primitives.linial import LinialResult, linial_reduce, linial_step_parameters
from repro.primitives.greedy_class import GreedyClassResult, greedy_by_classes
from repro.primitives.color_reduction import (
    ReductionResult,
    kuhn_wattenhofer_reduction,
    one_color_per_round_reduction,
)
from repro.primitives.defective import DefectiveColoringResult, defective_edge_coloring

__all__ = [
    "ChainColoringResult",
    "three_color_chain",
    "LinialResult",
    "linial_reduce",
    "linial_step_parameters",
    "GreedyClassResult",
    "greedy_by_classes",
    "ReductionResult",
    "kuhn_wattenhofer_reduction",
    "one_color_per_round_reduction",
    "DefectiveColoringResult",
    "defective_edge_coloring",
]
