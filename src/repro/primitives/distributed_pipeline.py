"""A complete edge coloring computed end-to-end by message passing.

Everything else in the library accounts rounds through the ledger with
functional primitives; this module demonstrates that the substrate can
also run a full algorithm purely as message-passing programs on the
simulator — the [Lin87]-style baseline as two genuinely distributed
stages on the line-graph network:

1. :class:`~repro.primitives.node_algorithms.LinialColorReductionAlgorithm`
   computes an ``O(Δ̄²)``-edge coloring in ``O(log* n)`` rounds;
2. :class:`~repro.primitives.node_algorithms.GreedyClassSweepAlgorithm`
   sweeps the classes, each edge picking the smallest free color from
   the ``2Δ-1`` palette.

The launcher stitches the stages (the class assignment of stage 1
becomes the schedule of stage 2 — in a real network the agents simply
keep their state; re-instantiating the algorithm models that) and
returns a validated coloring plus the exact simulated round total.
Tests compare it round-for-round against the ledger-accounted
``linial_greedy`` baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.coloring.verify import check_palette_bound, check_proper_edge_coloring
from repro.graphs.edges import Edge, edge_set
from repro.graphs.properties import assign_unique_ids, max_degree
from repro.model.edge_network import line_graph_network
from repro.model.scheduler import Scheduler
from repro.primitives.node_algorithms import (
    GreedyClassSweepAlgorithm,
    LinialColorReductionAlgorithm,
)


@dataclass(frozen=True)
class DistributedRunResult:
    """Outcome of the fully simulated pipeline.

    Attributes
    ----------
    coloring:
        Edge -> color in ``{1, ..., 2Δ-1}`` (validated).
    rounds:
        Total simulated rounds (stage 1 + stage 2).
    messages:
        Total messages exchanged across both stages.
    class_palette:
        Size of the intermediate ``O(Δ̄²)`` class palette.
    """

    coloring: dict[Edge, int]
    rounds: int
    messages: int
    class_palette: int


def distributed_linial_greedy_edge_coloring(
    graph: nx.Graph, *, seed: int | None = None, max_rounds: int = 100_000
) -> DistributedRunResult:
    """Run the two-stage message-passing pipeline on ``graph``.

    Rounds: ``O(log* n)`` for stage 1 plus one round per class (the
    ``O(Δ̄²)`` term) for stage 2 — the [Lin87] baseline, now with every
    round realised as actual synchronous message exchange.
    """
    delta = max_degree(graph)
    if graph.number_of_edges() == 0:
        return DistributedRunResult(
            coloring={}, rounds=0, messages=0, class_palette=0
        )

    node_ids = assign_unique_ids(graph, seed=seed)
    network = line_graph_network(graph, node_ids=node_ids)

    # Stage 1: O(Δ̄²) classes in O(log* n) rounds.
    stage1 = Scheduler(network, max_rounds=max_rounds).run(
        LinialColorReductionAlgorithm(id_space=network.max_id())
    )
    classes = dict(stage1.outputs)
    class_palette = max(classes.values()) + 1

    # Stage 2: greedy sweep over the classes with the 2Δ-1 palette.
    palette = frozenset(range(1, max(2, 2 * delta)))
    lists = {edge: palette for edge in edge_set(graph)}
    stage2 = Scheduler(network, max_rounds=max_rounds).run(
        GreedyClassSweepAlgorithm(classes, lists, class_palette)
    )
    coloring = {edge: color for edge, color in stage2.outputs.items()}

    check_proper_edge_coloring(graph, coloring)
    check_palette_bound(coloring, max(1, 2 * delta - 1))
    return DistributedRunResult(
        coloring=coloring,
        rounds=stage1.rounds + stage2.rounds,
        messages=stage1.messages_sent + stage2.messages_sent,
        class_palette=class_palette,
    )
