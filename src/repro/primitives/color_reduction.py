"""Proper-coloring palette reduction on a conflict graph.

Two classic procedures, both operating on an arbitrary conflict graph
(the callers use the line graph):

* :func:`one_color_per_round_reduction` — the folklore reduction that
  removes one color per round (all items of the top class simultaneously
  pick a smaller free color).  ``m -> d + 1`` in ``m - (d + 1)`` rounds.
  Combined with Linial this realises the ``O(Δ² + log* n)`` bound the
  paper attributes to [Lin87].

* :func:`kuhn_wattenhofer_reduction` — the parallelised reduction of
  Szegedy-Vishwanathan / Kuhn-Wattenhofer [SV93, KW06]: split the ``m``
  classes into buckets of ``2(d + 1)`` consecutive classes with
  *disjoint* target palettes of size ``d + 1``; all buckets reduce in
  parallel, halving the palette at a cost of ``2(d + 1)`` rounds per
  halving.  ``m -> d + 1`` in ``O(d log(m / d))`` rounds, realising the
  ``O(Δ log Δ + log* n)`` baseline the paper cites.

Both return proper colorings over ``{0, ..., d}`` (d + 1 colors) and
exact round counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.errors import AlgorithmInvariantError, InvalidInstanceError


@dataclass(frozen=True)
class ReductionResult:
    """Outcome of a palette reduction.

    Attributes
    ----------
    colors:
        Item -> color in ``{0, ..., palette_size - 1}``.
    palette_size:
        Final palette size (``d + 1`` unless the input was smaller).
    rounds:
        Synchronous rounds consumed.
    """

    colors: dict[Hashable, int]
    palette_size: int
    rounds: int


def _validate_proper(
    adjacency: Mapping[Hashable, list[Hashable]], colors: Mapping[Hashable, int]
) -> None:
    for item, neighbors in adjacency.items():
        if item not in colors:
            raise InvalidInstanceError(f"item {item!r} has no color")
        for neighbor in neighbors:
            if colors[item] == colors.get(neighbor):
                raise InvalidInstanceError(
                    f"input coloring is improper: {item!r} and {neighbor!r} "
                    f"share color {colors[item]}"
                )


def one_color_per_round_reduction(
    adjacency: Mapping[Hashable, list[Hashable]],
    colors: Mapping[Hashable, int],
) -> ReductionResult:
    """Reduce a proper ``m``-coloring to ``d + 1`` colors, one per round.

    Each round, every item of the currently largest class picks the
    smallest color ``<= d`` unused in its neighborhood (class members
    are non-adjacent, so simultaneous moves are safe).
    """
    if not adjacency:
        return ReductionResult(colors={}, palette_size=0, rounds=0)
    _validate_proper(adjacency, colors)
    degree = max(len(n) for n in adjacency.values())
    target = degree + 1
    working = {item: colors[item] for item in adjacency}
    rounds = 0
    palette = max(working.values()) + 1
    for class_value in range(palette - 1, target - 1, -1):
        rounds += 1
        members = [item for item, c in working.items() if c == class_value]
        for item in members:
            used = {working[n] for n in adjacency[item]}
            for candidate in range(target):
                if candidate not in used:
                    working[item] = candidate
                    break
            else:  # pragma: no cover — degree bound guarantees a hole
                raise AlgorithmInvariantError(
                    f"no free color <= {degree} for item {item!r}"
                )
    return ReductionResult(
        colors=working, palette_size=min(palette, target), rounds=rounds
    )


def kuhn_wattenhofer_reduction(
    adjacency: Mapping[Hashable, list[Hashable]],
    colors: Mapping[Hashable, int],
) -> ReductionResult:
    """Reduce a proper ``m``-coloring to ``d + 1`` colors in ``O(d log m)``.

    One halving phase: bucket ``b`` owns source classes
    ``[2(d+1) b, 2(d+1)(b+1))`` and the target palette
    ``[(d+1) b, (d+1)(b+1))``.  Buckets work in parallel; inside a
    bucket the ``2(d+1)`` classes recolor sequentially into the
    bucket's target palette (at most ``d`` neighbors, ``d + 1`` targets
    — a hole always exists).  Cross-bucket conflicts are impossible
    because target palettes are disjoint, and new-vs-old collisions are
    avoided by namespacing new colors until the phase ends.

    Each phase costs ``2(d + 1)`` rounds and halves the class count, so
    the total is ``O(d log(m / d))`` rounds — with Linial's ``O(log* n)``
    start this is the [SV93, KW06] edge coloring baseline.
    """
    if not adjacency:
        return ReductionResult(colors={}, palette_size=0, rounds=0)
    _validate_proper(adjacency, colors)
    degree = max(len(n) for n in adjacency.values())
    target = degree + 1
    working = {item: colors[item] for item in adjacency}
    rounds = 0

    while max(working.values()) + 1 > target:
        palette = max(working.values()) + 1
        bucket_span = 2 * target
        bucket_count = math.ceil(palette / bucket_span)
        # New colors live in a separate namespace during the phase.
        fresh: dict[Hashable, int] = {}
        for step in range(bucket_span):
            # One round: in every bucket simultaneously, the items whose
            # class is the bucket's step-th source class recolor.
            rounds += 1
            movers = [
                item
                for item, c in working.items()
                if item not in fresh and c % bucket_span == step
            ]
            for item in movers:
                bucket = working[item] // bucket_span
                base = bucket * target
                used = {
                    fresh[n]
                    for n in adjacency[item]
                    if n in fresh and base <= fresh[n] < base + target
                }
                for candidate in range(base, base + target):
                    if candidate not in used:
                        fresh[item] = candidate
                        break
                else:  # pragma: no cover — d+1 targets vs <= d neighbors
                    raise AlgorithmInvariantError(
                        f"bucket {bucket} ran out of target colors for {item!r}"
                    )
        unmoved = [item for item in working if item not in fresh]
        if unmoved:  # pragma: no cover — every class index is swept
            raise AlgorithmInvariantError(
                f"{len(unmoved)} items were never recolored in a KW phase"
            )
        working = fresh
        new_palette = max(working.values()) + 1
        if new_palette >= palette:
            raise AlgorithmInvariantError(
                "KW phase failed to shrink the palette "
                f"({palette} -> {new_palette})"
            )

    return ReductionResult(
        colors=working, palette_size=max(working.values()) + 1, rounds=rounds
    )
