"""Deterministic shard planning: spec lists into fingerprinted manifests.

:func:`plan_shards` partitions a :class:`~repro.api.RunSpec` batch into
``shards`` disjoint work units **by spec fingerprint**: every distinct
fingerprint is assigned to the shard ``int(fingerprint, 16) % shards``.
The rule is a pure function of content, so any process that holds the
same spec list computes the same plan — no coordination, no RNG, no
clock.  Duplicate specs (same fingerprint) collapse into one unit of
work exactly as :func:`repro.api.run_many` collapses them; the merge
step fans the shared result back out over every occurrence.

On disk a plan is a **job directory**:

``manifest.json``
    The whole job, sealed: format version, shard count, every spec in
    batch order with its fingerprint, the per-shard fingerprint
    assignment, and the plan fingerprint over all of it.  The plan
    fingerprint is the job's identity — a coordinator re-attaching to
    a directory refuses to proceed if its spec list plans to a
    different fingerprint (that would silently merge results of a
    *different* experiment).
``shards/shard-NNNN.json``
    One sealed task file per shard: the shard's spec dicts (one per
    distinct fingerprint, in sorted fingerprint order) plus the plan
    fingerprint they belong to.  Workers read only their task file.

Sealing uses the same :func:`repro.results.fingerprint_of` discipline
as the result cache: a file that does not reproduce its embedded seal
is rejected (:class:`~repro.errors.ClusterError`), never half-trusted.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.api.diskcache import atomic_write_json, read_json
from repro.api.spec import RunSpec
from repro.errors import ClusterError
from repro.results import fingerprint_of

#: Job-directory layout version (bumped on incompatible change).
PLAN_FORMAT = 1

_MANIFEST = "manifest.json"
_SHARD_DIR = "shards"


def shard_name(shard: int) -> str:
    """Canonical shard token, used by task / claim / result filenames."""
    return f"shard-{shard:04d}"


def manifest_path(job_dir: str | Path) -> Path:
    return Path(job_dir) / _MANIFEST


def task_path(job_dir: str | Path, shard: int) -> Path:
    return Path(job_dir) / _SHARD_DIR / f"{shard_name(shard)}.json"


@dataclass(frozen=True)
class ShardPlan:
    """A planned job: the spec batch and its deterministic partition.

    Attributes
    ----------
    shards:
        Number of work units the batch was split into.
    specs:
        The full batch, in caller order (duplicates preserved — merge
        order depends on it).
    fingerprints:
        ``specs[i].fingerprint()``, precomputed, parallel to ``specs``.
    assignment:
        Per shard, the sorted tuple of distinct fingerprints it owns.
        Every distinct fingerprint appears in exactly one shard; a
        shard may legitimately be empty (more shards than distinct
        specs).
    """

    shards: int
    specs: tuple[RunSpec, ...]
    fingerprints: tuple[str, ...]
    assignment: tuple[tuple[str, ...], ...]

    def spec_of(self, fingerprint: str) -> RunSpec:
        """The first spec in batch order carrying ``fingerprint``."""
        return self.specs[self.fingerprints.index(fingerprint)]

    def shard_of(self, fingerprint: str) -> int:
        """The shard a fingerprint was assigned to."""
        return int(fingerprint, 16) % self.shards

    def plan_fingerprint(self) -> str:
        """SHA-256 identity of this plan (specs, order, shard count)."""
        return fingerprint_of(
            {
                "format": PLAN_FORMAT,
                "shards": self.shards,
                "fingerprints": list(self.fingerprints),
            }
        )

    def to_manifest(self) -> dict:
        """The sealed ``manifest.json`` payload."""
        return {
            "format": PLAN_FORMAT,
            "shards": self.shards,
            "specs": [spec.to_dict() for spec in self.specs],
            "fingerprints": list(self.fingerprints),
            "assignment": [list(group) for group in self.assignment],
            "plan_fingerprint": self.plan_fingerprint(),
        }


def resolve_shards(
    shards: int | str, distinct_specs: int, *, cpu_count: int | None = None
) -> int:
    """Resolve a shard-count request — ``"auto"`` or an int — to an int.

    ``"auto"`` sizes the partition to the machine and the batch:
    ``min(distinct fingerprints, CPU count)``, never below 1.  More
    shards than distinct specs would only mint empty work units; more
    shards than cores buys no local parallelism.  The resolved integer
    is what lands in the plan manifest, so a job planned with ``"auto"``
    has a concrete, reproducible shard count on disk — re-attaching
    from a machine with a different core count adopts the recorded
    plan rather than re-resolving.
    """
    if shards == "auto":
        cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 2)
        return max(1, min(distinct_specs, cpus))
    if isinstance(shards, str):
        raise ClusterError(f"shards must be an integer or 'auto', got {shards!r}")
    return int(shards)


def plan_shards(specs: Sequence[RunSpec], *, shards: int | str = 2) -> ShardPlan:
    """Partition a spec batch into ``shards`` deterministic work units.

    Pure given a shard count: no filesystem, no randomness.  Distinct
    fingerprints land on ``int(fingerprint, 16) % shards``, so the
    partition is stable across processes, machines, and sessions, and
    is balanced in expectation (fingerprints are SHA-256 digests —
    uniform).  ``shards="auto"`` consults :func:`os.cpu_count` (see
    :func:`resolve_shards`); the resolved integer is recorded in the
    plan, so the manifest stays machine-independent.
    """
    ordered = tuple(specs)
    if not ordered:
        raise ClusterError("cannot plan an empty spec batch")
    fingerprints = tuple(spec.fingerprint() for spec in ordered)
    shards = resolve_shards(shards, len(set(fingerprints)))
    if shards < 1:
        raise ClusterError(f"shards must be >= 1, got {shards}")
    groups: list[list[str]] = [[] for _ in range(shards)]
    for fingerprint in sorted(set(fingerprints)):
        groups[int(fingerprint, 16) % shards].append(fingerprint)
    return ShardPlan(
        shards=shards,
        specs=ordered,
        fingerprints=fingerprints,
        assignment=tuple(tuple(group) for group in groups),
    )


def write_plan(plan: ShardPlan, job_dir: str | Path) -> str:
    """Materialise a plan as a job directory; returns the plan fingerprint.

    Idempotent: rewriting the same plan over an existing job directory
    publishes byte-identical files (atomic, last-writer-wins) and
    touches neither claims nor results — resuming a half-finished job
    is exactly "write the plan again, start workers".
    """
    plan_fingerprint = plan.plan_fingerprint()
    spec_of = {
        fingerprint: spec.to_dict()
        for fingerprint, spec in zip(plan.fingerprints, plan.specs)
    }
    for shard, group in enumerate(plan.assignment):
        body = {
            "format": PLAN_FORMAT,
            "shard": shard,
            "shards": plan.shards,
            "plan_fingerprint": plan_fingerprint,
            "fingerprints": list(group),
            "specs": [spec_of[fingerprint] for fingerprint in group],
        }
        atomic_write_json(
            task_path(job_dir, shard), {**body, "seal": fingerprint_of(body)}
        )
    # The manifest lands last: a directory with a readable manifest is
    # guaranteed to have all its task files.
    atomic_write_json(manifest_path(job_dir), plan.to_manifest())
    return plan_fingerprint


def load_plan(job_dir: str | Path) -> ShardPlan:
    """Rebuild the plan from ``manifest.json`` (integrity-checked)."""
    payload = read_json(manifest_path(job_dir))
    if not isinstance(payload, dict) or payload.get("format") != PLAN_FORMAT:
        raise ClusterError(
            f"{manifest_path(job_dir)} is missing or not a format-"
            f"{PLAN_FORMAT} job manifest; run the planner first "
            "(repro shard plan / run_sharded)"
        )
    plan = ShardPlan(
        shards=int(payload["shards"]),
        specs=tuple(RunSpec.from_dict(spec) for spec in payload["specs"]),
        fingerprints=tuple(payload["fingerprints"]),
        assignment=tuple(tuple(group) for group in payload["assignment"]),
    )
    if plan.plan_fingerprint() != payload.get("plan_fingerprint"):
        raise ClusterError(
            f"{manifest_path(job_dir)} fails its integrity check — the "
            "manifest was edited or truncated; re-plan the job"
        )
    recomputed = tuple(spec.fingerprint() for spec in plan.specs)
    if recomputed != plan.fingerprints:
        raise ClusterError(
            f"{manifest_path(job_dir)} records fingerprints its own specs "
            "do not reproduce (a path-based instance file may have "
            "changed since planning); re-plan the job"
        )
    return plan


def load_task(job_dir: str | Path, shard: int) -> dict:
    """Load one shard's sealed task file as ``fingerprint -> RunSpec``."""
    path = task_path(job_dir, shard)
    payload = read_json(path)
    if not isinstance(payload, dict):
        raise ClusterError(f"{path} is missing or unreadable; re-plan the job")
    body = {key: value for key, value in payload.items() if key != "seal"}
    if payload.get("seal") != fingerprint_of(body) or body.get("shard") != shard:
        raise ClusterError(
            f"{path} fails its integrity check; re-plan the job"
        )
    return {
        fingerprint: RunSpec.from_dict(spec)
        for fingerprint, spec in zip(body["fingerprints"], body["specs"])
    }


def ensure_plan(
    specs: Sequence[RunSpec], job_dir: str | Path, *, shards: int | str = 2
) -> ShardPlan:
    """Plan into ``job_dir``, or verify and adopt the plan already there.

    The coordinator's entry point: a fresh directory gets the plan
    written; a directory that already holds a manifest is accepted only
    if *this* spec batch (and shard count) plans to the same plan
    fingerprint — otherwise merging would silently mix experiments, so
    a :class:`~repro.errors.ClusterError` names both fingerprints.

    A manifest that fails to load (torn mid-write by a crashed planner,
    truncated, or unreadable) is treated as **absent** and rewritten:
    write_plan is idempotent and task files carry their own seals, so
    re-planning over the wreckage is always safe.  Only a *valid*
    manifest belonging to a different experiment refuses.
    """
    plan = plan_shards(specs, shards=shards)
    if manifest_path(job_dir).exists():
        try:
            existing = load_plan(job_dir)
        except ClusterError:
            # Corrupt manifest == no manifest: re-plan in place.
            write_plan(plan, job_dir)
            return plan
        if existing.plan_fingerprint() != plan.plan_fingerprint():
            raise ClusterError(
                f"job directory {Path(job_dir)} already holds plan "
                f"{existing.plan_fingerprint()[:12]} but these specs plan "
                f"to {plan.plan_fingerprint()[:12]}; use a fresh job "
                "directory (or the original spec batch) — refusing to mix "
                "experiments"
            )
        return existing
    write_plan(plan, job_dir)
    return plan
