"""The coordinator: plan, drive workers, merge — byte-identical to serial.

:func:`run_sharded` is the cluster twin of :func:`repro.api.run_many`:
same input (a spec batch), same output (the spec-ordered result list),
same bytes.  In between it (1) plans the batch into a job directory
(or verifies and adopts the plan already there — that is what makes a
re-run *resume* instead of restart), (2) optionally spawns local
worker subprocesses (``python -m repro worker``), (3) drains whatever
remains in-process — reclaiming the stale leases of crashed workers —
and (4) merges the sealed shard results.

**The byte-identical contract.**  Merging reads each distinct spec's
result from its shard file and lays results out in batch order, first
occurrence getting the loaded object and duplicates getting deep
copies — the exact object discipline of ``run_many``.  Results
round-trip through JSON on the way (shard files are sealed JSON), and
:meth:`repro.results.RunResult.to_dict` round-trips exactly, so
``canonical_json(r.to_dict())`` of every merged result equals its
serial counterpart byte for byte; ``tests/test_cluster_coordinator.py``
pins this over mixed adversarial batches.

**Resume guarantees.**  Every layer is idempotent-by-content: the plan
is a pure function of the specs, per-spec results spill into the
shared cache as they finish, shard results publish atomically, and
leases go stale rather than wedging the job.  Killing any worker (or
the coordinator itself) at any point loses at most the specs currently
in flight; re-running ``run_sharded`` with the same batch and
directory completes the job from the surviving state.

**Failure modes.**  The coordinator never blocks forever on its own
workers: :func:`wait_for_workers` watches each subprocess's *lease
heartbeats* (a healthy worker heartbeats after every spec) and a
worker that shows no sign of life past its grace window is escalated
— ``terminate()``, a short grace, then ``kill()`` — with the event
recorded in the job's ``events.json`` and surfaced by ``shard
status``.  Specs run under a failure policy (default capture):
poison specs end up quarantined in ``failed/`` as
:class:`~repro.results.FailedResult` records that merge into their
batch slots, so ``run_sharded`` terminates with an account of every
spec — what succeeded, what failed, why, and what was retried.
"""

from __future__ import annotations

import copy
import math
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.api.diskcache import atomic_write_json, read_json
from repro.api.failures import FailurePolicy, resolve_policy
from repro.api.spec import RunSpec
from repro.cluster.planner import PLAN_FORMAT, ensure_plan, load_plan
from repro.cluster.queue import (
    DEFAULT_LEASE_TTL,
    ShardQueue,
    claim_path,
    result_path,
)
from repro.cluster.worker import (
    dead_letter_path,
    ledger_dir_of,
    load_dead_letters,
    load_shard_timing,
    timing_path,
    work_loop,
)
from repro.errors import ClusterError
from repro.results import RunResult, fingerprint_of
from repro.telemetry.events import emit_event, events_dir_of

#: Job-directory file recording coordinator-observed worker events
#: (hung-worker escalations, non-zero exits) — surfaced by ``shard
#: status``.
EVENTS_FILE = "events.json"

#: Seconds a terminated worker gets to exit before it is killed.
TERMINATE_GRACE_S = 5.0


def load_shard_results(
    job_dir: str | Path, shard: int, *, plan_fingerprint: str
) -> dict[str, RunResult] | None:
    """Load one shard's sealed results, or ``None`` if absent/invalid.

    An invalid file (torn seal, foreign plan) is treated exactly like a
    missing one — the shard counts as not done and re-runs — so a
    corrupted result can never reach a merge.
    """
    payload = read_json(result_path(job_dir, shard))
    if not isinstance(payload, dict):
        return None
    body = {key: value for key, value in payload.items() if key != "seal"}
    if (
        payload.get("seal") != fingerprint_of(body)
        or body.get("format") != PLAN_FORMAT
        or body.get("shard") != shard
        or body.get("plan_fingerprint") != plan_fingerprint
    ):
        return None
    try:
        return {
            fingerprint: RunResult.from_dict(result)
            for fingerprint, result in body["results"].items()
        }
    except Exception:
        return None


def merge_results(
    specs: Sequence[RunSpec] | None, job_dir: str | Path
) -> list[RunResult]:
    """Merge a completed job into the ordered ``run_many`` result list.

    ``specs=None`` merges in the planned batch's own order (the CLI
    path); passing the batch explicitly additionally asserts it matches
    the plan.  Raises :class:`~repro.errors.ClusterError` naming the
    missing shards if the job is incomplete.
    """
    plan = load_plan(job_dir)
    if specs is not None:
        from repro.cluster.planner import plan_shards

        offered = plan_shards(specs, shards=plan.shards)
        if offered.plan_fingerprint() != plan.plan_fingerprint():
            raise ClusterError(
                f"job directory {Path(job_dir)} holds plan "
                f"{plan.plan_fingerprint()[:12]} but the offered specs "
                f"plan to {offered.plan_fingerprint()[:12]}; refusing to "
                "merge a different experiment's batch"
            )
    return _merge_with_plan(plan, job_dir)


def _merge_with_plan(plan, job_dir: str | Path) -> list[RunResult]:
    """Merge against an already-verified plan (no manifest re-reads).

    Spec fingerprints hash edge-list file *content* for path-based
    instances, so recomputing the plan is real I/O — callers that just
    planned (``run_sharded``) hand their plan straight in.
    """
    plan_fingerprint = plan.plan_fingerprint()
    by_fingerprint: dict[str, RunResult] = {}
    missing: list[int] = []
    for shard in range(plan.shards):
        loaded = load_shard_results(
            job_dir, shard, plan_fingerprint=plan_fingerprint
        )
        if loaded is None:
            missing.append(shard)
            continue
        absent = [f for f in plan.assignment[shard] if f not in loaded]
        if absent:
            raise ClusterError(
                f"shard {shard} result file lacks fingerprints "
                f"{[f[:12] for f in absent]}; the shard was published "
                "against a different task — re-plan the job"
            )
        by_fingerprint.update(loaded)
    if missing:
        raise ClusterError(
            f"job {Path(job_dir)} is incomplete: shards {missing} have no "
            "valid sealed result yet (run workers or run_sharded to "
            "finish it)"
        )
    # run_many's object discipline: first occurrence of a fingerprint
    # yields the loaded object, later occurrences independent copies.
    seen: set[str] = set()
    results: list[RunResult] = []
    for fingerprint in plan.fingerprints:
        result = by_fingerprint[fingerprint]
        if fingerprint in seen:
            result = copy.deepcopy(result)
        seen.add(fingerprint)
        results.append(result)
    return results


def record_worker_events(
    job_dir: str | Path, events: Sequence[Mapping[str, Any]]
) -> None:
    """Append coordinator-observed worker events to ``events.json``.

    Each event is also mirrored into the job's live event stream
    (``events/`` — see :mod:`repro.telemetry.events`), so ``repro top``
    and the service's ``/events`` endpoint see escalations without
    polling ``events.json``.  The mirror is best-effort like every
    stream write; ``events.json`` remains the durable record
    ``shard status`` reads.
    """
    if not events:
        return
    path = Path(job_dir) / EVENTS_FILE
    existing = read_json(path)
    log = existing if isinstance(existing, list) else []
    log.extend(dict(event) for event in events)
    atomic_write_json(path, log)
    stream_dir = events_dir_of(job_dir)
    for event in events:
        payload = {
            key: value for key, value in event.items() if key != "event"
        }
        emit_event(
            str(event.get("event", "worker_event")), stream_dir, **payload
        )


def load_worker_events(job_dir: str | Path) -> list[dict[str, Any]]:
    """The job's recorded worker events (empty if none / unreadable)."""
    payload = read_json(Path(job_dir) / EVENTS_FILE)
    if not isinstance(payload, list):
        return []
    return [event for event in payload if isinstance(event, dict)]


def _ledger_shard_stats(job_dir: str | Path, plan) -> dict[str, dict[str, int]]:
    """Per-shard attempt/retry accounting from the job's run ledger.

    Groups the ``kind: "run"`` records under ``<job>/ledger/`` by
    spec fingerprint (keeping the **max** attempts seen per spec — a
    spec re-executed after a worker death would otherwise double
    count), then rolls them up by the plan's shard assignment.
    Observational like the timing sidecars: a missing or foreign
    ledger simply yields no entry for a shard, never an error.
    """
    from repro.telemetry.ledger import read_ledger_rows

    known = set(plan.fingerprints)
    per_spec: dict[str, dict[str, int]] = {}
    for row in read_ledger_rows(ledger_dir_of(job_dir)):
        if row.get("kind") != "run":
            continue
        fingerprint = row.get("fingerprint")
        if fingerprint not in known:
            continue
        attempts = row.get("attempts")
        attempts = (
            attempts
            if isinstance(attempts, int) and not isinstance(attempts, bool)
            else 0
        )
        info = per_spec.setdefault(
            fingerprint,
            {"attempts": 0, "executed": 0, "cache_hits": 0, "failed": 0},
        )
        disposition = row.get("disposition")
        if disposition in ("executed", "failed"):
            info["executed"] += 1
            info["attempts"] = max(info["attempts"], attempts)
            if disposition == "failed":
                info["failed"] += 1
        elif disposition in ("cache_memory", "cache_disk"):
            info["cache_hits"] += 1
    stats: dict[str, dict[str, int]] = {}
    for fingerprint, info in per_spec.items():
        shard = str(plan.shard_of(fingerprint))
        entry = stats.setdefault(
            shard,
            {
                "specs_recorded": 0,
                "attempts": 0,
                "retries": 0,
                "cache_hits": 0,
                "failed": 0,
            },
        )
        entry["specs_recorded"] += 1
        entry["attempts"] += info["attempts"]
        entry["retries"] += max(0, info["attempts"] - 1)
        entry["cache_hits"] += info["cache_hits"]
        entry["failed"] += min(1, info["failed"])
    return dict(sorted(stats.items(), key=lambda item: int(item[0])))


def job_status(
    job_dir: str | Path,
    *,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    clock: Callable[[], float] = time.time,
) -> dict[str, Any]:
    """JSON-safe snapshot of a job's progress (CLI ``shard status``).

    Alongside the shard queue state, reports the job's failure
    account: ``failed`` (quarantined spec fingerprints with error type
    and attempt count, from the ``failed/`` dead-letter store) and
    ``worker_events`` (hung-worker escalations and non-zero worker
    exits recorded by the coordinator).

    ``timing`` maps each shard (as a string key — the snapshot is
    JSON-safe) to its wall-clock account: completed shards report the
    sidecar written by :func:`repro.cluster.worker.run_shard`
    (``wall_clock_s``, ``specs_total``, ``specs_executed``, derived
    ``specs_per_s``, publishing ``worker``), running shards report
    ``elapsed_s`` since their lease was claimed.  Timing is
    observational: a missing or foreign sidecar simply has no entry.

    ``ledger`` maps each shard (string key) to the attempt/retry
    account derived from the job's run ledger
    (:func:`_ledger_shard_stats`): recorded specs, total attempts,
    retries beyond the first attempt, cache replays, and failed specs
    — the columns ``shard status`` shows next to wall-clock and
    specs/sec.
    """
    plan = load_plan(job_dir)
    queue = ShardQueue(job_dir, lease_ttl=lease_ttl, clock=clock)
    status = queue.status(plan.shards)
    status["plan_fingerprint"] = plan.plan_fingerprint()
    status["specs"] = len(plan.specs)
    status["distinct_specs"] = len(set(plan.fingerprints))
    status["specs_done"] = sum(
        len(plan.assignment[shard]) for shard in status["done"]
    )
    now = clock()
    timing: dict[str, dict[str, Any]] = {}
    for shard in status["done"]:
        sidecar = load_shard_timing(
            job_dir, shard, plan_fingerprint=status["plan_fingerprint"]
        )
        if sidecar is None:
            continue
        wall = float(sidecar["wall_clock_s"])
        executed = sidecar.get("specs_executed")
        entry: dict[str, Any] = {
            "state": "done",
            "wall_clock_s": wall,
            "specs_total": sidecar.get("specs_total"),
            "specs_executed": executed,
            "worker": sidecar.get("worker"),
            "specs_per_s": None,
        }
        # A sub-millisecond shard legitimately records wall == 0.0 (the
        # sidecar rounds to microseconds), so the rate is unknowable,
        # not infinite: leave specs_per_s as None rather than divide.
        if isinstance(executed, int) and executed > 0 and wall > 0:
            rate = executed / wall
            if math.isfinite(rate):
                entry["specs_per_s"] = round(rate, 3)
        timing[str(shard)] = entry
    for shard in status["running"]:
        lease = queue.lease_of(shard)
        claimed = (lease or {}).get("claimed_at")
        timing[str(shard)] = {
            "state": "running",
            "elapsed_s": (
                round(now - claimed, 3)
                if isinstance(claimed, (int, float))
                else None
            ),
            "specs_total": len(plan.assignment[shard]),
        }
    status["timing"] = timing
    status["ledger"] = _ledger_shard_stats(job_dir, plan)
    letters = load_dead_letters(
        job_dir, plan_fingerprint=plan.plan_fingerprint()
    )
    status["failed"] = {
        fingerprint: {
            "error_type": failed.error_type,
            "error_message": failed.error_message,
            "attempts": failed.attempts,
        }
        for fingerprint, failed in sorted(letters.items())
    }
    status["worker_events"] = load_worker_events(job_dir)
    return status


def spawn_local_worker(
    job_dir: str | Path,
    *,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    validate: bool = True,
    on_error: str | FailurePolicy = "capture",
    extra_env: Mapping[str, str] | None = None,
) -> subprocess.Popen:
    """Start one detached ``python -m repro worker`` on this machine.

    The child gets ``repro``'s own package root prepended to
    ``PYTHONPATH``, so spawning works from any checkout layout without
    the caller exporting anything.  The failure policy is forwarded as
    CLI flags; ``extra_env`` adds environment variables (the chaos
    harness ships its fault plan to workers this way).
    """
    import repro

    policy = resolve_policy(on_error)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else os.pathsep.join([src_dir, existing])
    )
    if extra_env:
        env.update(extra_env)
    command = [
        sys.executable,
        "-m",
        "repro",
        "worker",
        str(job_dir),
        "--lease-ttl",
        str(lease_ttl),
        "--on-error",
        policy.on_error,
        "--retries",
        str(policy.retries),
        "--backoff-s",
        str(policy.backoff_s),
    ]
    if policy.timeout_s is not None:
        command.extend(["--timeout-s", str(policy.timeout_s)])
    if not validate:
        command.append("--no-validate")
    return subprocess.Popen(
        command,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _escalate(proc: subprocess.Popen) -> str:
    """terminate → grace → kill; returns the action that ended the proc."""
    proc.terminate()
    try:
        proc.wait(timeout=TERMINATE_GRACE_S)
        return "terminated"
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        return "killed"


class WorkerWatch:
    """Bounded-patience supervision of worker subprocesses.

    A healthy worker shows signs of life: it heartbeats its shard
    lease after every spec (the lease's ``worker`` id ends with its
    pid), and eventually exits.  A worker that does neither for
    ``grace_s`` seconds (default ``max(2 * lease_ttl, 10)``) is
    **wedged** — hung in a spec with no deadline, or stuck before its
    first claim — and is escalated: ``terminate()``, then ``kill()``
    after :data:`TERMINATE_GRACE_S`.  Its shard (if any) is recovered
    by the ordinary stale-lease protocol.

    The watch accumulates events (hung-worker escalations, non-zero
    exits) in ``events``; callers persist them via
    :func:`record_worker_events`.  :meth:`poll` is one supervision
    tick, cheap enough to interleave with other work — this is how
    :func:`run_sharded_iter` supervises its workers *while* draining
    and streaming results instead of blocking on them first.
    :meth:`drain` loops poll-and-sleep until every worker is reaped
    (the classic :func:`wait_for_workers` behaviour); :meth:`shutdown`
    escalates whatever still runs, for callers abandoning the job
    early (a closed result stream must not leak subprocesses).

    This is the liveness guarantee ``run_sharded`` builds on: the
    coordinator can always outwait its own workers, so a submitted
    batch always terminates with an account of every spec.
    """

    def __init__(
        self,
        procs: Sequence[subprocess.Popen],
        job_dir: str | Path,
        *,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        grace_s: float | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.lease_ttl = lease_ttl
        self.grace_s = grace_s if grace_s is not None else max(2 * lease_ttl, 10.0)
        self.events: list[dict[str, Any]] = []
        self._clock = clock
        self._waiting = {index: proc for index, proc in enumerate(procs)}
        self._last_alive = {index: clock() for index in self._waiting}
        self._claims_dir = claim_path(job_dir, 0).parent

    @property
    def waiting(self) -> int:
        """Workers not yet reaped."""
        return len(self._waiting)

    def _live_pids(self, now: float) -> set[int]:
        """Pids with a fresh lease heartbeat (worker ids end in pid)."""
        live: set[int] = set()
        if self._claims_dir.is_dir():
            for path in self._claims_dir.glob("*.json"):
                lease = read_json(path)
                if not isinstance(lease, dict):
                    continue
                heartbeat = lease.get("heartbeat_at")
                worker = lease.get("worker", "")
                if (
                    isinstance(heartbeat, (int, float))
                    and now - heartbeat <= self.lease_ttl
                    and isinstance(worker, str)
                ):
                    _, _, pid_text = worker.rpartition(":")
                    if pid_text.isdigit():
                        live.add(int(pid_text))
        return live

    def poll(self) -> None:
        """One supervision tick: reap exits, escalate the lifeless."""
        for index, proc in list(self._waiting.items()):
            if proc.poll() is None:
                continue
            if proc.returncode != 0:
                self.events.append(
                    {
                        "event": "worker_exit_nonzero",
                        "pid": proc.pid,
                        "returncode": proc.returncode,
                    }
                )
            del self._waiting[index]
        if not self._waiting:
            return
        now = self._clock()
        live_pids = self._live_pids(now)
        for index, proc in list(self._waiting.items()):
            if proc.pid in live_pids:
                self._last_alive[index] = now
            elif now - self._last_alive[index] > self.grace_s:
                action = _escalate(proc)
                self.events.append(
                    {
                        "event": "worker_hung",
                        "pid": proc.pid,
                        "action": action,
                        "waited_s": round(now - self._last_alive[index], 3),
                    }
                )
                del self._waiting[index]

    def drain(self, poll_s: float = 0.1) -> list[dict[str, Any]]:
        """Poll until every worker is reaped; returns the event list."""
        while self._waiting:
            self.poll()
            if self._waiting:
                time.sleep(poll_s)
        return self.events

    def shutdown(self) -> list[dict[str, Any]]:
        """Escalate every still-running worker now; returns the events.

        For abandoning a job early (e.g. a consumer closed the result
        stream mid-job): clean exits are reaped as usual, everything
        else is terminated → killed and recorded as ``worker_stopped``.
        The job directory stays resumable — published shards survive,
        interrupted leases go stale and are reclaimed on the next run.
        """
        self.poll()
        for index, proc in list(self._waiting.items()):
            action = _escalate(proc)
            self.events.append(
                {
                    "event": "worker_stopped",
                    "pid": proc.pid,
                    "action": action,
                }
            )
            del self._waiting[index]
        return self.events


def wait_for_workers(
    procs: Sequence[subprocess.Popen],
    job_dir: str | Path,
    *,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    grace_s: float | None = None,
    poll_s: float = 0.1,
    clock: Callable[[], float] = time.time,
) -> list[dict[str, Any]]:
    """Block until every worker exits or is reaped; returns the events.

    The one-shot form of :class:`WorkerWatch` (see there for the
    liveness semantics): construct a watch over ``procs`` and drain it.
    """
    watch = WorkerWatch(
        procs, job_dir, lease_ttl=lease_ttl, grace_s=grace_s, clock=clock
    )
    return watch.drain(poll_s)


def run_sharded_iter(
    specs: Sequence[RunSpec],
    job_dir: str | Path,
    *,
    shards: int | str = 2,
    local_workers: int = 0,
    validate: bool = True,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    clock: Callable[[], float] = time.time,
    on_error: str | FailurePolicy = "capture",
    worker_grace_s: float | None = None,
    worker_env: Mapping[str, str] | None = None,
) -> Iterator[tuple[int, RunResult]]:
    """Execute a batch shard-wise, yielding ``(index, result)`` pairs
    **as shard result files seal** instead of buffering the whole job.

    The streaming twin of :func:`run_sharded` (which is now built on
    it), with the merge discipline preserved pair-wise: every batch
    index is yielded exactly once; the first batch occurrence of a
    fingerprint carries the loaded result object and every later
    occurrence an independent deep copy; collecting the pairs into a
    list by index reproduces ``run_sharded`` — and therefore serial
    :func:`repro.api.run_many` — byte for byte.  Pairs arrive grouped
    by shard in shard-seal order, *not* in batch order: consumers that
    need batch order (the service's ``/stream`` endpoint) reorder by
    index.

    Worker subprocesses are supervised *concurrently* with the result
    scan (one :meth:`WorkerWatch.poll` per tick), so sealed shards
    stream out the moment a worker publishes them rather than after
    the last worker exits.  The in-process drain keeps the old
    division of labor: it claims shards only once every spawned worker
    has been reaped — the coordinator never competes with its own live
    workers for work, it only finishes what they leave behind.
    Closing the generator early stops the spawned workers (terminate →
    kill, recorded in ``events.json``) but keeps the job directory
    resumable: published shards survive, interrupted leases go stale
    and are reclaimed by the next run.

    Parameters are those of :func:`run_sharded`.
    """
    plan = ensure_plan(specs, job_dir, shards=shards)
    plan_fingerprint = plan.plan_fingerprint()
    stream_dir = events_dir_of(job_dir)
    emit_event(
        "job_started",
        stream_dir,
        plan_fingerprint=plan_fingerprint,
        shards=plan.shards,
        specs=len(plan.specs),
        local_workers=max(0, local_workers),
    )
    procs = [
        spawn_local_worker(
            job_dir,
            lease_ttl=lease_ttl,
            validate=validate,
            on_error=on_error,
            extra_env=worker_env,
        )
        for _ in range(max(0, local_workers))
    ]
    for proc in procs:
        emit_event("worker_spawn", stream_dir, pid=proc.pid)
    watch = (
        WorkerWatch(
            procs,
            job_dir,
            lease_ttl=lease_ttl,
            grace_s=worker_grace_s,
            clock=clock,
        )
        if procs
        else None
    )
    indices_of: dict[str, list[int]] = {}
    for index, fingerprint in enumerate(plan.fingerprints):
        indices_of.setdefault(fingerprint, []).append(index)
    emitted: set[int] = set()
    verified: set[int] = set()
    complete = False
    try:
        while len(emitted) < plan.shards:
            progressed = False
            for shard in range(plan.shards):
                if shard in emitted or not result_path(job_dir, shard).exists():
                    continue
                loaded = load_shard_results(
                    job_dir, shard, plan_fingerprint=plan_fingerprint
                )
                if loaded is None:
                    continue
                absent = [f for f in plan.assignment[shard] if f not in loaded]
                if absent:
                    raise ClusterError(
                        f"shard {shard} result file lacks fingerprints "
                        f"{[f[:12] for f in absent]}; the shard was "
                        "published against a different task — re-plan the "
                        "job"
                    )
                emitted.add(shard)
                progressed = True
                for fingerprint in plan.assignment[shard]:
                    result = loaded[fingerprint]
                    first, *rest = indices_of[fingerprint]
                    yield first, result
                    for index in rest:
                        yield index, copy.deepcopy(result)
            if len(emitted) == plan.shards:
                break
            if watch is not None:
                watch.poll()
            if watch is not None and watch.waiting:
                # Workers still run: just watch for their next sealed
                # shard (claiming here would race our own workers for
                # their work).
                if not progressed:
                    time.sleep(0.1)
                continue
            # Every spawned worker is gone (or none were spawned):
            # drain what remains in-process, one shard per tick so
            # freshly sealed results stream out between executions.
            # Live foreign leases are waited out (they finish or go
            # stale and get reclaimed); the ``verified`` set keeps the
            # polling from re-parsing completed shards every tick.
            summary = work_loop(
                job_dir,
                lease_ttl=lease_ttl,
                clock=clock,
                validate=validate,
                max_shards=1,
                verified=verified,
                on_error=on_error,
            )
            if not progressed and not summary["completed"]:
                time.sleep(min(1.0, max(0.05, lease_ttl / 20)))
        complete = True
    finally:
        if watch is not None:
            events = watch.drain() if complete else watch.shutdown()
            record_worker_events(job_dir, events)
        if complete:
            emit_event(
                "job_complete",
                stream_dir,
                plan_fingerprint=plan_fingerprint,
                shards=plan.shards,
            )


def run_sharded(
    specs: Sequence[RunSpec],
    job_dir: str | Path,
    *,
    shards: int | str = 2,
    local_workers: int = 0,
    validate: bool = True,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    clock: Callable[[], float] = time.time,
    on_error: str | FailurePolicy = "capture",
    worker_grace_s: float | None = None,
    worker_env: Mapping[str, str] | None = None,
) -> list[RunResult]:
    """Execute a spec batch shard-wise; returns the ``run_many`` list.

    Built on :func:`run_sharded_iter` exactly as ``run_many`` is built
    on ``run_many_iter``: drain the stream fully, lay the pairs out by
    batch index.

    Parameters
    ----------
    specs:
        The batch.  Must match the plan already in ``job_dir`` if one
        exists (that is a *resume*); a fresh directory is planned.
    job_dir:
        Shared directory all workers (local subprocesses, other
        machines) coordinate through.
    shards:
        Work units to split the batch into (fresh plans only).
        ``"auto"`` sizes the count to CPU count and batch length (see
        :func:`repro.cluster.planner.resolve_shards`); the resolved
        integer is recorded in the plan manifest.
    local_workers:
        Worker subprocesses to spawn on this machine.  ``0`` (default)
        runs everything in-process.  Whatever the subprocess workers
        leave unfinished — all of it, if they are killed or reaped as
        hung — the coordinator drains in-process concurrently, so
        ``run_sharded`` returns only with the complete, merged result
        list.
    on_error:
        Failure policy for spec execution (default ``"capture"``:
        poison specs merge as :class:`~repro.results.FailedResult`
        slots instead of aborting the job).
    worker_grace_s:
        Seconds a worker subprocess may show no lease heartbeat before
        the coordinator escalates terminate → kill (``None`` =
        ``max(2 * lease_ttl, 10)``; see :class:`WorkerWatch`).
    worker_env:
        Extra environment variables for spawned workers (the chaos
        harness ships fault plans this way).
    validate / lease_ttl / clock:
        As for the worker loop.
    """
    results: dict[int, RunResult] = {}
    for index, result in run_sharded_iter(
        specs,
        job_dir,
        shards=shards,
        local_workers=local_workers,
        validate=validate,
        lease_ttl=lease_ttl,
        clock=clock,
        on_error=on_error,
        worker_grace_s=worker_grace_s,
        worker_env=worker_env,
    ):
        results[index] = result
    return [results[index] for index in range(len(results))]


def retry_failed(
    job_dir: str | Path,
    *,
    fingerprints: Sequence[str] | None = None,
) -> dict[str, Any]:
    """Re-queue a job's dead-lettered specs; returns a JSON-safe summary.

    Failure records are deliberately durable — a resumed job *reuses*
    dead letters instead of re-looping poison specs.  ``retry_failed``
    is the explicit override for when the world changed (a bug fixed,
    a timeout raised): it removes the quarantined specs' sealed
    dead-letter files and the published result files of exactly the
    shards that contained them, so the next drain — ``run_sharded``
    with the original batch, ``repro shard retry-failed --drain``, or
    any worker — re-executes *only* the quarantined fingerprints: the
    shard's surviving specs replay from the job cache.  Optionally pass
    a fresh :class:`~repro.api.failures.FailurePolicy` to that drain
    (the CLI's ``--retries`` / ``--timeout-s`` / ``--backoff-s``).

    ``fingerprints`` restricts the retry to a subset of the quarantined
    fingerprints (unknown ones are ignored); the default retries all.
    """
    plan = load_plan(job_dir)
    plan_fingerprint = plan.plan_fingerprint()
    letters = load_dead_letters(job_dir, plan_fingerprint=plan_fingerprint)
    if fingerprints is None:
        selected = set(letters)
    else:
        selected = set(letters) & set(fingerprints)
    shards_reset = sorted({plan.shard_of(f) for f in selected})
    for fingerprint in sorted(selected):
        try:
            dead_letter_path(job_dir, fingerprint).unlink()
        except OSError:
            pass
    for shard in shards_reset:
        for path in (result_path(job_dir, shard), timing_path(job_dir, shard)):
            try:
                path.unlink()
            except OSError:
                pass
    return {
        "plan_fingerprint": plan_fingerprint,
        "requeued": sorted(selected),
        "shards_reset": shards_reset,
        "remaining_failures": sorted(set(letters) - selected),
    }


def smoke_check() -> dict[str, Any]:
    """CI smoke: plan, drain with 2 worker subprocesses, merge, compare.

    The whole cluster contract on a tiny mixed batch (plain specs plus
    ``crash_stop`` and ``lossy_links`` scenarios): the merged result
    list must be **byte-identical** to serial
    :func:`repro.api.run_many` — same canonical JSON for every result,
    in order.  Runs in a temporary directory, writes nothing else, and
    raises :class:`~repro.errors.ClusterError` on any mismatch.
    Exposed as ``python -m repro shard --smoke`` (a CI step).
    """
    import tempfile

    from repro.api.runner import run_many
    from repro.api.spec import InstanceSpec
    from repro.results import canonical_json
    from repro.scenarios.spec import ScenarioSpec

    instance = InstanceSpec(family="complete_bipartite", size=3, seed=2)
    specs = [
        RunSpec(instance=instance, algorithm="greedy_sequential"),
        RunSpec(instance=instance, algorithm="bko20"),
        RunSpec(
            instance=instance,
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(model="crash_stop", seed=5, params={"f": 2}),
        ),
        RunSpec(
            instance=instance,
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(
                model="lossy_links", seed=5, params={"drop": 0.2}
            ),
        ),
        # A duplicate: merge must fan one shard result over both.
        RunSpec(instance=instance, algorithm="greedy_sequential"),
    ]
    serial = run_many(specs, cache=False)
    with tempfile.TemporaryDirectory(prefix="repro-shard-smoke-") as job_dir:
        # Drive the worker subprocesses explicitly (not through
        # run_sharded, whose self-healing in-process drain would mask a
        # broken ``python -m repro worker`` entry point): both must
        # exit cleanly and between them finish the *whole* job.
        ensure_plan(specs, job_dir, shards=2)
        procs = [spawn_local_worker(job_dir) for _ in range(2)]
        events = wait_for_workers(procs, job_dir)
        if events:
            raise ClusterError(
                f"smoke worker subprocesses misbehaved: {events}"
            )
        failed = [proc.returncode for proc in procs if proc.returncode != 0]
        if failed:
            raise ClusterError(
                f"smoke worker subprocesses exited with {failed}; "
                "'python -m repro worker' is broken"
            )
        status = job_status(job_dir)
        if not status["complete"]:
            raise ClusterError(
                "smoke worker subprocesses exited cleanly but left the "
                f"job incomplete: {status}"
            )
        merged = merge_results(specs, job_dir)
    if len(merged) != len(serial):
        raise ClusterError(
            f"smoke merge returned {len(merged)} results for "
            f"{len(serial)} specs"
        )
    for index, (ours, theirs) in enumerate(zip(merged, serial)):
        if canonical_json(ours.to_dict()) != canonical_json(theirs.to_dict()):
            raise ClusterError(
                f"smoke result {index} ({specs[index].label()}) is not "
                "byte-identical to serial run_many — the cluster merge "
                "contract is broken"
            )
    return {
        "specs": len(specs),
        "shards": status["shards"],
        "plan_fingerprint": status["plan_fingerprint"][:12],
        "byte_identical": True,
        "result_fingerprints": [
            result.result_fingerprint()[:12] for result in merged
        ],
    }
