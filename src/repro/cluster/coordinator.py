"""The coordinator: plan, drive workers, merge — byte-identical to serial.

:func:`run_sharded` is the cluster twin of :func:`repro.api.run_many`:
same input (a spec batch), same output (the spec-ordered result list),
same bytes.  In between it (1) plans the batch into a job directory
(or verifies and adopts the plan already there — that is what makes a
re-run *resume* instead of restart), (2) optionally spawns local
worker subprocesses (``python -m repro worker``), (3) drains whatever
remains in-process — reclaiming the stale leases of crashed workers —
and (4) merges the sealed shard results.

**The byte-identical contract.**  Merging reads each distinct spec's
result from its shard file and lays results out in batch order, first
occurrence getting the loaded object and duplicates getting deep
copies — the exact object discipline of ``run_many``.  Results
round-trip through JSON on the way (shard files are sealed JSON), and
:meth:`repro.results.RunResult.to_dict` round-trips exactly, so
``canonical_json(r.to_dict())`` of every merged result equals its
serial counterpart byte for byte; ``tests/test_cluster_coordinator.py``
pins this over mixed adversarial batches.

**Resume guarantees.**  Every layer is idempotent-by-content: the plan
is a pure function of the specs, per-spec results spill into the
shared cache as they finish, shard results publish atomically, and
leases go stale rather than wedging the job.  Killing any worker (or
the coordinator itself) at any point loses at most the specs currently
in flight; re-running ``run_sharded`` with the same batch and
directory completes the job from the surviving state.

**Failure modes.**  The coordinator never blocks forever on its own
workers: :func:`wait_for_workers` watches each subprocess's *lease
heartbeats* (a healthy worker heartbeats after every spec) and a
worker that shows no sign of life past its grace window is escalated
— ``terminate()``, a short grace, then ``kill()`` — with the event
recorded in the job's ``events.json`` and surfaced by ``shard
status``.  Specs run under a failure policy (default capture):
poison specs end up quarantined in ``failed/`` as
:class:`~repro.results.FailedResult` records that merge into their
batch slots, so ``run_sharded`` terminates with an account of every
spec — what succeeded, what failed, why, and what was retried.
"""

from __future__ import annotations

import copy
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.api.diskcache import atomic_write_json, read_json
from repro.api.failures import FailurePolicy, resolve_policy
from repro.api.spec import RunSpec
from repro.cluster.planner import PLAN_FORMAT, ensure_plan, load_plan
from repro.cluster.queue import (
    DEFAULT_LEASE_TTL,
    ShardQueue,
    claim_path,
    result_path,
)
from repro.cluster.worker import load_dead_letters, work_loop
from repro.errors import ClusterError
from repro.results import RunResult, fingerprint_of

#: Job-directory file recording coordinator-observed worker events
#: (hung-worker escalations, non-zero exits) — surfaced by ``shard
#: status``.
EVENTS_FILE = "events.json"

#: Seconds a terminated worker gets to exit before it is killed.
TERMINATE_GRACE_S = 5.0


def load_shard_results(
    job_dir: str | Path, shard: int, *, plan_fingerprint: str
) -> dict[str, RunResult] | None:
    """Load one shard's sealed results, or ``None`` if absent/invalid.

    An invalid file (torn seal, foreign plan) is treated exactly like a
    missing one — the shard counts as not done and re-runs — so a
    corrupted result can never reach a merge.
    """
    payload = read_json(result_path(job_dir, shard))
    if not isinstance(payload, dict):
        return None
    body = {key: value for key, value in payload.items() if key != "seal"}
    if (
        payload.get("seal") != fingerprint_of(body)
        or body.get("format") != PLAN_FORMAT
        or body.get("shard") != shard
        or body.get("plan_fingerprint") != plan_fingerprint
    ):
        return None
    try:
        return {
            fingerprint: RunResult.from_dict(result)
            for fingerprint, result in body["results"].items()
        }
    except Exception:
        return None


def merge_results(
    specs: Sequence[RunSpec] | None, job_dir: str | Path
) -> list[RunResult]:
    """Merge a completed job into the ordered ``run_many`` result list.

    ``specs=None`` merges in the planned batch's own order (the CLI
    path); passing the batch explicitly additionally asserts it matches
    the plan.  Raises :class:`~repro.errors.ClusterError` naming the
    missing shards if the job is incomplete.
    """
    plan = load_plan(job_dir)
    if specs is not None:
        from repro.cluster.planner import plan_shards

        offered = plan_shards(specs, shards=plan.shards)
        if offered.plan_fingerprint() != plan.plan_fingerprint():
            raise ClusterError(
                f"job directory {Path(job_dir)} holds plan "
                f"{plan.plan_fingerprint()[:12]} but the offered specs "
                f"plan to {offered.plan_fingerprint()[:12]}; refusing to "
                "merge a different experiment's batch"
            )
    return _merge_with_plan(plan, job_dir)


def _merge_with_plan(plan, job_dir: str | Path) -> list[RunResult]:
    """Merge against an already-verified plan (no manifest re-reads).

    Spec fingerprints hash edge-list file *content* for path-based
    instances, so recomputing the plan is real I/O — callers that just
    planned (``run_sharded``) hand their plan straight in.
    """
    plan_fingerprint = plan.plan_fingerprint()
    by_fingerprint: dict[str, RunResult] = {}
    missing: list[int] = []
    for shard in range(plan.shards):
        loaded = load_shard_results(
            job_dir, shard, plan_fingerprint=plan_fingerprint
        )
        if loaded is None:
            missing.append(shard)
            continue
        absent = [f for f in plan.assignment[shard] if f not in loaded]
        if absent:
            raise ClusterError(
                f"shard {shard} result file lacks fingerprints "
                f"{[f[:12] for f in absent]}; the shard was published "
                "against a different task — re-plan the job"
            )
        by_fingerprint.update(loaded)
    if missing:
        raise ClusterError(
            f"job {Path(job_dir)} is incomplete: shards {missing} have no "
            "valid sealed result yet (run workers or run_sharded to "
            "finish it)"
        )
    # run_many's object discipline: first occurrence of a fingerprint
    # yields the loaded object, later occurrences independent copies.
    seen: set[str] = set()
    results: list[RunResult] = []
    for fingerprint in plan.fingerprints:
        result = by_fingerprint[fingerprint]
        if fingerprint in seen:
            result = copy.deepcopy(result)
        seen.add(fingerprint)
        results.append(result)
    return results


def record_worker_events(
    job_dir: str | Path, events: Sequence[Mapping[str, Any]]
) -> None:
    """Append coordinator-observed worker events to ``events.json``."""
    if not events:
        return
    path = Path(job_dir) / EVENTS_FILE
    existing = read_json(path)
    log = existing if isinstance(existing, list) else []
    log.extend(dict(event) for event in events)
    atomic_write_json(path, log)


def load_worker_events(job_dir: str | Path) -> list[dict[str, Any]]:
    """The job's recorded worker events (empty if none / unreadable)."""
    payload = read_json(Path(job_dir) / EVENTS_FILE)
    if not isinstance(payload, list):
        return []
    return [event for event in payload if isinstance(event, dict)]


def job_status(
    job_dir: str | Path,
    *,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    clock: Callable[[], float] = time.time,
) -> dict[str, Any]:
    """JSON-safe snapshot of a job's progress (CLI ``shard status``).

    Alongside the shard queue state, reports the job's failure
    account: ``failed`` (quarantined spec fingerprints with error type
    and attempt count, from the ``failed/`` dead-letter store) and
    ``worker_events`` (hung-worker escalations and non-zero worker
    exits recorded by the coordinator).
    """
    plan = load_plan(job_dir)
    queue = ShardQueue(job_dir, lease_ttl=lease_ttl, clock=clock)
    status = queue.status(plan.shards)
    status["plan_fingerprint"] = plan.plan_fingerprint()
    status["specs"] = len(plan.specs)
    status["distinct_specs"] = len(set(plan.fingerprints))
    status["specs_done"] = sum(
        len(plan.assignment[shard]) for shard in status["done"]
    )
    letters = load_dead_letters(
        job_dir, plan_fingerprint=plan.plan_fingerprint()
    )
    status["failed"] = {
        fingerprint: {
            "error_type": failed.error_type,
            "error_message": failed.error_message,
            "attempts": failed.attempts,
        }
        for fingerprint, failed in sorted(letters.items())
    }
    status["worker_events"] = load_worker_events(job_dir)
    return status


def spawn_local_worker(
    job_dir: str | Path,
    *,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    validate: bool = True,
    on_error: str | FailurePolicy = "capture",
    extra_env: Mapping[str, str] | None = None,
) -> subprocess.Popen:
    """Start one detached ``python -m repro worker`` on this machine.

    The child gets ``repro``'s own package root prepended to
    ``PYTHONPATH``, so spawning works from any checkout layout without
    the caller exporting anything.  The failure policy is forwarded as
    CLI flags; ``extra_env`` adds environment variables (the chaos
    harness ships its fault plan to workers this way).
    """
    import repro

    policy = resolve_policy(on_error)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else os.pathsep.join([src_dir, existing])
    )
    if extra_env:
        env.update(extra_env)
    command = [
        sys.executable,
        "-m",
        "repro",
        "worker",
        str(job_dir),
        "--lease-ttl",
        str(lease_ttl),
        "--on-error",
        policy.on_error,
        "--retries",
        str(policy.retries),
        "--backoff-s",
        str(policy.backoff_s),
    ]
    if policy.timeout_s is not None:
        command.extend(["--timeout-s", str(policy.timeout_s)])
    if not validate:
        command.append("--no-validate")
    return subprocess.Popen(
        command,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _escalate(proc: subprocess.Popen) -> str:
    """terminate → grace → kill; returns the action that ended the proc."""
    proc.terminate()
    try:
        proc.wait(timeout=TERMINATE_GRACE_S)
        return "terminated"
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        return "killed"


def wait_for_workers(
    procs: Sequence[subprocess.Popen],
    job_dir: str | Path,
    *,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    grace_s: float | None = None,
    poll_s: float = 0.1,
    clock: Callable[[], float] = time.time,
) -> list[dict[str, Any]]:
    """Wait for worker subprocesses with bounded patience; reap the wedged.

    A healthy worker shows signs of life: it heartbeats its shard
    lease after every spec (the lease's ``worker`` id ends with its
    pid), and eventually exits.  A worker that does neither for
    ``grace_s`` seconds (default ``max(2 * lease_ttl, 10)``) is
    **wedged** — hung in a spec with no deadline, or stuck before its
    first claim — and is escalated: ``terminate()``, then ``kill()``
    after :data:`TERMINATE_GRACE_S`.  Its shard (if any) is recovered
    by the ordinary stale-lease protocol.  Returns the event list
    (hung-worker escalations and non-zero exits), which callers
    persist via :func:`record_worker_events`.

    This is the liveness guarantee ``run_sharded`` builds on: the
    coordinator can always outwait its own workers, so a submitted
    batch always terminates with an account of every spec.
    """
    if grace_s is None:
        grace_s = max(2 * lease_ttl, 10.0)
    events: list[dict[str, Any]] = []
    waiting = {index: proc for index, proc in enumerate(procs)}
    last_alive = {index: clock() for index in waiting}
    claims_dir = claim_path(job_dir, 0).parent
    while waiting:
        for index, proc in list(waiting.items()):
            if proc.poll() is None:
                continue
            if proc.returncode != 0:
                events.append(
                    {
                        "event": "worker_exit_nonzero",
                        "pid": proc.pid,
                        "returncode": proc.returncode,
                    }
                )
            del waiting[index]
        if not waiting:
            break
        now = clock()
        live_pids: set[int] = set()
        if claims_dir.is_dir():
            for path in claims_dir.glob("*.json"):
                lease = read_json(path)
                if not isinstance(lease, dict):
                    continue
                heartbeat = lease.get("heartbeat_at")
                worker = lease.get("worker", "")
                if (
                    isinstance(heartbeat, (int, float))
                    and now - heartbeat <= lease_ttl
                    and isinstance(worker, str)
                ):
                    _, _, pid_text = worker.rpartition(":")
                    if pid_text.isdigit():
                        live_pids.add(int(pid_text))
        for index, proc in list(waiting.items()):
            if proc.pid in live_pids:
                last_alive[index] = now
            elif now - last_alive[index] > grace_s:
                action = _escalate(proc)
                events.append(
                    {
                        "event": "worker_hung",
                        "pid": proc.pid,
                        "action": action,
                        "waited_s": round(now - last_alive[index], 3),
                    }
                )
                del waiting[index]
        if waiting:
            time.sleep(poll_s)
    return events


def run_sharded(
    specs: Sequence[RunSpec],
    job_dir: str | Path,
    *,
    shards: int = 2,
    local_workers: int = 0,
    validate: bool = True,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    clock: Callable[[], float] = time.time,
    on_error: str | FailurePolicy = "capture",
    worker_grace_s: float | None = None,
    worker_env: Mapping[str, str] | None = None,
) -> list[RunResult]:
    """Execute a spec batch shard-wise; returns the ``run_many`` list.

    Parameters
    ----------
    specs:
        The batch.  Must match the plan already in ``job_dir`` if one
        exists (that is a *resume*); a fresh directory is planned.
    job_dir:
        Shared directory all workers (local subprocesses, other
        machines) coordinate through.
    shards:
        Work units to split the batch into (fresh plans only).
    local_workers:
        Worker subprocesses to spawn on this machine.  ``0`` (default)
        runs everything in-process.  Whatever the subprocess workers
        leave unfinished — all of it, if they are killed or reaped as
        hung — the coordinator drains in-process afterwards, so
        ``run_sharded`` returns only with the complete, merged result
        list.
    on_error:
        Failure policy for spec execution (default ``"capture"``:
        poison specs merge as :class:`~repro.results.FailedResult`
        slots instead of aborting the job).
    worker_grace_s:
        Seconds a worker subprocess may show no lease heartbeat before
        the coordinator escalates terminate → kill (``None`` =
        ``max(2 * lease_ttl, 10)``; see :func:`wait_for_workers`).
    worker_env:
        Extra environment variables for spawned workers (the chaos
        harness ships fault plans this way).
    validate / lease_ttl / clock:
        As for the worker loop.
    """
    plan = ensure_plan(specs, job_dir, shards=shards)
    procs = [
        spawn_local_worker(
            job_dir,
            lease_ttl=lease_ttl,
            validate=validate,
            on_error=on_error,
            extra_env=worker_env,
        )
        for _ in range(max(0, local_workers))
    ]
    if procs:
        events = wait_for_workers(
            procs,
            job_dir,
            lease_ttl=lease_ttl,
            grace_s=worker_grace_s,
        )
        record_worker_events(job_dir, events)
    # Drain every remaining shard in-process.  Live foreign leases are
    # waited out (they either finish or go stale and get reclaimed);
    # the shared ``verified`` set keeps the polling from re-parsing
    # every completed shard's result file on each tick.
    verified: set[int] = set()
    while True:
        summary = work_loop(
            job_dir,
            lease_ttl=lease_ttl,
            clock=clock,
            validate=validate,
            verified=verified,
            on_error=on_error,
        )
        if summary["job_complete"]:
            break
        time.sleep(min(1.0, max(0.05, lease_ttl / 20)))
    return _merge_with_plan(plan, job_dir)


def smoke_check() -> dict[str, Any]:
    """CI smoke: plan, drain with 2 worker subprocesses, merge, compare.

    The whole cluster contract on a tiny mixed batch (plain specs plus
    ``crash_stop`` and ``lossy_links`` scenarios): the merged result
    list must be **byte-identical** to serial
    :func:`repro.api.run_many` — same canonical JSON for every result,
    in order.  Runs in a temporary directory, writes nothing else, and
    raises :class:`~repro.errors.ClusterError` on any mismatch.
    Exposed as ``python -m repro shard --smoke`` (a CI step).
    """
    import tempfile

    from repro.api.runner import run_many
    from repro.api.spec import InstanceSpec
    from repro.results import canonical_json
    from repro.scenarios.spec import ScenarioSpec

    instance = InstanceSpec(family="complete_bipartite", size=3, seed=2)
    specs = [
        RunSpec(instance=instance, algorithm="greedy_sequential"),
        RunSpec(instance=instance, algorithm="bko20"),
        RunSpec(
            instance=instance,
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(model="crash_stop", seed=5, params={"f": 2}),
        ),
        RunSpec(
            instance=instance,
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(
                model="lossy_links", seed=5, params={"drop": 0.2}
            ),
        ),
        # A duplicate: merge must fan one shard result over both.
        RunSpec(instance=instance, algorithm="greedy_sequential"),
    ]
    serial = run_many(specs, cache=False)
    with tempfile.TemporaryDirectory(prefix="repro-shard-smoke-") as job_dir:
        # Drive the worker subprocesses explicitly (not through
        # run_sharded, whose self-healing in-process drain would mask a
        # broken ``python -m repro worker`` entry point): both must
        # exit cleanly and between them finish the *whole* job.
        ensure_plan(specs, job_dir, shards=2)
        procs = [spawn_local_worker(job_dir) for _ in range(2)]
        events = wait_for_workers(procs, job_dir)
        if events:
            raise ClusterError(
                f"smoke worker subprocesses misbehaved: {events}"
            )
        failed = [proc.returncode for proc in procs if proc.returncode != 0]
        if failed:
            raise ClusterError(
                f"smoke worker subprocesses exited with {failed}; "
                "'python -m repro worker' is broken"
            )
        status = job_status(job_dir)
        if not status["complete"]:
            raise ClusterError(
                "smoke worker subprocesses exited cleanly but left the "
                f"job incomplete: {status}"
            )
        merged = merge_results(specs, job_dir)
    if len(merged) != len(serial):
        raise ClusterError(
            f"smoke merge returned {len(merged)} results for "
            f"{len(serial)} specs"
        )
    for index, (ours, theirs) in enumerate(zip(merged, serial)):
        if canonical_json(ours.to_dict()) != canonical_json(theirs.to_dict()):
            raise ClusterError(
                f"smoke result {index} ({specs[index].label()}) is not "
                "byte-identical to serial run_many — the cluster merge "
                "contract is broken"
            )
    return {
        "specs": len(specs),
        "shards": status["shards"],
        "plan_fingerprint": status["plan_fingerprint"][:12],
        "byte_identical": True,
        "result_fingerprints": [
            result.result_fingerprint()[:12] for result in merged
        ],
    }
