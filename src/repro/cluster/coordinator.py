"""The coordinator: plan, drive workers, merge — byte-identical to serial.

:func:`run_sharded` is the cluster twin of :func:`repro.api.run_many`:
same input (a spec batch), same output (the spec-ordered result list),
same bytes.  In between it (1) plans the batch into a job directory
(or verifies and adopts the plan already there — that is what makes a
re-run *resume* instead of restart), (2) optionally spawns local
worker subprocesses (``python -m repro worker``), (3) drains whatever
remains in-process — reclaiming the stale leases of crashed workers —
and (4) merges the sealed shard results.

**The byte-identical contract.**  Merging reads each distinct spec's
result from its shard file and lays results out in batch order, first
occurrence getting the loaded object and duplicates getting deep
copies — the exact object discipline of ``run_many``.  Results
round-trip through JSON on the way (shard files are sealed JSON), and
:meth:`repro.results.RunResult.to_dict` round-trips exactly, so
``canonical_json(r.to_dict())`` of every merged result equals its
serial counterpart byte for byte; ``tests/test_cluster_coordinator.py``
pins this over mixed adversarial batches.

**Resume guarantees.**  Every layer is idempotent-by-content: the plan
is a pure function of the specs, per-spec results spill into the
shared cache as they finish, shard results publish atomically, and
leases go stale rather than wedging the job.  Killing any worker (or
the coordinator itself) at any point loses at most the specs currently
in flight; re-running ``run_sharded`` with the same batch and
directory completes the job from the surviving state.
"""

from __future__ import annotations

import copy
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.api.diskcache import read_json
from repro.api.spec import RunSpec
from repro.cluster.planner import PLAN_FORMAT, ensure_plan, load_plan
from repro.cluster.queue import DEFAULT_LEASE_TTL, ShardQueue, result_path
from repro.cluster.worker import work_loop
from repro.errors import ClusterError
from repro.results import RunResult, fingerprint_of


def load_shard_results(
    job_dir: str | Path, shard: int, *, plan_fingerprint: str
) -> dict[str, RunResult] | None:
    """Load one shard's sealed results, or ``None`` if absent/invalid.

    An invalid file (torn seal, foreign plan) is treated exactly like a
    missing one — the shard counts as not done and re-runs — so a
    corrupted result can never reach a merge.
    """
    payload = read_json(result_path(job_dir, shard))
    if not isinstance(payload, dict):
        return None
    body = {key: value for key, value in payload.items() if key != "seal"}
    if (
        payload.get("seal") != fingerprint_of(body)
        or body.get("format") != PLAN_FORMAT
        or body.get("shard") != shard
        or body.get("plan_fingerprint") != plan_fingerprint
    ):
        return None
    try:
        return {
            fingerprint: RunResult.from_dict(result)
            for fingerprint, result in body["results"].items()
        }
    except Exception:
        return None


def merge_results(
    specs: Sequence[RunSpec] | None, job_dir: str | Path
) -> list[RunResult]:
    """Merge a completed job into the ordered ``run_many`` result list.

    ``specs=None`` merges in the planned batch's own order (the CLI
    path); passing the batch explicitly additionally asserts it matches
    the plan.  Raises :class:`~repro.errors.ClusterError` naming the
    missing shards if the job is incomplete.
    """
    plan = load_plan(job_dir)
    if specs is not None:
        from repro.cluster.planner import plan_shards

        offered = plan_shards(specs, shards=plan.shards)
        if offered.plan_fingerprint() != plan.plan_fingerprint():
            raise ClusterError(
                f"job directory {Path(job_dir)} holds plan "
                f"{plan.plan_fingerprint()[:12]} but the offered specs "
                f"plan to {offered.plan_fingerprint()[:12]}; refusing to "
                "merge a different experiment's batch"
            )
    return _merge_with_plan(plan, job_dir)


def _merge_with_plan(plan, job_dir: str | Path) -> list[RunResult]:
    """Merge against an already-verified plan (no manifest re-reads).

    Spec fingerprints hash edge-list file *content* for path-based
    instances, so recomputing the plan is real I/O — callers that just
    planned (``run_sharded``) hand their plan straight in.
    """
    plan_fingerprint = plan.plan_fingerprint()
    by_fingerprint: dict[str, RunResult] = {}
    missing: list[int] = []
    for shard in range(plan.shards):
        loaded = load_shard_results(
            job_dir, shard, plan_fingerprint=plan_fingerprint
        )
        if loaded is None:
            missing.append(shard)
            continue
        absent = [f for f in plan.assignment[shard] if f not in loaded]
        if absent:
            raise ClusterError(
                f"shard {shard} result file lacks fingerprints "
                f"{[f[:12] for f in absent]}; the shard was published "
                "against a different task — re-plan the job"
            )
        by_fingerprint.update(loaded)
    if missing:
        raise ClusterError(
            f"job {Path(job_dir)} is incomplete: shards {missing} have no "
            "valid sealed result yet (run workers or run_sharded to "
            "finish it)"
        )
    # run_many's object discipline: first occurrence of a fingerprint
    # yields the loaded object, later occurrences independent copies.
    seen: set[str] = set()
    results: list[RunResult] = []
    for fingerprint in plan.fingerprints:
        result = by_fingerprint[fingerprint]
        if fingerprint in seen:
            result = copy.deepcopy(result)
        seen.add(fingerprint)
        results.append(result)
    return results


def job_status(
    job_dir: str | Path,
    *,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    clock: Callable[[], float] = time.time,
) -> dict[str, Any]:
    """JSON-safe snapshot of a job's progress (CLI ``shard status``)."""
    plan = load_plan(job_dir)
    queue = ShardQueue(job_dir, lease_ttl=lease_ttl, clock=clock)
    status = queue.status(plan.shards)
    status["plan_fingerprint"] = plan.plan_fingerprint()
    status["specs"] = len(plan.specs)
    status["distinct_specs"] = len(set(plan.fingerprints))
    status["specs_done"] = sum(
        len(plan.assignment[shard]) for shard in status["done"]
    )
    return status


def spawn_local_worker(
    job_dir: str | Path,
    *,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    validate: bool = True,
) -> subprocess.Popen:
    """Start one detached ``python -m repro worker`` on this machine.

    The child gets ``repro``'s own package root prepended to
    ``PYTHONPATH``, so spawning works from any checkout layout without
    the caller exporting anything.
    """
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else os.pathsep.join([src_dir, existing])
    )
    command = [
        sys.executable,
        "-m",
        "repro",
        "worker",
        str(job_dir),
        "--lease-ttl",
        str(lease_ttl),
    ]
    if not validate:
        command.append("--no-validate")
    return subprocess.Popen(
        command,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def run_sharded(
    specs: Sequence[RunSpec],
    job_dir: str | Path,
    *,
    shards: int = 2,
    local_workers: int = 0,
    validate: bool = True,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    clock: Callable[[], float] = time.time,
) -> list[RunResult]:
    """Execute a spec batch shard-wise; returns the ``run_many`` list.

    Parameters
    ----------
    specs:
        The batch.  Must match the plan already in ``job_dir`` if one
        exists (that is a *resume*); a fresh directory is planned.
    job_dir:
        Shared directory all workers (local subprocesses, other
        machines) coordinate through.
    shards:
        Work units to split the batch into (fresh plans only).
    local_workers:
        Worker subprocesses to spawn on this machine.  ``0`` (default)
        runs everything in-process.  Whatever the subprocess workers
        leave unfinished — all of it, if they are killed — the
        coordinator drains in-process afterwards, so ``run_sharded``
        returns only with the complete, merged result list.
    validate / lease_ttl / clock:
        As for the worker loop.
    """
    plan = ensure_plan(specs, job_dir, shards=shards)
    procs = [
        spawn_local_worker(job_dir, lease_ttl=lease_ttl, validate=validate)
        for _ in range(max(0, local_workers))
    ]
    for proc in procs:
        proc.wait()
    # Drain every remaining shard in-process.  Live foreign leases are
    # waited out (they either finish or go stale and get reclaimed);
    # the shared ``verified`` set keeps the polling from re-parsing
    # every completed shard's result file on each tick.
    verified: set[int] = set()
    while True:
        summary = work_loop(
            job_dir,
            lease_ttl=lease_ttl,
            clock=clock,
            validate=validate,
            verified=verified,
        )
        if summary["job_complete"]:
            break
        time.sleep(min(1.0, max(0.05, lease_ttl / 20)))
    return _merge_with_plan(plan, job_dir)


def smoke_check() -> dict[str, Any]:
    """CI smoke: plan, drain with 2 worker subprocesses, merge, compare.

    The whole cluster contract on a tiny mixed batch (plain specs plus
    ``crash_stop`` and ``lossy_links`` scenarios): the merged result
    list must be **byte-identical** to serial
    :func:`repro.api.run_many` — same canonical JSON for every result,
    in order.  Runs in a temporary directory, writes nothing else, and
    raises :class:`~repro.errors.ClusterError` on any mismatch.
    Exposed as ``python -m repro shard --smoke`` (a CI step).
    """
    import tempfile

    from repro.api.runner import run_many
    from repro.api.spec import InstanceSpec
    from repro.results import canonical_json
    from repro.scenarios.spec import ScenarioSpec

    instance = InstanceSpec(family="complete_bipartite", size=3, seed=2)
    specs = [
        RunSpec(instance=instance, algorithm="greedy_sequential"),
        RunSpec(instance=instance, algorithm="bko20"),
        RunSpec(
            instance=instance,
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(model="crash_stop", seed=5, params={"f": 2}),
        ),
        RunSpec(
            instance=instance,
            algorithm="greedy_sequential",
            scenario=ScenarioSpec(
                model="lossy_links", seed=5, params={"drop": 0.2}
            ),
        ),
        # A duplicate: merge must fan one shard result over both.
        RunSpec(instance=instance, algorithm="greedy_sequential"),
    ]
    serial = run_many(specs, cache=False)
    with tempfile.TemporaryDirectory(prefix="repro-shard-smoke-") as job_dir:
        # Drive the worker subprocesses explicitly (not through
        # run_sharded, whose self-healing in-process drain would mask a
        # broken ``python -m repro worker`` entry point): both must
        # exit cleanly and between them finish the *whole* job.
        ensure_plan(specs, job_dir, shards=2)
        procs = [spawn_local_worker(job_dir) for _ in range(2)]
        for proc in procs:
            proc.wait()
        failed = [proc.returncode for proc in procs if proc.returncode != 0]
        if failed:
            raise ClusterError(
                f"smoke worker subprocesses exited with {failed}; "
                "'python -m repro worker' is broken"
            )
        status = job_status(job_dir)
        if not status["complete"]:
            raise ClusterError(
                "smoke worker subprocesses exited cleanly but left the "
                f"job incomplete: {status}"
            )
        merged = merge_results(specs, job_dir)
    if len(merged) != len(serial):
        raise ClusterError(
            f"smoke merge returned {len(merged)} results for "
            f"{len(serial)} specs"
        )
    for index, (ours, theirs) in enumerate(zip(merged, serial)):
        if canonical_json(ours.to_dict()) != canonical_json(theirs.to_dict()):
            raise ClusterError(
                f"smoke result {index} ({specs[index].label()}) is not "
                "byte-identical to serial run_many — the cluster merge "
                "contract is broken"
            )
    return {
        "specs": len(specs),
        "shards": status["shards"],
        "plan_fingerprint": status["plan_fingerprint"][:12],
        "byte_identical": True,
        "result_fingerprints": [
            result.result_fingerprint()[:12] for result in merged
        ],
    }
