"""The file-based work queue: claims, leases, and stale reclamation.

No external dependencies, no daemon: the queue *is* the shared job
directory.  Each shard has at most three files —

``shards/shard-NNNN.json``
    The task (written once by the planner, read-only here).
``claims/shard-NNNN.json``
    The lease: which worker is running the shard, since when, and the
    last heartbeat.  Created with ``O_CREAT | O_EXCL`` (the filesystem
    arbitrates racing claimants); refreshed by atomic replace on every
    heartbeat; deleted on release.
``results/shard-NNNN.json``
    The sealed output.  Its existence is the *only* "done" signal —
    results are published by atomic rename, so a shard is either fully
    done or not done at all.

**Stale-lease reclamation.**  A worker that dies leaves its claim file
behind.  Any other worker may take the shard over once the lease's
heartbeat is older than ``lease_ttl`` seconds: it atomically replaces
the claim with its own and re-reads the file to learn who won the
race.  Leases are therefore *advisory*, not mutual exclusion — in the
worst interleaving two workers can briefly run the same shard, which
is safe by construction: shard execution is deterministic, per-spec
results spill into the shared cache (atomic, last-writer-wins), and
both workers publish byte-identical sealed result files.  The protocol
trades a little duplicate work for having no lock server.

All timestamps come from an injectable ``clock`` (``time.time`` by
default), so lease expiry is unit-testable without sleeping.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Any, Callable

from repro.api.diskcache import atomic_write_json, read_json
from repro.cluster.planner import shard_name

#: Seconds a lease may go without a heartbeat before any worker may
#: reclaim the shard.  Workers heartbeat after every spec, so a healthy
#: worker refreshes far more often than this unless a single spec runs
#: longer than the TTL — size it to the slowest expected spec.
DEFAULT_LEASE_TTL = 60.0

_CLAIM_DIR = "claims"
_RESULT_DIR = "results"


def claim_path(job_dir: str | Path, shard: int) -> Path:
    return Path(job_dir) / _CLAIM_DIR / f"{shard_name(shard)}.json"


def result_path(job_dir: str | Path, shard: int) -> Path:
    return Path(job_dir) / _RESULT_DIR / f"{shard_name(shard)}.json"


def default_worker_id() -> str:
    """host:pid — unique among live workers sharing a directory."""
    return f"{socket.gethostname()}:{os.getpid()}"


class ShardQueue:
    """One worker's (or the coordinator's) view of a job's queue state.

    Parameters
    ----------
    job_dir:
        The shared job directory (planned by :mod:`repro.cluster.planner`).
    worker_id:
        This process's identity in claim files; defaults to host:pid.
    lease_ttl:
        Seconds without a heartbeat after which a lease counts as stale.
    clock:
        Time source (``time.time`` compatible); injectable for tests.
    """

    def __init__(
        self,
        job_dir: str | Path,
        *,
        worker_id: str | None = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
        self.job_dir = Path(job_dir)
        self.worker_id = worker_id or default_worker_id()
        self.lease_ttl = lease_ttl
        self._clock = clock

    # -- inspection ----------------------------------------------------

    def is_done(self, shard: int) -> bool:
        """Has the shard published a result file?  (Existence only —
        merge re-checks the seal.)"""
        return result_path(self.job_dir, shard).exists()

    def lease_of(self, shard: int) -> dict[str, Any] | None:
        """The current claim payload, or ``None`` (unclaimed / unreadable)."""
        payload = read_json(claim_path(self.job_dir, shard))
        return payload if isinstance(payload, dict) else None

    def is_stale(self, lease: dict[str, Any]) -> bool:
        """Is this lease past its TTL (or malformed)?

        A lease whose ``heartbeat_at`` is garbage (missing, or not a
        number — e.g. a torn write or hand-edited claim) counts as
        stale immediately: a timestamp we cannot read can never be
        refreshed, so treating it as live would wedge the shard.
        """
        heartbeat = lease.get("heartbeat_at")
        if not isinstance(heartbeat, (int, float)):
            return True
        return self._clock() - heartbeat > self.lease_ttl

    def claimable(self, shard: int) -> bool:
        """Could a claim attempt on this shard succeed right now?"""
        if self.is_done(shard):
            return False
        lease = self.lease_of(shard)
        return lease is None or self.is_stale(lease)

    # -- the lease protocol --------------------------------------------

    def _lease_payload(self, claimed_at: float | None = None) -> dict[str, Any]:
        now = self._clock()
        return {
            "worker": self.worker_id,
            "claimed_at": now if claimed_at is None else claimed_at,
            "heartbeat_at": now,
        }

    def claim(self, shard: int) -> bool:
        """Try to take the shard; ``True`` iff this worker now holds it.

        Fresh shards are claimed with an exclusive create (exactly one
        racing worker wins).  Stale leases are taken over by atomic
        replace followed by a read-back: whichever claimant's file
        survived owns the shard, every other claimant sees a foreign
        worker id and backs off.
        """
        if self.is_done(shard):
            return False
        path = claim_path(self.job_dir, shard)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            descriptor = os.open(
                path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            lease = self.lease_of(shard)
            if lease is None:
                if not path.exists():
                    # Claim vanished between our create and read — the
                    # owner released (finished or abandoned); next pass
                    # decides what the shard needs.
                    return False
                # The file exists but holds no readable lease: a worker
                # died between creating the claim and writing its JSON.
                # Treat it exactly like a stale lease — otherwise the
                # torn file wedges the shard forever (O_EXCL can never
                # succeed, and no heartbeat will ever age out).
            elif lease.get("worker") == self.worker_id:
                return True  # already ours (re-entrant claim)
            elif not self.is_stale(lease):
                return False
            # Stale (or torn): take over, then read back to see who won.
            atomic_write_json(path, self._lease_payload())
            current = self.lease_of(shard)
            return (
                current is not None
                and current.get("worker") == self.worker_id
            )
        else:
            with os.fdopen(descriptor, "w") as handle:
                handle.write(
                    json.dumps(self._lease_payload(), sort_keys=True)
                )
            return True

    def heartbeat(self, shard: int) -> bool:
        """Refresh our lease; ``False`` means we lost it (stop working).

        A worker that stalls past the TTL can find its shard reclaimed;
        the read-check-rewrite keeps it from clobbering the usurper's
        lease and tells it to abandon the shard.
        """
        lease = self.lease_of(shard)
        if lease is None or lease.get("worker") != self.worker_id:
            return False
        atomic_write_json(
            claim_path(self.job_dir, shard),
            self._lease_payload(claimed_at=lease.get("claimed_at")),
        )
        return True

    def release(self, shard: int) -> None:
        """Drop our claim (after publishing the result, or on abandon)."""
        lease = self.lease_of(shard)
        if lease is None or lease.get("worker") != self.worker_id:
            return  # never ours, or already reclaimed — leave it alone
        try:
            claim_path(self.job_dir, shard).unlink()
        except OSError:
            pass

    # -- status --------------------------------------------------------

    def status(self, shards: int) -> dict[str, Any]:
        """Queue-state summary over all ``shards`` work units."""
        done: list[int] = []
        running: list[int] = []
        stale: list[int] = []
        pending: list[int] = []
        for shard in range(shards):
            if self.is_done(shard):
                done.append(shard)
            else:
                lease = self.lease_of(shard)
                if lease is None:
                    pending.append(shard)
                elif self.is_stale(lease):
                    stale.append(shard)
                else:
                    running.append(shard)
        return {
            "shards": shards,
            "done": done,
            "running": running,
            "stale": stale,
            "pending": pending,
            "complete": len(done) == shards,
        }
