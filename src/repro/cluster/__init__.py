"""repro.cluster — sharded, resumable multi-worker spec execution.

The layer above :func:`repro.api.run_many` for sweeps too big for one
process (or one machine): a spec batch is deterministically partitioned
into shards, independent workers drain the shards through the ordinary
batch executor against a shared directory, and the coordinator merges
the sealed shard outputs back into the exact ordered result list
``run_many`` would have produced — byte for byte::

    from repro.api import InstanceSpec, RunSpec
    from repro.cluster import run_sharded

    specs = [RunSpec(InstanceSpec(family="grid", size=s)) for s in range(3, 9)]
    results = run_sharded(specs, "jobs/grid-sweep", shards=4, local_workers=2)
    # == run_many(specs), byte-identical

No external dependencies: the *filesystem is the cluster*.  Workers on
any machine that shares the job directory participate by running
``python -m repro worker <job_dir>``; coordination is three kinds of
file —

* **task files** (written once by the deterministic planner,
  :mod:`repro.cluster.planner`): which fingerprints a shard owns;
* **claim files** (:mod:`repro.cluster.queue`): advisory leases with
  heartbeats; crashed workers' leases go stale and their shards are
  reclaimed by anyone still alive;
* **sealed result files** (:mod:`repro.cluster.worker`): published by
  atomic rename, integrity-checked on merge
  (:mod:`repro.cluster.coordinator`).

Everything is content-addressed and idempotent, so any component may
die and be re-run: per-spec results spill into the job's shared
``cache/`` as they finish (a reclaimed shard replays them instead of
re-solving), and duplicate execution during a lease race publishes
byte-identical files.  The CLI front ends are ``python -m repro worker``
and ``python -m repro shard plan|status|merge`` (plus ``--smoke``, the
CI check).

**Failure domains.**  Workers execute specs under a
:class:`~repro.api.FailurePolicy` (default capture): a poison spec
becomes a quarantined dead letter in the job's ``failed/`` directory
and merges as a :class:`~repro.results.FailedResult` slot; the
coordinator bounds its wait on spawned workers
(:func:`wait_for_workers`), escalating terminate → kill on any worker
whose lease heartbeats stop, and records the events in ``events.json``.
The deterministic chaos harness (:mod:`repro.faults`,
``python -m repro chaos --smoke``) drives injected faults through this
whole stack end-to-end.
"""

from repro.cluster.coordinator import (
    WorkerWatch,
    job_status,
    load_shard_results,
    load_worker_events,
    merge_results,
    record_worker_events,
    retry_failed,
    run_sharded,
    run_sharded_iter,
    smoke_check,
    spawn_local_worker,
    wait_for_workers,
)
from repro.cluster.planner import (
    ShardPlan,
    ensure_plan,
    load_plan,
    load_task,
    plan_shards,
    resolve_shards,
    write_plan,
)
from repro.cluster.queue import DEFAULT_LEASE_TTL, ShardQueue, default_worker_id
from repro.cluster.worker import (
    cache_dir_of,
    dead_letter_path,
    load_dead_letter,
    load_dead_letters,
    load_shard_timing,
    publish_shard_result,
    quarantine_failure,
    timing_path,
    work_loop,
)

__all__ = [
    "DEFAULT_LEASE_TTL",
    "ShardPlan",
    "ShardQueue",
    "WorkerWatch",
    "cache_dir_of",
    "dead_letter_path",
    "default_worker_id",
    "ensure_plan",
    "job_status",
    "load_dead_letter",
    "load_dead_letters",
    "load_plan",
    "load_shard_results",
    "load_shard_timing",
    "load_task",
    "load_worker_events",
    "merge_results",
    "plan_shards",
    "publish_shard_result",
    "quarantine_failure",
    "record_worker_events",
    "resolve_shards",
    "retry_failed",
    "run_sharded",
    "run_sharded_iter",
    "smoke_check",
    "spawn_local_worker",
    "timing_path",
    "wait_for_workers",
    "work_loop",
]
