"""The worker loop: drain claimable shards through the batch executor.

``python -m repro worker <job_dir>`` runs this (any number of times, on
any machine that sees the directory).  One pass of the loop:

1. scan the shards for one that is not done and claimable (unclaimed,
   or holding a stale lease) — lowest shard index first, so workers
   starting together fan out deterministically after their first
   collisions;
2. claim it, then run its specs **serially** through
   :func:`repro.api.run_many_iter` with ``cache_dir=`` pointed at the
   job's shared spill directory.  Every finished spec lands in the
   cache immediately, so a worker that dies mid-shard leaves its
   progress behind — the reclaiming worker replays the finished specs
   from disk and only executes the remainder;
3. heartbeat the lease after every spec (a heartbeat that fails means
   the lease was reclaimed from us: abandon the shard without
   publishing);
4. publish the sealed result file atomically and release the claim.

The loop exits when a full scan finds nothing claimable: either the
job is complete, or every remaining shard is leased to a live worker
(the summary distinguishes the two).  Workers never merge — that is
the coordinator's job — and never need to agree on anything but the
directory: all coordination is the claim files.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable

from repro.api.diskcache import atomic_write_json
from repro.api.runner import run_many_iter
from repro.cluster.planner import (
    PLAN_FORMAT,
    load_plan,
    load_task,
    shard_name,
)
from repro.cluster.queue import DEFAULT_LEASE_TTL, ShardQueue, result_path
from repro.results import fingerprint_of

#: Subdirectory of the job dir all workers spill per-spec results into.
CACHE_SUBDIR = "cache"


def cache_dir_of(job_dir: str | Path) -> Path:
    """The job's shared per-spec result cache (intra-shard resume)."""
    return Path(job_dir) / CACHE_SUBDIR


def publish_shard_result(
    job_dir: str | Path,
    shard: int,
    plan_fingerprint: str,
    results: dict[str, dict],
) -> None:
    """Seal and atomically publish one shard's ``fingerprint -> result``."""
    body = {
        "format": PLAN_FORMAT,
        "shard": shard,
        "plan_fingerprint": plan_fingerprint,
        "results": results,
    }
    atomic_write_json(
        result_path(job_dir, shard), {**body, "seal": fingerprint_of(body)}
    )


def run_shard(
    job_dir: str | Path,
    shard: int,
    queue: ShardQueue,
    *,
    plan_fingerprint: str,
    validate: bool = True,
) -> int | None:
    """Execute one claimed shard; returns specs run, or ``None`` if lost.

    The caller must hold the shard's lease.  Specs run serially in the
    task file's (sorted-fingerprint) order with the job cache as spill;
    the lease is heartbeaten after every spec.  A failed heartbeat
    means another worker reclaimed the shard — abandon it silently
    (the usurper will publish the identical result).
    """
    specs = load_task(job_dir, shard)
    ordered = list(specs.items())
    results: dict[str, dict] = {}
    executed = 0
    if ordered:
        batch = [spec for _, spec in ordered]
        for index, result in run_many_iter(
            batch,
            parallel=1,
            validate=validate,
            cache=False,  # worker processes are short-lived; disk is the memo
            cache_dir=cache_dir_of(job_dir),
        ):
            results[ordered[index][0]] = result.to_dict()
            executed += 1
            if not queue.heartbeat(shard):
                return None
    publish_shard_result(job_dir, shard, plan_fingerprint, results)
    queue.release(shard)
    return executed


def work_loop(
    job_dir: str | Path,
    *,
    worker_id: str | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    clock: Callable[[], float] = time.time,
    validate: bool = True,
    max_shards: int | None = None,
    verified: set[int] | None = None,
) -> dict[str, Any]:
    """Drain claimable shards until none remain; return a summary.

    ``max_shards`` caps how many shards this call will execute (used by
    tests to model a worker dying between shards, and handy for
    time-boxed draining).  ``verified`` is an optional persistent set
    of shard indices whose result files have already passed their
    integrity check — the coordinator's polling drain passes one so
    repeated calls do not re-parse every completed shard per tick.
    The summary is JSON-safe::

        {"worker": ..., "completed": [shard, ...], "specs_run": n,
         "abandoned": [...], "job_complete": bool, "outstanding": [...]}

    ``abandoned`` lists shards whose lease was reclaimed from under us
    mid-run; ``outstanding`` lists shards neither done nor claimable
    when the loop exited (live leases of other workers).
    """
    plan = load_plan(job_dir)
    plan_fingerprint = plan.plan_fingerprint()
    queue = ShardQueue(
        job_dir, worker_id=worker_id, lease_ttl=lease_ttl, clock=clock
    )
    if verified is None:
        verified = set()

    def shard_done(shard: int) -> bool:
        # "Done" means a result file that passes its integrity check —
        # a torn or foreign file must re-run, not wedge the merge.  The
        # seal is verified once per shard per loop (memoised); later
        # scans fall back to the cheap existence probe.
        if shard in verified:
            return queue.is_done(shard)
        if not queue.is_done(shard):
            return False
        from repro.cluster.coordinator import load_shard_results

        if (
            load_shard_results(
                job_dir, shard, plan_fingerprint=plan_fingerprint
            )
            is None
        ):
            try:
                result_path(job_dir, shard).unlink()
            except OSError:
                pass
            return False
        verified.add(shard)
        return True

    completed: list[int] = []
    abandoned: list[int] = []
    specs_run = 0
    progressed = True
    while progressed:
        progressed = False
        for shard in range(plan.shards):
            if max_shards is not None and len(completed) >= max_shards:
                progressed = False
                break
            if shard_done(shard) or not queue.claim(shard):
                continue
            executed = run_shard(
                job_dir,
                shard,
                queue,
                plan_fingerprint=plan_fingerprint,
                validate=validate,
            )
            if executed is None:
                abandoned.append(shard)
            else:
                completed.append(shard)
                specs_run += executed
            progressed = True
    outstanding = [
        shard for shard in range(plan.shards) if not shard_done(shard)
    ]
    return {
        "worker": queue.worker_id,
        "completed": completed,
        "specs_run": specs_run,
        "abandoned": abandoned,
        "outstanding": outstanding,
        "job_complete": not outstanding,
        "shards": [shard_name(shard) for shard in completed],
    }
