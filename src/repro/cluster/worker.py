"""The worker loop: drain claimable shards through the batch executor.

``python -m repro worker <job_dir>`` runs this (any number of times, on
any machine that sees the directory).  One pass of the loop:

1. scan the shards for one that is not done and claimable (unclaimed,
   or holding a stale lease) — lowest shard index first, so workers
   starting together fan out deterministically after their first
   collisions;
2. claim it, then run its specs **serially** through
   :func:`repro.api.run_many_iter` with ``cache_dir=`` pointed at the
   job's shared spill directory.  Every finished spec lands in the
   cache immediately, so a worker that dies mid-shard leaves its
   progress behind — the reclaiming worker replays the finished specs
   from disk and only executes the remainder;
3. heartbeat the lease after every spec (a heartbeat that fails means
   the lease was reclaimed from us: abandon the shard without
   publishing);
4. publish the sealed result file atomically and release the claim.

The loop exits when a full scan finds nothing claimable: either the
job is complete, or every remaining shard is leased to a live worker
(the summary distinguishes the two).  Workers never merge — that is
the coordinator's job — and never need to agree on anything but the
directory: all coordination is the claim files.

**Failure modes.**  Workers execute with a failure policy (default
``on_error="capture"``): a spec whose every attempt raises becomes a
:class:`~repro.results.FailedResult` recorded in the shard's sealed
result file *and* quarantined as a **dead letter** —
``failed/<fingerprint>.json``, sealed, holding the failure record plus
the full traceback text for debugging.  A reclaiming worker (or a
resumed job) reuses valid dead letters instead of re-looping the
poison spec, exactly as it replays successful specs from the shared
cache; a torn or foreign dead-letter file is treated as absent and the
spec re-runs.  Under ``on_error="raise"`` a poison spec kills the
worker process — its lease goes stale and another worker (or the
coordinator's drain) inherits the shard, so *some* account of the spec
is still forced: prefer capture for unattended fleets.
"""

from __future__ import annotations

import math
import time
from pathlib import Path
from typing import Any, Callable

from repro.api.diskcache import atomic_write_json, read_json
from repro.api.failures import FailurePolicy, resolve_policy
from repro.api.runner import run_many_iter
from repro.cluster.planner import (
    PLAN_FORMAT,
    load_plan,
    load_task,
    shard_name,
)
from repro.cluster.queue import DEFAULT_LEASE_TTL, ShardQueue, result_path
from repro.results import FailedResult, fingerprint_of
from repro.telemetry.events import emit_event, events_context, events_dir_of
from repro.telemetry.trace import trace

#: Subdirectory of the job dir all workers spill per-spec results into.
CACHE_SUBDIR = "cache"

#: Subdirectory all workers append run-ledger records into (defaulted
#: on by :func:`run_shard`; observational, like ``timings/``).
LEDGER_SUBDIR = "ledger"

#: Subdirectory holding dead-letter records of captured spec failures
#: (one sealed JSON per failed spec fingerprint, next to ``results/``).
FAILED_SUBDIR = "failed"

#: Dead-letter file format version.
DEAD_LETTER_FORMAT = 1

#: Subdirectory holding per-shard timing sidecars (observational;
#: deliberately *outside* the sealed result files so wall-clock noise
#: can never perturb the byte-identical merge contract).
TIMING_SUBDIR = "timings"


def cache_dir_of(job_dir: str | Path) -> Path:
    """The job's shared per-spec result cache (intra-shard resume)."""
    return Path(job_dir) / CACHE_SUBDIR


def ledger_dir_of(job_dir: str | Path) -> Path:
    """The job's shared run-ledger directory (one file per worker pid)."""
    return Path(job_dir) / LEDGER_SUBDIR


def timing_path(job_dir: str | Path, shard: int) -> Path:
    """The observational timing sidecar of one shard."""
    return Path(job_dir) / TIMING_SUBDIR / f"{shard_name(shard)}.json"


def record_shard_timing(
    job_dir: str | Path,
    shard: int,
    *,
    plan_fingerprint: str,
    worker: str,
    started_at: float,
    wall_clock_s: float,
    specs_total: int,
    specs_executed: int,
) -> None:
    """Best-effort publish of one shard's wall-clock accounting.

    Timing is observational by design: it lives next to — never inside
    — the sealed result file, carries no seal, and a failed write is
    swallowed.  ``specs_executed`` counts specs this run actually
    drained through the executor (cache replays and reused dead
    letters are part of ``specs_total`` but not of ``specs_executed``),
    so throughput numbers describe real work, not replay speed.
    """
    payload = {
        "format": PLAN_FORMAT,
        "shard": shard,
        "plan_fingerprint": plan_fingerprint,
        "worker": worker,
        "started_at": round(started_at, 6),
        "wall_clock_s": round(wall_clock_s, 6),
        "specs_total": specs_total,
        "specs_executed": specs_executed,
    }
    try:
        atomic_write_json(timing_path(job_dir, shard), payload)
    except OSError:
        pass


def load_shard_timing(
    job_dir: str | Path, shard: int, *, plan_fingerprint: str
) -> dict[str, Any] | None:
    """Load one shard's timing sidecar, or ``None`` if absent/foreign.

    A sidecar from a different plan (the directory was re-planned) or
    with garbage fields is ignored — timing must never make ``status``
    lie, only stay silent.
    """
    payload = read_json(timing_path(job_dir, shard))
    if (
        not isinstance(payload, dict)
        or payload.get("shard") != shard
        or payload.get("plan_fingerprint") != plan_fingerprint
    ):
        return None
    wall = payload.get("wall_clock_s")
    if (
        isinstance(wall, bool)
        or not isinstance(wall, (int, float))
        or not math.isfinite(wall)
        or wall < 0
    ):
        # Rejecting inf/nan here (not just negatives) keeps every
        # downstream rate division finite — a hand-edited or corrupt
        # sidecar must not turn ``status`` output into ``Infinity``.
        return None
    return payload


def dead_letter_path(job_dir: str | Path, fingerprint: str) -> Path:
    """The dead-letter file of one failed spec fingerprint."""
    return Path(job_dir) / FAILED_SUBDIR / f"{fingerprint}.json"


def quarantine_failure(
    job_dir: str | Path, plan_fingerprint: str, failed: FailedResult
) -> None:
    """Seal and atomically publish one captured failure as a dead letter.

    The sealed body carries the deterministic failure record plus the
    observational extras (full traceback text, wall-clock) that stay
    out of the record itself.  Concurrent quarantiners of the same
    fingerprint publish equivalent records; the last write wins.
    """
    body = {
        "format": DEAD_LETTER_FORMAT,
        "fingerprint": failed.fingerprint,
        "plan_fingerprint": plan_fingerprint,
        "result": failed.to_dict(),
        "traceback": failed.traceback_text,
        "wall_clock_s": failed.wall_clock_s,
    }
    atomic_write_json(
        dead_letter_path(job_dir, failed.fingerprint),
        {**body, "seal": fingerprint_of(body)},
    )


def load_dead_letter(
    job_dir: str | Path, fingerprint: str, *, plan_fingerprint: str
) -> FailedResult | None:
    """Load one quarantined failure, or ``None`` if absent/invalid.

    The integrity discipline of every other cluster file: a torn seal,
    a foreign plan, or a record that is not actually a failure is
    treated exactly like a missing file — the spec re-runs rather than
    half-trusting a corrupt quarantine entry.
    """
    payload = read_json(dead_letter_path(job_dir, fingerprint))
    if not isinstance(payload, dict):
        return None
    body = {key: value for key, value in payload.items() if key != "seal"}
    if (
        payload.get("seal") != fingerprint_of(body)
        or body.get("format") != DEAD_LETTER_FORMAT
        or body.get("fingerprint") != fingerprint
        or body.get("plan_fingerprint") != plan_fingerprint
    ):
        return None
    try:
        result = FailedResult.from_dict(body["result"])
    except Exception:
        return None
    if not result.is_failure() or result.fingerprint != fingerprint:
        return None
    traceback_text = body.get("traceback")
    if isinstance(traceback_text, str):
        result.traceback_text = traceback_text
    return result


def load_dead_letters(
    job_dir: str | Path, *, plan_fingerprint: str
) -> dict[str, FailedResult]:
    """All valid quarantined failures of a job, by spec fingerprint."""
    directory = Path(job_dir) / FAILED_SUBDIR
    if not directory.is_dir():
        return {}
    letters: dict[str, FailedResult] = {}
    for path in sorted(directory.glob("*.json")):
        fingerprint = path.stem
        loaded = load_dead_letter(
            job_dir, fingerprint, plan_fingerprint=plan_fingerprint
        )
        if loaded is not None:
            letters[fingerprint] = loaded
    return letters


def publish_shard_result(
    job_dir: str | Path,
    shard: int,
    plan_fingerprint: str,
    results: dict[str, dict],
) -> None:
    """Seal and atomically publish one shard's ``fingerprint -> result``."""
    body = {
        "format": PLAN_FORMAT,
        "shard": shard,
        "plan_fingerprint": plan_fingerprint,
        "results": results,
    }
    atomic_write_json(
        result_path(job_dir, shard), {**body, "seal": fingerprint_of(body)}
    )


def run_shard(
    job_dir: str | Path,
    shard: int,
    queue: ShardQueue,
    *,
    plan_fingerprint: str,
    validate: bool = True,
    on_error: str | FailurePolicy = "capture",
) -> int | None:
    """Execute one claimed shard; returns specs run, or ``None`` if lost.

    The caller must hold the shard's lease.  Specs run serially in the
    task file's (sorted-fingerprint) order with the job cache as spill;
    the lease is heartbeaten after every spec.  A failed heartbeat
    means another worker reclaimed the shard — abandon it silently
    (the usurper will publish the identical result).

    Failures already quarantined in ``failed/`` are reused (never
    re-looped); fresh captured failures are quarantined as they stream
    out and recorded in the shard's result file alongside successes.

    The run ledger is defaulted **on**: every spec this shard resolves
    (execution, cache replay, captured failure) appends a record under
    ``<job_dir>/ledger/`` — the raw material of ``python -m repro
    report`` and the ledger columns of ``shard status``.  So is the
    **event stream** (``<job_dir>/events/``): the drain runs under
    :func:`~repro.telemetry.events.events_context`, so the executor's
    per-spec ``spec_resolved`` / ``spec_retry`` events land there, and
    the shard lifecycle (heartbeat, dead letter, sealed, abandoned) is
    emitted here.  Both are observational and best-effort; neither
    ever enters the sealed result file.
    """
    policy = resolve_policy(on_error)
    events_dir = events_dir_of(job_dir)
    started_at = time.time()
    specs = load_task(job_dir, shard)
    ordered = list(specs.items())
    results: dict[str, dict] = {}
    executed = 0
    todo: list[tuple[str, object]] = []
    for fingerprint, spec in ordered:
        quarantined = load_dead_letter(
            job_dir, fingerprint, plan_fingerprint=plan_fingerprint
        )
        if quarantined is not None:
            results[fingerprint] = quarantined.to_dict()
        else:
            todo.append((fingerprint, spec))
    if todo:
        batch = [spec for _, spec in todo]
        with trace("shard.drain", shard=shard, specs=len(batch)), \
                events_context(events_dir):
            for index, result in run_many_iter(
                batch,
                parallel=1,
                validate=validate,
                cache=False,  # worker processes are short-lived; disk is the memo
                cache_dir=cache_dir_of(job_dir),
                on_error=policy,
                ledger_dir=ledger_dir_of(job_dir),
            ):
                if result.is_failure():
                    quarantine_failure(job_dir, plan_fingerprint, result)
                    emit_event(
                        "dead_letter",
                        events_dir,
                        shard=shard,
                        fingerprint=todo[index][0],
                        error_type=result.error_type,
                        attempts=result.attempts,
                    )
                results[todo[index][0]] = result.to_dict()
                executed += 1
                if not queue.heartbeat(shard):
                    emit_event("shard_abandoned", events_dir, shard=shard)
                    return None
                emit_event(
                    "shard_heartbeat",
                    events_dir,
                    shard=shard,
                    done=executed,
                    total=len(todo),
                )
    with trace("shard.publish", shard=shard):
        publish_shard_result(job_dir, shard, plan_fingerprint, results)
    record_shard_timing(
        job_dir,
        shard,
        plan_fingerprint=plan_fingerprint,
        worker=queue.worker_id,
        started_at=started_at,
        wall_clock_s=time.time() - started_at,
        specs_total=len(ordered),
        specs_executed=executed,
    )
    emit_event(
        "shard_sealed",
        events_dir,
        shard=shard,
        specs_total=len(ordered),
        specs_executed=executed,
        wall_clock_s=round(time.time() - started_at, 6),
    )
    queue.release(shard)
    return executed


def work_loop(
    job_dir: str | Path,
    *,
    worker_id: str | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    clock: Callable[[], float] = time.time,
    validate: bool = True,
    max_shards: int | None = None,
    verified: set[int] | None = None,
    on_error: str | FailurePolicy = "capture",
) -> dict[str, Any]:
    """Drain claimable shards until none remain; return a summary.

    ``max_shards`` caps how many shards this call will execute (used by
    tests to model a worker dying between shards, and handy for
    time-boxed draining).  ``verified`` is an optional persistent set
    of shard indices whose result files have already passed their
    integrity check — the coordinator's polling drain passes one so
    repeated calls do not re-parse every completed shard per tick.
    ``on_error`` is the failure policy specs execute under (see
    :func:`run_shard`; default capture — poison specs are quarantined,
    not fatal).  The summary is JSON-safe::

        {"worker": ..., "completed": [shard, ...], "specs_run": n,
         "abandoned": [...], "job_complete": bool, "outstanding": [...]}

    ``abandoned`` lists shards whose lease was reclaimed from under us
    mid-run; ``outstanding`` lists shards neither done nor claimable
    when the loop exited (live leases of other workers).
    """
    plan = load_plan(job_dir)
    plan_fingerprint = plan.plan_fingerprint()
    queue = ShardQueue(
        job_dir, worker_id=worker_id, lease_ttl=lease_ttl, clock=clock
    )
    if verified is None:
        verified = set()

    def shard_done(shard: int) -> bool:
        # "Done" means a result file that passes its integrity check —
        # a torn or foreign file must re-run, not wedge the merge.  The
        # seal is verified once per shard per loop (memoised); later
        # scans fall back to the cheap existence probe.
        if shard in verified:
            return queue.is_done(shard)
        if not queue.is_done(shard):
            return False
        from repro.cluster.coordinator import load_shard_results

        if (
            load_shard_results(
                job_dir, shard, plan_fingerprint=plan_fingerprint
            )
            is None
        ):
            try:
                result_path(job_dir, shard).unlink()
            except OSError:
                pass
            return False
        verified.add(shard)
        return True

    completed: list[int] = []
    abandoned: list[int] = []
    specs_run = 0
    progressed = True
    while progressed:
        progressed = False
        for shard in range(plan.shards):
            if max_shards is not None and len(completed) >= max_shards:
                progressed = False
                break
            if shard_done(shard):
                continue
            with trace("shard.claim", shard=shard) as span:
                claimed = queue.claim(shard)
                span.annotate(claimed=claimed)
            if not claimed:
                continue
            emit_event(
                "shard_claimed",
                events_dir_of(job_dir),
                shard=shard,
                specs=len(plan.assignment[shard]),
            )
            executed = run_shard(
                job_dir,
                shard,
                queue,
                plan_fingerprint=plan_fingerprint,
                validate=validate,
                on_error=on_error,
            )
            if executed is None:
                abandoned.append(shard)
            else:
                completed.append(shard)
                specs_run += executed
            progressed = True
    outstanding = [
        shard for shard in range(plan.shards) if not shard_done(shard)
    ]
    return {
        "worker": queue.worker_id,
        "completed": completed,
        "specs_run": specs_run,
        "abandoned": abandoned,
        "outstanding": outstanding,
        "job_complete": not outstanding,
        "shards": [shard_name(shard) for shard in completed],
    }
