"""Reading and writing graphs and colorings as plain text.

The CLI (``python -m repro``) and downstream users exchange instances
as edge-list files: one ``u v`` pair per line, ``#`` comments allowed.
Colorings are written as ``u v color`` lines — trivially diffable and
consumable by anything.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

import networkx as nx

from repro.errors import InvalidInstanceError
from repro.graphs.edges import Edge, edge_key
from repro.graphs.properties import validate_simple_graph


def read_edge_list(path: str | Path) -> nx.Graph:
    """Read a graph from an edge-list file.

    Format: one edge per line as two whitespace-separated labels;
    labels that parse as integers become integer nodes.  Lines starting
    with ``#`` and blank lines are ignored.
    """
    graph = nx.Graph()
    text = Path(path).read_text()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise InvalidInstanceError(
                f"{path}:{line_number}: expected 'u v', got {line!r}"
            )
        u, v = (_parse_label(p) for p in parts)
        if u == v:
            raise InvalidInstanceError(
                f"{path}:{line_number}: self-loop {u!r}"
            )
        graph.add_edge(u, v)
    validate_simple_graph(graph)
    return graph


def _parse_label(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def write_edge_list(graph: nx.Graph, path: str | Path) -> None:
    """Write a graph as an edge-list file (canonical edge order)."""
    validate_simple_graph(graph)
    lines = [f"# {graph.number_of_nodes()} nodes, {graph.number_of_edges()} edges"]
    for u, v in sorted(
        (edge_key(u, v) for u, v in graph.edges()), key=repr
    ):
        lines.append(f"{u} {v}")
    Path(path).write_text("\n".join(lines) + "\n")


def write_coloring(coloring: Mapping[Edge, int], path: str | Path) -> None:
    """Write an edge coloring as ``u v color`` lines."""
    lines = ["# u v color"]
    for (u, v) in sorted(coloring, key=repr):
        lines.append(f"{u} {v} {coloring[(u, v)]}")
    Path(path).write_text("\n".join(lines) + "\n")


def read_coloring(path: str | Path) -> dict[Edge, int]:
    """Read an edge coloring written by :func:`write_coloring`."""
    coloring: dict[Edge, int] = {}
    text = Path(path).read_text()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise InvalidInstanceError(
                f"{path}:{line_number}: expected 'u v color', got {line!r}"
            )
        u, v = _parse_label(parts[0]), _parse_label(parts[1])
        coloring[edge_key(u, v)] = int(parts[2])
    return coloring
