"""The single registry of named, seedable graph families.

Before this module the CLI (``repro.__main__``), the sweep harness,
and several benchmark modules each carried their own hardcoded
``name -> builder`` table.  They now all resolve family names here, so
an instance is describable by the serializable triple
``(family, size, seed)`` — the substrate of
:class:`repro.api.InstanceSpec`.

Every family maps one integer ``size`` knob (whose meaning is
family-specific and documented per entry) plus a ``seed`` to a
concrete :class:`networkx.Graph`, deterministically.  Families whose
generator has feasibility constraints (e.g. random regular graphs need
``degree * n`` even) perform an explicit, documented adjustment rather
than relying on callers to pick feasible sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import networkx as nx

from repro.errors import ParameterError
from repro.graphs import generators


@dataclass(frozen=True)
class Family:
    """A named instance family: ``(size, seed) -> graph``.

    Attributes
    ----------
    name:
        Registry key (the ``--family`` value on the CLI).
    size_meaning:
        What the ``size`` parameter controls (nodes, degree, ...).
    description:
        Why the family is in the zoo (which regime it stresses).
    build:
        Deterministic builder ``(size, seed) -> nx.Graph``.
    """

    name: str
    size_meaning: str
    description: str
    build: Callable[[int, int], nx.Graph] = field(repr=False)


_REGISTRY: dict[str, Family] = {}


def register_family(
    name: str, *, size_meaning: str, description: str
) -> Callable[[Callable[[int, int], nx.Graph]], Callable[[int, int], nx.Graph]]:
    """Decorator adding a ``(size, seed) -> graph`` builder to the registry."""

    def decorator(build: Callable[[int, int], nx.Graph]):
        if name in _REGISTRY:
            raise ParameterError(f"family {name!r} registered twice")
        _REGISTRY[name] = Family(
            name=name,
            size_meaning=size_meaning,
            description=description,
            build=build,
        )
        return build

    return decorator


def family_registry() -> dict[str, Family]:
    """Return the registered families (name -> :class:`Family`)."""
    return dict(_REGISTRY)


def family_names() -> list[str]:
    """Sorted names of every registered family."""
    return sorted(_REGISTRY)


def get_family(name: str) -> Family:
    """Look up a family by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown family {name!r}; have {family_names()}"
        ) from None


def build_family(name: str, size: int, seed: int = 1) -> nx.Graph:
    """Build one instance of a registered family."""
    return get_family(name).build(size, seed)


def feasible_regular_order(degree: int, n: int) -> tuple[int, int]:
    """Adjust ``(degree, n)`` so a simple ``degree``-regular graph exists.

    Existence requires ``n > degree`` and ``degree * n`` even; ``n`` is
    bumped (never the degree — the degree is the experimental knob) by
    the minimum amount that satisfies both.
    """
    if degree < 0:
        raise ParameterError(f"degree must be >= 0, got {degree}")
    n = max(n, degree + 1)
    if (degree * n) % 2:
        n += 1
    return degree, n


# ----------------------------------------------------------------------
# The standard zoo.  Size floors mirror each generator's own minimum so
# that every (size >= 1, seed) pair builds.
# ----------------------------------------------------------------------


@register_family(
    "cycle",
    size_meaning="number of nodes (min 3)",
    description="constant Δ, growing n: isolates the additive O(log* n) term",
)
def _cycle(size: int, seed: int) -> nx.Graph:
    return generators.cycle_graph(max(3, size))


@register_family(
    "path",
    size_meaning="number of nodes (min 2)",
    description="the sparsest connected instance; boundary effects of the cycle",
)
def _path(size: int, seed: int) -> nx.Graph:
    return generators.path_graph(max(2, size))


@register_family(
    "complete",
    size_meaning="number of nodes (min 2)",
    description="growing Δ = n-1: isolates the quasi-polylog-in-Δ term",
)
def _complete(size: int, seed: int) -> nx.Graph:
    return generators.complete_graph(max(2, size))


@register_family(
    "complete_bipartite",
    size_meaning="nodes per side (min 1)",
    description="K_{s,s}: uniform edge degree 2s-2, the classic hard instance",
)
def _complete_bipartite(size: int, seed: int) -> nx.Graph:
    return generators.complete_bipartite(max(1, size), max(1, size))


@register_family(
    "random_regular",
    size_meaning="degree d (n = 4d, adjusted to a feasible order)",
    description="uniform degrees, no helpful structure: the paper's typical instance",
)
def _random_regular(size: int, seed: int) -> nx.Graph:
    degree, n = feasible_regular_order(max(1, size), 4 * max(1, size))
    return generators.random_regular(degree, n, seed)


@register_family(
    "grid",
    size_meaning="side length (size x size grid, min 2)",
    description="Δ <= 4 planar instance with boundary-degree skew",
)
def _grid(size: int, seed: int) -> nx.Graph:
    return generators.grid_graph(max(2, size), max(2, size))


@register_family(
    "torus",
    size_meaning="side length (size x size torus, min 3)",
    description="4-regular instance with no boundary effects",
)
def _torus(size: int, seed: int) -> nx.Graph:
    return generators.torus_graph(max(3, size), max(3, size))


@register_family(
    "star",
    size_meaning="number of leaves (min 1)",
    description="Δ = n-1 at one hub: every edge shares the hub",
)
def _star(size: int, seed: int) -> nx.Graph:
    return generators.star_graph(max(1, size))


@register_family(
    "hypercube",
    size_meaning="dimension (min 1)",
    description="Δ = log2 n: degree and diameter grow together",
)
def _hypercube(size: int, seed: int) -> nx.Graph:
    return generators.hypercube(max(1, size))


@register_family(
    "random_tree",
    size_meaning="number of nodes (min 1)",
    description="uniformly random labelled tree: sparse with random degree skew",
)
def _random_tree(size: int, seed: int) -> nx.Graph:
    return generators.random_tree(max(1, size), seed)


@register_family(
    "erdos_renyi",
    size_meaning="number of nodes (min 2; edge probability fixed at 0.3)",
    description="G(n, 0.3): irregular degrees around a concentrated mean",
)
def _erdos_renyi(size: int, seed: int) -> nx.Graph:
    return generators.erdos_renyi(max(2, size), 0.3, seed)


@register_family(
    "friendship",
    size_meaning="number of triangles (min 1)",
    description="one hub of degree 2k against degree-2 spokes: extreme skew",
)
def _friendship(size: int, seed: int) -> nx.Graph:
    return generators.friendship_graph(max(1, size))


@register_family(
    "book",
    size_meaning="number of pages (min 1)",
    description="triangles sharing one edge: two high-degree nodes",
)
def _book(size: int, seed: int) -> nx.Graph:
    return generators.book_graph(max(1, size))


@register_family(
    "barbell",
    size_meaning="clique size (min 3; bridge length 2)",
    description="dense cores joined by a sparse tail: per-edge lists differ widely",
)
def _barbell(size: int, seed: int) -> nx.Graph:
    return generators.barbell(max(3, size), 2)


@register_family(
    "blow_up_cycle",
    size_meaning="group size (6-cycle blow-up, min 1)",
    description="2g-regular with a locally dense line graph: stresses Lemma 4.3",
)
def _blow_up_cycle(size: int, seed: int) -> nx.Graph:
    return generators.blow_up_cycle(6, max(1, size))


@register_family(
    "circulant",
    size_meaning="number of nodes (min 6; offsets 1, 2, 5)",
    description="expander-ish constant-degree instance: locally tree-like",
)
def _circulant(size: int, seed: int) -> nx.Graph:
    return generators.circulant(max(6, size))


@register_family(
    "caterpillar",
    size_meaning="spine length (3 legs per spine node, min 1)",
    description="low-degree spine with moderate-degree hubs",
)
def _caterpillar(size: int, seed: int) -> nx.Graph:
    return generators.caterpillar(max(1, size), 3)
