"""Graph substrate: instance generators and structural helpers.

The paper's algorithms run on arbitrary simple graphs; this package
provides

* canonical edge handling (:mod:`repro.graphs.edges`) — every edge is
  the sorted tuple ``(u, v)`` with ``u < v`` throughout the library;
* deterministic workload generators (:mod:`repro.graphs.generators`)
  covering the families the benchmarks sweep over (cycles, complete and
  bipartite graphs, random regular graphs, grids, tori, hypercubes,
  trees, blow-ups, ...);
* the named family registry (:mod:`repro.graphs.families`) — the single
  ``(family, size, seed) -> graph`` table behind the CLI, the sweep
  harness, and :class:`repro.api.InstanceSpec`;
* line-graph construction (:mod:`repro.graphs.line_graph`) — the
  algorithms reason about the *edge degree* ``deg(e)``, i.e. the degree
  of ``e`` in the line graph;
* structural measurements (:mod:`repro.graphs.properties`) such as
  ``Δ`` and ``Δ̄`` (the paper's maximum edge degree).
"""

from repro.graphs.edges import edge_key, edge_set, incident_edges
from repro.graphs.families import (
    Family,
    build_family,
    family_names,
    family_registry,
    feasible_regular_order,
    get_family,
    register_family,
)
from repro.graphs.generators import (
    GraphFamily,
    barbell,
    blow_up_cycle,
    book_graph,
    caterpillar,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    friendship_graph,
    grid_graph,
    hypercube,
    path_graph,
    random_bipartite_regular,
    random_regular,
    random_tree,
    star_graph,
    torus_graph,
)
from repro.graphs.line_graph import edge_degree, line_graph_adjacency, max_edge_degree
from repro.graphs.properties import (
    assign_unique_ids,
    graph_summary,
    max_degree,
    validate_simple_graph,
)

__all__ = [
    "edge_key",
    "edge_set",
    "incident_edges",
    "Family",
    "build_family",
    "family_names",
    "family_registry",
    "feasible_regular_order",
    "get_family",
    "register_family",
    "GraphFamily",
    "barbell",
    "blow_up_cycle",
    "book_graph",
    "caterpillar",
    "complete_bipartite",
    "complete_graph",
    "cycle_graph",
    "erdos_renyi",
    "friendship_graph",
    "grid_graph",
    "hypercube",
    "path_graph",
    "random_bipartite_regular",
    "random_regular",
    "random_tree",
    "star_graph",
    "torus_graph",
    "edge_degree",
    "line_graph_adjacency",
    "max_edge_degree",
    "assign_unique_ids",
    "graph_summary",
    "max_degree",
    "validate_simple_graph",
]
