"""Canonical edge representation.

Everywhere in this library an undirected edge between nodes ``u`` and
``v`` is represented by the tuple ``(min(u, v), max(u, v))``.  Using a
single canonical form keeps dictionaries keyed by edges consistent
across modules (colorings, lists, defect maps, ledgers) and avoids the
classic ``(u, v)`` vs ``(v, u)`` bug family entirely.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

import networkx as nx

from repro.errors import InvalidInstanceError

#: Type alias used across the library: a canonical (sorted) node pair.
Edge = tuple[Hashable, Hashable]


def edge_key(u: Hashable, v: Hashable) -> Edge:
    """Return the canonical representation of the edge ``{u, v}``.

    >>> edge_key(5, 2)
    (2, 5)
    """
    if u == v:
        raise InvalidInstanceError(f"self-loop edge ({u!r}, {v!r}) is not allowed")
    return (u, v) if _sort_key(u) <= _sort_key(v) else (v, u)


def _sort_key(node: Hashable) -> tuple[str, str]:
    """Total order over heterogeneous node labels (type name, then repr)."""
    return (type(node).__name__, repr(node))


def edge_set(graph: nx.Graph) -> list[Edge]:
    """Return all edges of ``graph`` in canonical form, sorted.

    Sorting gives deterministic iteration order to every algorithm that
    enumerates edges, which keeps simulated executions reproducible.
    """
    return sorted(
        (edge_key(u, v) for u, v in graph.edges()),
        key=lambda e: (_sort_key(e[0]), _sort_key(e[1])),
    )


def incident_edges(graph: nx.Graph, node: Hashable) -> list[Edge]:
    """Return the canonical edges incident to ``node``, sorted."""
    return sorted(
        (edge_key(node, neighbor) for neighbor in graph.neighbors(node)),
        key=lambda e: (_sort_key(e[0]), _sort_key(e[1])),
    )


def other_endpoint(edge: Edge, node: Hashable) -> Hashable:
    """Return the endpoint of ``edge`` that is not ``node``.

    >>> other_endpoint((2, 5), 2)
    5
    """
    u, v = edge
    if node == u:
        return v
    if node == v:
        return u
    raise InvalidInstanceError(f"node {node!r} is not an endpoint of edge {edge!r}")


def edges_subgraph(graph: nx.Graph, edges: Iterable[Edge]) -> nx.Graph:
    """Return the subgraph of ``graph`` containing exactly ``edges``.

    Nodes that become isolated are dropped; algorithms that recurse on
    subsets of edges (Lemma 4.2's residual instances, Lemma 4.3's
    per-subspace instances) use this to build their sub-instances.
    """
    sub = nx.Graph()
    for u, v in edges:
        if not graph.has_edge(u, v):
            raise InvalidInstanceError(
                f"edge ({u!r}, {v!r}) is not present in the host graph"
            )
        sub.add_edge(u, v)
    return sub


def iter_canonical(edges: Iterable[tuple[Hashable, Hashable]]) -> Iterator[Edge]:
    """Yield the canonical form of every pair in ``edges``."""
    for u, v in edges:
        yield edge_key(u, v)


def edge_to_token(edge: Edge) -> str:
    """Serialise a canonical edge as ``"u--v"``.

    The textual edge form shared by JSON exports
    (:mod:`repro.analysis.serialization`) and run-result fingerprints
    (:mod:`repro.results`).
    """
    u, v = edge
    return f"{u}--{v}"


def token_to_edge(token: str) -> Edge:
    """Parse an edge token back into a canonical tuple.

    Integer labels are restored as integers; everything else stays a
    string.
    """
    parts = token.split("--")
    if len(parts) != 2:
        raise InvalidInstanceError(f"malformed edge token {token!r}")

    def parse(label: str):
        try:
            return int(label)
        except ValueError:
            return label

    return (parse(parts[0]), parse(parts[1]))
