"""Line-graph views of a graph.

The paper's central quantity is the *edge degree*
``deg(e) = deg(u) + deg(v) - 2`` for ``e = {u, v}`` — the degree of
``e`` in the line graph ``L(G)``.  The maximum edge degree is written
``Δ̄`` and satisfies ``Δ̄ <= 2Δ - 2``.

All list sizes, defect bounds and recursion thresholds in the
algorithms are expressed against these quantities, so they are
implemented once here and reused everywhere.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

import networkx as nx

from repro.errors import InvalidInstanceError
from repro.graphs.edges import Edge, edge_key, edge_set


def edge_degree(graph: nx.Graph, edge: Edge) -> int:
    """Return ``deg(e) = deg(u) + deg(v) - 2``, the line-graph degree of ``e``.

    >>> import networkx as nx
    >>> g = nx.path_graph(4)
    >>> edge_degree(g, (1, 2))
    2
    """
    u, v = edge
    if not graph.has_edge(u, v):
        raise InvalidInstanceError(f"edge {edge!r} not present in graph")
    return graph.degree(u) + graph.degree(v) - 2


def max_edge_degree(graph: nx.Graph) -> int:
    """Return ``Δ̄``, the maximum edge degree (0 for edgeless graphs)."""
    if graph.number_of_edges() == 0:
        return 0
    return max(edge_degree(graph, edge_key(u, v)) for u, v in graph.edges())


def line_graph_adjacency(graph: nx.Graph) -> dict[Edge, list[Edge]]:
    """Return the adjacency of the line graph over canonical edges.

    Two edges are adjacent iff they share an endpoint.  Neighbor lists
    are sorted, giving deterministic iteration to the simulated
    algorithms that run *on* the line graph (Linial's coloring, the
    greedy class sweep).
    """
    adjacency: dict[Edge, list[Edge]] = {}
    for edge in edge_set(graph):
        u, v = edge
        neighbors = set()
        for endpoint in (u, v):
            for other in graph.neighbors(endpoint):
                candidate = edge_key(endpoint, other)
                if candidate != edge:
                    neighbors.add(candidate)
        adjacency[edge] = sorted(neighbors, key=repr)
    return adjacency


def line_graph(graph: nx.Graph) -> nx.Graph:
    """Return the line graph with canonical-edge node labels."""
    result = nx.Graph()
    adjacency = line_graph_adjacency(graph)
    result.add_nodes_from(adjacency)
    for edge, neighbors in adjacency.items():
        for other in neighbors:
            result.add_edge(edge, other)
    return result


def induced_edge_degrees(
    graph: nx.Graph, subset: Iterable[Edge]
) -> dict[Edge, int]:
    """Return each edge's degree within the sub-line-graph induced by ``subset``.

    Used by the defective coloring validator and by Lemma 4.3's
    bookkeeping: after edges are partitioned (by defective color or by
    color subspace), an edge's *new* degree counts only neighbors in
    the same part.
    """
    chosen = set(subset)
    adjacency = line_graph_adjacency(graph)
    degrees: dict[Edge, int] = {}
    for edge in chosen:
        if edge not in adjacency:
            raise InvalidInstanceError(f"edge {edge!r} not present in graph")
        degrees[edge] = sum(1 for other in adjacency[edge] if other in chosen)
    return degrees


def conflicting_pairs(
    graph: nx.Graph, assignment: Mapping[Edge, Hashable]
) -> list[tuple[Edge, Edge]]:
    """Return all adjacent edge pairs assigned the same value.

    The generic "find monochromatic conflicts" query: validators use it
    for proper colorings (result must be empty) and defect measurement
    (result size bounds the defect).
    """
    conflicts: list[tuple[Edge, Edge]] = []
    adjacency = line_graph_adjacency(graph)
    for edge, neighbors in adjacency.items():
        if edge not in assignment:
            continue
        for other in neighbors:
            if other in assignment and other > edge:
                if assignment[edge] == assignment[other]:
                    conflicts.append((edge, other))
    return conflicts
