"""Structural measurements and validation of input graphs.

The LOCAL model gives every node a unique identifier from a polynomial
range ``{1, ..., n^{O(1)}}``; :func:`assign_unique_ids` realises that
assumption for simulations, with an optional adversarial shuffle (IDs
in the LOCAL model are worst-case, not random, so tests exercise both
orders).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable

import networkx as nx

from repro.errors import InvalidInstanceError
from repro.graphs.line_graph import max_edge_degree


def validate_simple_graph(graph: nx.Graph) -> None:
    """Raise unless ``graph`` is a simple undirected graph.

    The algorithms assume no self-loops; multigraphs are rejected by
    type since parallel edges cannot be properly edge colored from
    ``deg + 1`` lists.
    """
    if graph.is_directed():
        raise InvalidInstanceError("expected an undirected graph")
    if graph.is_multigraph():
        raise InvalidInstanceError("expected a simple graph, got a multigraph")
    loops = list(nx.selfloop_edges(graph))
    if loops:
        raise InvalidInstanceError(f"graph contains self-loops: {loops[:3]!r}")


def max_degree(graph: nx.Graph) -> int:
    """Return ``Δ``, the maximum node degree (0 for empty graphs)."""
    if graph.number_of_nodes() == 0:
        return 0
    return max(degree for _node, degree in graph.degree())


def sorted_nodes(graph: nx.Graph) -> list[Hashable]:
    """Return the graph's nodes in the canonical deterministic order.

    The whole library agrees on one total order — sort by ``repr`` —
    for node enumeration, ID assignment and port numbering.  Callers
    that need the order repeatedly should compute it once and pass it
    around (:class:`~repro.model.network.Network` does exactly that at
    construction time) instead of re-sorting.
    """
    return sorted(graph.nodes(), key=repr)


def assign_unique_ids(
    graph: nx.Graph,
    *,
    seed: int | None = None,
    id_space_exponent: int = 2,
    ordered_nodes: list[Hashable] | None = None,
) -> dict[Hashable, int]:
    """Assign each node a unique ID from ``{1, ..., n^id_space_exponent}``.

    Parameters
    ----------
    graph:
        The input graph.
    seed:
        ``None`` assigns IDs in sorted node order (the friendly case);
        an integer seed scatters IDs over the whole polynomial ID space
        (the adversarial case the LOCAL model actually promises).
    id_space_exponent:
        The ``O(1)`` in the model's ``n^{O(1)}`` ID space.
    ordered_nodes:
        The canonical node order, if the caller already computed it
        (must equal :func:`sorted_nodes`); avoids a redundant sort.

    Returns
    -------
    dict
        Mapping node -> unique positive integer.
    """
    nodes = ordered_nodes if ordered_nodes is not None else sorted_nodes(graph)
    n = len(nodes)
    if n == 0:
        return {}
    if seed is None:
        return {node: index + 1 for index, node in enumerate(nodes)}
    space = max(n, n**id_space_exponent)
    rng = random.Random(seed)
    ids = rng.sample(range(1, space + 1), n)
    return dict(zip(nodes, ids))


@dataclass(frozen=True)
class GraphSummary:
    """Structural facts about an instance, as reported in benchmark tables."""

    nodes: int
    edges: int
    max_degree: int
    max_edge_degree: int

    @property
    def greedy_palette_size(self) -> int:
        """Size of the classic greedy palette ``2Δ - 1`` (0 if edgeless)."""
        if self.max_degree == 0:
            return 0
        return 2 * self.max_degree - 1


def graph_summary(graph: nx.Graph) -> GraphSummary:
    """Return the :class:`GraphSummary` of ``graph``."""
    validate_simple_graph(graph)
    return GraphSummary(
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        max_degree=max_degree(graph),
        max_edge_degree=max_edge_degree(graph),
    )
