"""Deterministic workload generators for experiments and tests.

Every generator takes an explicit ``seed`` where randomness is
involved, and all of them return plain :class:`networkx.Graph` objects
with integer node labels ``0 .. n-1``.  The benchmark harness sweeps
these families because they stress different parameter regimes of the
paper's algorithm:

* cycles/paths/grids — constant ``Δ``, growing ``n``: isolates the
  additive ``O(log* n)`` term;
* complete / complete bipartite / random regular — growing ``Δ``:
  isolates the ``log^{O(log log Δ)} Δ`` term;
* stars, books, friendship graphs — highly skewed degree sequences,
  exercising the per-edge ``deg(e) + 1`` list sizes (much smaller than
  ``2Δ - 1`` at most edges);
* blow-ups and barbells — hybrid instances with both dense cores and
  long sparse tails.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable

import networkx as nx

from repro.errors import ParameterError


def _relabel_to_integers(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to ``0 .. n-1`` deterministically (sorted by repr)."""
    ordered = sorted(graph.nodes(), key=repr)
    mapping = {node: index for index, node in enumerate(ordered)}
    return nx.relabel_nodes(graph, mapping, copy=True)


def path_graph(n: int) -> nx.Graph:
    """Return the path on ``n`` nodes (``n - 1`` edges)."""
    if n < 1:
        raise ParameterError(f"path_graph requires n >= 1, got {n}")
    return nx.path_graph(n)


def cycle_graph(n: int) -> nx.Graph:
    """Return the cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise ParameterError(f"cycle_graph requires n >= 3, got {n}")
    return nx.cycle_graph(n)


def star_graph(leaves: int) -> nx.Graph:
    """Return the star with ``leaves`` leaves (``Δ = leaves``)."""
    if leaves < 1:
        raise ParameterError(f"star_graph requires leaves >= 1, got {leaves}")
    return nx.star_graph(leaves)


def complete_graph(n: int) -> nx.Graph:
    """Return ``K_n`` (``Δ = n - 1``, edge degree ``2n - 4``)."""
    if n < 2:
        raise ParameterError(f"complete_graph requires n >= 2, got {n}")
    return nx.complete_graph(n)


def complete_bipartite(a: int, b: int) -> nx.Graph:
    """Return ``K_{a,b}`` with integer labels.

    Complete bipartite graphs are the classic hard instances for edge
    coloring experiments: every edge has the same edge degree
    ``a + b - 2`` and the line graph is a rook's graph.
    """
    if a < 1 or b < 1:
        raise ParameterError(f"complete_bipartite requires a, b >= 1, got {a}, {b}")
    return _relabel_to_integers(nx.complete_bipartite_graph(a, b))


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """Return the ``rows x cols`` grid (``Δ <= 4``)."""
    if rows < 1 or cols < 1:
        raise ParameterError(f"grid_graph requires rows, cols >= 1, got {rows}, {cols}")
    return _relabel_to_integers(nx.grid_2d_graph(rows, cols))


def torus_graph(rows: int, cols: int) -> nx.Graph:
    """Return the ``rows x cols`` torus (4-regular for rows, cols >= 3)."""
    if rows < 3 or cols < 3:
        raise ParameterError(f"torus_graph requires rows, cols >= 3, got {rows}, {cols}")
    return _relabel_to_integers(nx.grid_2d_graph(rows, cols, periodic=True))


def hypercube(dimension: int) -> nx.Graph:
    """Return the ``dimension``-dimensional hypercube (``Δ = dimension``)."""
    if dimension < 1:
        raise ParameterError(f"hypercube requires dimension >= 1, got {dimension}")
    return _relabel_to_integers(nx.hypercube_graph(dimension))


def random_regular(degree: int, n: int, seed: int) -> nx.Graph:
    """Return a random ``degree``-regular graph on ``n`` nodes.

    ``degree * n`` must be even and ``degree < n`` (standard existence
    conditions).  Random regular graphs are the paper's "typical"
    instance: uniform degrees, no helpful structure.
    """
    if degree < 0 or n <= degree:
        raise ParameterError(
            f"random_regular requires 0 <= degree < n, got degree={degree}, n={n}"
        )
    if (degree * n) % 2:
        raise ParameterError(
            f"random_regular requires degree * n even, got degree={degree}, n={n}"
        )
    return nx.random_regular_graph(degree, n, seed=seed)


def random_bipartite_regular(degree: int, side: int, seed: int) -> nx.Graph:
    """Return a random bipartite ``degree``-regular graph, ``side`` nodes per side.

    Built as the union of ``degree`` random perfect matchings between
    the two sides; parallel edges are resolved by re-drawing, so the
    result is simple and exactly ``degree``-regular.
    """
    if degree < 1 or side < degree:
        raise ParameterError(
            f"random_bipartite_regular requires 1 <= degree <= side, "
            f"got degree={degree}, side={side}"
        )
    rng = random.Random(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(2 * side))
    left = list(range(side))
    right = list(range(side, 2 * side))
    for _ in range(degree):
        # Redraw permutations until the matching avoids existing edges;
        # for degree << side this terminates quickly, and we cap the
        # attempts to keep the generator total.
        for _attempt in range(1000):
            permutation = right[:]
            rng.shuffle(permutation)
            if all(not graph.has_edge(u, v) for u, v in zip(left, permutation)):
                graph.add_edges_from(zip(left, permutation))
                break
        else:
            raise ParameterError(
                "could not realise a simple bipartite regular graph; "
                f"degree={degree} too close to side={side}"
            )
    return graph


def erdos_renyi(n: int, probability: float, seed: int) -> nx.Graph:
    """Return a ``G(n, p)`` random graph."""
    if n < 1:
        raise ParameterError(f"erdos_renyi requires n >= 1, got {n}")
    if not 0.0 <= probability <= 1.0:
        raise ParameterError(f"probability must lie in [0, 1], got {probability}")
    return nx.gnp_random_graph(n, probability, seed=seed)


def random_tree(n: int, seed: int) -> nx.Graph:
    """Return a uniformly random labelled tree on ``n`` nodes."""
    if n < 1:
        raise ParameterError(f"random_tree requires n >= 1, got {n}")
    if n == 1:
        graph = nx.Graph()
        graph.add_node(0)
        return graph
    return nx.random_labeled_tree(n, seed=seed)


def caterpillar(spine: int, legs_per_node: int) -> nx.Graph:
    """Return a caterpillar: a path of length ``spine`` with pendant legs.

    Caterpillars mix a long low-degree spine with moderate-degree hubs
    and are useful for testing per-edge list sizes.
    """
    if spine < 1:
        raise ParameterError(f"caterpillar requires spine >= 1, got {spine}")
    if legs_per_node < 0:
        raise ParameterError(
            f"caterpillar requires legs_per_node >= 0, got {legs_per_node}"
        )
    graph = nx.path_graph(spine)
    next_label = spine
    for node in range(spine):
        for _ in range(legs_per_node):
            graph.add_edge(node, next_label)
            next_label += 1
    return graph


def friendship_graph(triangles: int) -> nx.Graph:
    """Return the friendship graph: ``triangles`` triangles sharing one hub.

    The hub has degree ``2 * triangles`` while every other node has
    degree 2 — an extreme degree skew.
    """
    if triangles < 1:
        raise ParameterError(f"friendship_graph requires triangles >= 1, got {triangles}")
    graph = nx.Graph()
    hub = 0
    label = 1
    for _ in range(triangles):
        a, b = label, label + 1
        label += 2
        graph.add_edge(hub, a)
        graph.add_edge(hub, b)
        graph.add_edge(a, b)
    return graph


def book_graph(pages: int) -> nx.Graph:
    """Return the book graph: ``pages`` triangles sharing a common edge."""
    if pages < 1:
        raise ParameterError(f"book_graph requires pages >= 1, got {pages}")
    graph = nx.Graph()
    graph.add_edge(0, 1)
    for page in range(pages):
        node = 2 + page
        graph.add_edge(0, node)
        graph.add_edge(1, node)
    return graph


def barbell(clique: int, bridge: int) -> nx.Graph:
    """Return a barbell: two ``K_clique`` cliques joined by a path.

    Exercises instances with a dense core (large ``deg(e)``) attached
    to a sparse tail (tiny ``deg(e)``), where per-edge lists differ by
    an order of magnitude.
    """
    if clique < 3:
        raise ParameterError(f"barbell requires clique >= 3, got {clique}")
    if bridge < 0:
        raise ParameterError(f"barbell requires bridge >= 0, got {bridge}")
    return nx.barbell_graph(clique, bridge)


def blow_up_cycle(cycle_length: int, group_size: int) -> nx.Graph:
    """Return the blow-up of a cycle: each node becomes an independent group.

    Adjacent groups are completely joined, giving a ``2 * group_size``
    regular graph whose line graph is locally dense — a good stress
    test for the color-space reduction.
    """
    if cycle_length < 3:
        raise ParameterError(f"blow_up_cycle requires cycle_length >= 3, got {cycle_length}")
    if group_size < 1:
        raise ParameterError(f"blow_up_cycle requires group_size >= 1, got {group_size}")
    graph = nx.Graph()
    groups = [
        [position * group_size + offset for offset in range(group_size)]
        for position in range(cycle_length)
    ]
    for position, group in enumerate(groups):
        graph.add_nodes_from(group)
        next_group = groups[(position + 1) % cycle_length]
        for u, v in itertools.product(group, next_group):
            graph.add_edge(u, v)
    return graph


def circulant(n: int, offsets: tuple[int, ...] = (1, 2, 5)) -> nx.Graph:
    """Return the circulant graph ``C_n(offsets)``.

    Node ``i`` connects to ``i ± o (mod n)`` for each offset ``o`` —
    a standard explicit expander-like family with degree
    ``2 * len(offsets)`` (slightly less if offsets collide mod n).
    Expander-ish instances matter for coloring experiments because
    their neighborhoods look locally tree-like: no structure for an
    algorithm to exploit.
    """
    if n < 3:
        raise ParameterError(f"circulant requires n >= 3, got {n}")
    if not offsets:
        raise ParameterError("circulant requires at least one offset")
    if any(o < 1 or o >= n for o in offsets):
        raise ParameterError(
            f"offsets must lie in [1, n-1], got {offsets} for n={n}"
        )
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for node in range(n):
        for offset in offsets:
            graph.add_edge(node, (node + offset) % n)
    return graph


def de_bruijn_like(symbols: int, length: int) -> nx.Graph:
    """Return the undirected de Bruijn graph ``B(symbols, length)``.

    Nodes are length-``length`` words over ``symbols`` letters; word
    ``w`` connects to every word obtained by shifting and appending a
    letter.  Degree <= ``2 * symbols``; diameter ``length`` — the
    classic constant-degree, logarithmic-diameter topology.
    """
    if symbols < 2:
        raise ParameterError(f"de_bruijn_like requires symbols >= 2, got {symbols}")
    if length < 1:
        raise ParameterError(f"de_bruijn_like requires length >= 1, got {length}")
    graph = nx.Graph()
    count = symbols**length
    for word in range(count):
        shifted = (word * symbols) % count
        for letter in range(symbols):
            other = shifted + letter
            if other != word:
                graph.add_edge(word, other)
    return graph


@dataclass(frozen=True)
class GraphFamily:
    """A named, parameterised family used by the benchmark sweeps.

    Attributes
    ----------
    name:
        Human-readable family name used in benchmark tables.
    build:
        Callable mapping a size parameter to a graph.
    """

    name: str
    build: Callable[[int], nx.Graph]


def standard_families(seed: int = 7) -> list[GraphFamily]:
    """Return the families the benchmark harness sweeps by default.

    The size parameter has a family-specific meaning (nodes for cycles,
    degree for regular graphs, side size for bipartite graphs); each
    family documents it in its name.  The builders resolve through the
    central registry in :mod:`repro.graphs.families` — this function
    only fixes the default sweep subset and binds the seed.
    """
    from repro.graphs.families import build_family

    labelled = [
        ("cycle[n]", "cycle"),
        ("complete[n]", "complete"),
        ("complete_bipartite[n,n]", "complete_bipartite"),
        ("random_regular[d, n=4d]", "random_regular"),
        ("torus[n,n]", "torus"),
        ("blow_up_cycle[6, g]", "blow_up_cycle"),
    ]
    return [
        GraphFamily(label, lambda n, name=name: build_family(name, n, seed))
        for label, name in labelled
    ]
