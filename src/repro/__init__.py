"""repro — Distributed edge coloring, quasi-polylogarithmic in Δ.

A production-quality reproduction of

    Alkida Balliu, Fabian Kuhn, Dennis Olivetti.
    *Distributed Edge Coloring in Time Quasi-Polylogarithmic in Delta.*
    PODC 2020 (arXiv:2002.10780).

The library implements the paper's deterministic ``(deg(e)+1)``-list
edge coloring algorithm for the LOCAL model, every substrate it relies
on (synchronous round simulator, Linial-style initial coloring,
Cole-Vishkin chain coloring, the Section 4.1 defective edge coloring),
and the baselines it is compared against — all on a shared, validated
substrate with exact round accounting.

The canonical entry point is :mod:`repro.api` — declarative specs in,
reproducible fingerprinted results out::

    from repro.api import (
        InstanceSpec, RunSpec, algorithm_names, run, run_many,
    )

    spec = RunSpec(InstanceSpec(family="random_regular", size=8, seed=1))
    result = run(spec)                    # validated RunResult
    print(result.rounds, "LOCAL rounds")
    print(result.colors_used(), "<=", result.palette_size, "colors")
    print(result.fingerprint)            # ties the result to its spec

    # every registered algorithm on the same instance, 4 processes
    results = run_many(
        [spec.with_algorithm(name) for name in algorithm_names()],
        parallel=4,
    )

Direct solver calls remain available for graphs built by hand::

    import networkx as nx
    from repro import solve_edge_coloring

    graph = nx.random_regular_graph(8, 40, seed=1)
    result = solve_edge_coloring(graph, seed=2)

See ``examples/`` for list coloring, algorithm races and the LOCAL
simulator, and ``benchmarks/`` for the experiment suite (DESIGN.md maps
each experiment to the paper's figures and lemmas).
"""

from repro.coloring.lists import (
    ListAssignment,
    deg_plus_one_lists,
    lists_from_mapping,
    uniform_lists,
)
from repro.coloring.palette import Palette, split_palette
from repro.coloring.verify import (
    check_defective_coloring,
    check_list_edge_coloring,
    check_palette_bound,
    check_proper_edge_coloring,
    measure_defects,
)
from repro.core.ledger import RoundLedger
from repro.core.params import (
    ParameterPolicy,
    fixed_policy,
    kuhn20_style_policy,
    paper_policy,
    scaled_policy,
)
from repro.core.solver import (
    SolveResult,
    compute_initial_edge_coloring,
    solve_edge_coloring,
    solve_list_edge_coloring,
)
from repro.primitives.defective import defective_edge_coloring
from repro.results import RunResult
from repro.api import (
    InstanceSpec,
    RunSpec,
    algorithm_names,
    algorithm_registry,
    run,
    run_algorithm,
    run_many,
)

__version__ = "1.1.0"

__all__ = [
    "ListAssignment",
    "deg_plus_one_lists",
    "lists_from_mapping",
    "uniform_lists",
    "Palette",
    "split_palette",
    "check_defective_coloring",
    "check_list_edge_coloring",
    "check_palette_bound",
    "check_proper_edge_coloring",
    "measure_defects",
    "RoundLedger",
    "ParameterPolicy",
    "fixed_policy",
    "kuhn20_style_policy",
    "paper_policy",
    "scaled_policy",
    "SolveResult",
    "compute_initial_edge_coloring",
    "solve_edge_coloring",
    "solve_list_edge_coloring",
    "defective_edge_coloring",
    "RunResult",
    "InstanceSpec",
    "RunSpec",
    "algorithm_names",
    "algorithm_registry",
    "run",
    "run_algorithm",
    "run_many",
    "__version__",
]
