"""The unified algorithm registry: paper solver + every baseline.

One table, one calling convention, one result type.  Entries wrap

* the paper's recursive solver (``bko20``) — accepts any parameter
  policy, by name (:func:`repro.core.params.named_policies`) or as a
  :class:`~repro.core.params.ParameterPolicy` object;
* every baseline registered in :mod:`repro.baselines.registry`.

All runners return :class:`repro.results.RunResult` (the baselines'
``BaselineResult`` and the solver's ``SolveResult`` are subclasses),
so callers — the batch executor, the race sweep, the CLI — never
branch on algorithm kind again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

import networkx as nx

from repro.baselines.registry import all_baselines
from repro.core.params import ParameterPolicy, resolve_policy
from repro.core.solver import solve_edge_coloring
from repro.errors import ParameterError
from repro.results import RunResult

#: Registry key and table label of the paper's algorithm.
PAPER_ALGORITHM = "bko20"
PAPER_LABEL = "BKO20 (this paper)"


@runtime_checkable
class Algorithm(Protocol):
    """What the rest of the system expects an algorithm entry to be."""

    name: str
    kind: str
    label: str
    description: str

    def run(
        self,
        graph: nx.Graph,
        *,
        seed: int | None = None,
        policy: "ParameterPolicy | str | None" = None,
        **params: object,
    ) -> RunResult: ...


@dataclass(frozen=True)
class AlgorithmInfo:
    """One registry entry.

    Attributes
    ----------
    name:
        Registry key (also the :class:`repro.api.RunSpec` field).
    kind:
        ``"paper"`` or ``"baseline"``.
    label:
        Column label in race tables.
    description:
        One line on what the algorithm is / its round complexity.
    """

    name: str
    kind: str
    label: str
    description: str
    runner: Callable[..., RunResult] = field(repr=False)

    def run(
        self,
        graph: nx.Graph,
        *,
        seed: int | None = None,
        policy: "ParameterPolicy | str | None" = None,
        **params: object,
    ) -> RunResult:
        """Run on ``graph`` and return a unified result."""
        return self.runner(graph, seed=seed, policy=policy, **params)


def _paper_runner(
    graph: nx.Graph,
    *,
    seed: int | None = None,
    policy: "ParameterPolicy | str | None" = None,
    **params: object,
) -> RunResult:
    return solve_edge_coloring(
        graph, policy=resolve_policy(policy), seed=seed, **params
    )


def _wrap_baseline(name: str, func: Callable[..., RunResult]):
    def runner(
        graph: nx.Graph,
        *,
        seed: int | None = None,
        policy: "ParameterPolicy | str | None" = None,
        **params: object,
    ) -> RunResult:
        if policy is not None:
            raise ParameterError(
                f"baseline {name!r} takes no parameter policy "
                "(policies configure the paper solver only)"
            )
        return func(graph, seed=seed, **params)

    return runner


def _first_doc_line(func: Callable[..., object]) -> str:
    doc = (func.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


def algorithm_registry() -> dict[str, AlgorithmInfo]:
    """Return the unified registry (name -> :class:`AlgorithmInfo`).

    The paper solver always comes first; baselines follow sorted by
    name.  Rebuilt on each call (it is cheap) so late baseline
    registrations are picked up.
    """
    registry: dict[str, AlgorithmInfo] = {
        PAPER_ALGORITHM: AlgorithmInfo(
            name=PAPER_ALGORITHM,
            kind="paper",
            label=PAPER_LABEL,
            description=(
                "Balliu-Kuhn-Olivetti PODC'20: (deg(e)+1)-list edge coloring "
                "in quasi-polylog-in-Δ̄ rounds (+ O(log* n))"
            ),
            runner=_paper_runner,
        )
    }
    for name, func in sorted(all_baselines().items()):
        registry[name] = AlgorithmInfo(
            name=name,
            kind="baseline",
            label=name,
            description=_first_doc_line(func),
            runner=_wrap_baseline(name, func),
        )
    return registry


def algorithm_names() -> list[str]:
    """Every registered algorithm name, paper solver first."""
    return list(algorithm_registry())


def get_algorithm(name: str) -> AlgorithmInfo:
    """Look up one algorithm by name."""
    registry = algorithm_registry()
    try:
        return registry[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; have {list(registry)}"
        ) from None


def run_algorithm(
    name: str,
    graph: nx.Graph,
    *,
    seed: int | None = None,
    policy: "ParameterPolicy | str | None" = None,
    **params: object,
) -> RunResult:
    """Run a registered algorithm by name on an in-memory graph.

    The imperative sibling of the spec-driven :func:`repro.api.run` —
    for callers that already hold a graph object.
    """
    return get_algorithm(name).run(graph, seed=seed, policy=policy, **params)
