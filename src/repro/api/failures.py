"""Failure policy: capture vs. raise, retries, backoff, and timeouts.

The batch executor (:mod:`repro.api.runner`) accepts either the
shorthand ``on_error="raise"|"capture"`` or a full
:class:`FailurePolicy` on every entry point.  The policy decides what
one spec's failure does to the batch:

* ``on_error="raise"`` (the default) — the exception propagates,
  annotated with the failing spec's batch index and fingerprint (see
  ``run_many``), aborting the batch: the pre-failure-domain behaviour.
* ``on_error="capture"`` — every attempt is exhausted, then the spec's
  slot in the result list holds a deterministic
  :class:`~repro.results.FailedResult` instead of a result; the rest
  of the batch is unaffected.  Serial and parallel execution produce
  byte-identical failure records because capture happens at the
  execution site (inside :func:`repro.api.runner.run`), never at the
  pool boundary.

Retries are bounded (``retries`` extra attempts after the first) with
**seeded deterministic backoff**: the delay before attempt ``k+1`` is
``backoff_s * 2**(k-1)`` scaled by a jitter factor derived from
SHA-256 over ``(backoff_seed, spec fingerprint, attempt)`` — the same
spec retries on the same schedule in every process, every session.

``timeout_s`` bounds one *attempt*.  Enforcement uses ``SIGALRM``
(:func:`execution_deadline`), which works wherever specs actually
execute — the serial path, process-pool workers, and cluster worker
processes all run specs on their main thread.  Off the main thread (or
on platforms without ``SIGALRM``) the deadline degrades to a no-op
rather than failing: a documented best-effort seam, not a hard
guarantee.
"""

from __future__ import annotations

import hashlib
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.errors import ParameterError, SpecTimeoutError

#: Sleep seam for backoff delays — module-level so tests (and the
#: chaos harness) can observe or neutralise real sleeping.
_sleep = time.sleep

#: Keys a serialized FailurePolicy may carry.
_POLICY_KEYS = frozenset(
    {"on_error", "retries", "backoff_s", "max_backoff_s", "timeout_s",
     "backoff_seed"}
)


@dataclass(frozen=True)
class FailurePolicy:
    """How the executor treats a spec whose execution raises.

    Attributes
    ----------
    on_error:
        ``"raise"`` propagates the last attempt's exception (annotated
        with the spec's batch position); ``"capture"`` records a
        :class:`~repro.results.FailedResult` in the spec's slot.
    retries:
        Extra attempts after the first (``0`` = one attempt total).
    backoff_s:
        Base delay before the first retry; doubles per retry.  ``0``
        retries immediately.
    max_backoff_s:
        Hard cap on any single backoff delay.
    timeout_s:
        Per-attempt wall-clock budget (``None`` = unbounded).  See
        :func:`execution_deadline` for enforcement scope.
    backoff_seed:
        Seed mixed into the deterministic backoff jitter.
    """

    on_error: str = "raise"
    retries: int = 0
    backoff_s: float = 0.0
    max_backoff_s: float = 30.0
    timeout_s: float | None = None
    backoff_seed: int = 0

    def __post_init__(self) -> None:
        if self.on_error not in ("raise", "capture"):
            raise ParameterError(
                f"on_error must be 'raise' or 'capture', got "
                f"{self.on_error!r}"
            )
        if self.retries < 0:
            raise ParameterError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0:
            raise ParameterError(
                f"backoff_s must be >= 0, got {self.backoff_s}"
            )
        if self.max_backoff_s < 0:
            raise ParameterError(
                f"max_backoff_s must be >= 0, got {self.max_backoff_s}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ParameterError(
                f"timeout_s must be > 0 (or None), got {self.timeout_s}"
            )

    @property
    def captures(self) -> bool:
        return self.on_error == "capture"

    @property
    def attempts(self) -> int:
        """Total attempts this policy allows per spec."""
        return self.retries + 1

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (crosses the process-pool boundary)."""
        return {
            "on_error": self.on_error,
            "retries": self.retries,
            "backoff_s": self.backoff_s,
            "max_backoff_s": self.max_backoff_s,
            "timeout_s": self.timeout_s,
            "backoff_seed": self.backoff_seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FailurePolicy":
        """Inverse of :meth:`to_dict` (unknown fields ignored-free)."""
        from repro.errors import check_known_keys

        check_known_keys(payload, _POLICY_KEYS, "FailurePolicy")
        return cls(
            on_error=payload.get("on_error", "raise"),
            retries=int(payload.get("retries", 0)),
            backoff_s=float(payload.get("backoff_s", 0.0)),
            max_backoff_s=float(payload.get("max_backoff_s", 30.0)),
            timeout_s=payload.get("timeout_s"),
            backoff_seed=int(payload.get("backoff_seed", 0)),
        )


def resolve_policy(on_error: "str | FailurePolicy") -> FailurePolicy:
    """Normalise the executor's ``on_error`` argument to a policy.

    Accepts the shorthand strings ``"raise"`` / ``"capture"`` (default
    retry/timeout settings) or a full :class:`FailurePolicy`.
    """
    if isinstance(on_error, FailurePolicy):
        return on_error
    return FailurePolicy(on_error=on_error)


def backoff_delay(
    policy: FailurePolicy, fingerprint: str, attempt: int
) -> float:
    """The deterministic delay before retrying ``attempt + 1``.

    Exponential base (``backoff_s * 2**(attempt-1)``) scaled by a
    jitter factor in ``[1, 2)`` derived from SHA-256 over
    ``(backoff_seed, fingerprint, attempt)`` — pure, so every process
    that retries the same spec sleeps the same schedule.
    """
    if policy.backoff_s <= 0:
        return 0.0
    digest = hashlib.sha256(
        f"{policy.backoff_seed}:{fingerprint}:{attempt}".encode("utf-8")
    ).hexdigest()
    jitter = 1.0 + int(digest[:8], 16) / 16**8  # [1, 2)
    base = policy.backoff_s * (2 ** (attempt - 1))
    return min(base * jitter, policy.max_backoff_s)


@contextmanager
def execution_deadline(timeout_s: float | None) -> Iterator[None]:
    """Bound one execution attempt to ``timeout_s`` wall-clock seconds.

    Implemented with ``SIGALRM`` + ``setitimer``, so a runaway or hung
    attempt (tight loop, sleeping solver) is interrupted with
    :class:`~repro.errors.SpecTimeoutError` mid-flight.  Only
    enforceable on the main thread of a process with ``SIGALRM``
    (which covers the serial executor, process-pool workers, and
    cluster workers); anywhere else the context is a documented no-op.
    """
    if (
        not timeout_s
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum: int, frame: Any) -> None:
        raise SpecTimeoutError(
            f"spec execution attempt exceeded timeout_s={timeout_s}"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
