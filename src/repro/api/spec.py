"""Declarative, serializable run specifications.

A spec is the unit of experiment description: a plain, frozen
dataclass that round-trips through dicts and JSON, builds its own
instance, and has a stable SHA-256 **fingerprint**.  Fingerprints key
the executor's result cache and stamp every :class:`repro.results.RunResult`,
so a result can always be traced back to the exact spec that produced
it — the "specs in, reproducible fingerprinted runs out" contract.

Two layers:

* :class:`InstanceSpec` — *what graph*: either a registered family
  (``family`` + ``size`` + ``seed``) or an edge-list file (``path``).
  Path-based specs fingerprint the file *content*, not just the path,
  so a changed file changes the fingerprint.
* :class:`RunSpec` — *what run*: an instance plus an algorithm name
  from the unified registry, an optional named parameter policy, an
  optional run seed (defaults to the instance seed), an optional
  execution-model scenario (:class:`repro.scenarios.ScenarioSpec` —
  the identity scenario fingerprints away entirely, so synchronous
  runs stay bit-for-bit compatible with scenario-less specs), and
  extra keyword parameters.  Everything is a name or a primitive, so
  specs cross process boundaries trivially (the batch executor ships
  them to pool workers as dicts).

Deserialization is strict: ``from_dict`` raises
:class:`~repro.errors.SpecFormatError` on fields it does not know,
instead of silently dropping them and round-tripping a *different*
experiment (the failure mode that would otherwise let cached JSON
written by a newer library version — say, one with more ``scenario``
machinery — masquerade as an older, simpler spec).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping

import networkx as nx

from repro.core.params import DEFAULT_POLICY
from repro.errors import InvalidInstanceError, check_known_keys
from repro.graphs.families import build_family, family_names
from repro.graphs.io import read_edge_list
from repro.results import fingerprint_of
from repro.scenarios.spec import ScenarioSpec

#: Keys a serialized InstanceSpec / RunSpec may carry.
_INSTANCE_KEYS = frozenset({"family", "size", "seed", "path"})
_RUN_KEYS = frozenset(
    {"instance", "algorithm", "policy", "run_seed", "params", "scenario"}
)

#: Content-hash memo: (path, size, mtime_ns) -> sha256 hex.  Sweeps
#: fingerprint the same edge-list file once per spec; without the memo
#: a 1000-spec batch would read and hash the file ~1000 times.
_CONTENT_HASHES: dict[tuple[str, int, int], str] = {}


def _file_content_sha256(path: str) -> str:
    stat = Path(path).stat()
    key = (str(Path(path).resolve()), stat.st_size, stat.st_mtime_ns)
    if key not in _CONTENT_HASHES:
        _CONTENT_HASHES[key] = hashlib.sha256(
            Path(path).read_bytes()
        ).hexdigest()
    return _CONTENT_HASHES[key]


@dataclass(frozen=True)
class InstanceSpec:
    """A serializable description of one graph instance.

    Exactly one of ``family`` / ``path`` must be set.

    Attributes
    ----------
    family:
        Name of a registered family (:mod:`repro.graphs.families`).
    size:
        The family's size parameter (ignored for path instances).
    seed:
        Generator seed; also the default run seed of a
        :class:`RunSpec` wrapping this instance.
    path:
        Edge-list file (one ``u v`` per line) instead of a family.
    """

    family: str | None = None
    size: int = 8
    seed: int = 1
    path: str | None = None

    def __post_init__(self) -> None:
        if (self.family is None) == (self.path is None):
            raise InvalidInstanceError(
                "InstanceSpec needs exactly one of family= or path=, got "
                f"family={self.family!r}, path={self.path!r}"
            )
        if self.family is not None and self.family not in family_names():
            raise InvalidInstanceError(
                f"unknown family {self.family!r}; have {family_names()}"
            )

    def label(self) -> str:
        """Short human-readable identifier (table row label)."""
        if self.path is not None:
            return f"file:{Path(self.path).name}"
        return f"{self.family}[{self.size}]"

    def build(self) -> nx.Graph:
        """Materialise the instance."""
        if self.path is not None:
            return read_edge_list(self.path)
        assert self.family is not None
        return build_family(self.family, self.size, self.seed)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (``None`` fields dropped)."""
        payload: dict[str, Any] = {"size": self.size, "seed": self.seed}
        if self.family is not None:
            payload["family"] = self.family
        if self.path is not None:
            payload["path"] = self.path
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "InstanceSpec":
        """Inverse of :meth:`to_dict`; unknown fields raise."""
        check_known_keys(payload, _INSTANCE_KEYS, "InstanceSpec")
        return cls(
            family=payload.get("family"),
            size=int(payload.get("size", 8)),
            seed=int(payload.get("seed", 1)),
            path=payload.get("path"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "InstanceSpec":
        return cls.from_dict(json.loads(text))

    def _fingerprint_payload(self) -> dict[str, Any]:
        payload = self.to_dict()
        if self.path is not None:
            # ``size`` is ignored for path instances, so it must not
            # split fingerprints of byte-identical runs.
            payload.pop("size", None)
            # Hash the instance *content* so a changed file cannot
            # masquerade as a cached run of the old one.
            payload["content_sha256"] = _file_content_sha256(self.path)
        return payload

    def fingerprint(self) -> str:
        """Stable SHA-256 over the canonical spec (and file content)."""
        return fingerprint_of(self._fingerprint_payload())


@dataclass(frozen=True)
class RunSpec:
    """A serializable description of one algorithm run.

    Attributes
    ----------
    instance:
        The graph to run on.
    algorithm:
        Name from the unified registry (:mod:`repro.api.registry`);
        default is the paper solver.
    policy:
        Named parameter policy (:func:`repro.core.params.named_policies`)
        for the paper solver; must be ``None`` for baselines.
    run_seed:
        Seed handed to the algorithm (ID assignment / randomness);
        defaults to ``instance.seed``.
    params:
        Extra keyword arguments forwarded to the algorithm.  Accepts
        any mapping; stored as a sorted tuple of pairs so specs stay
        hashable (``dict(spec.params)`` recovers the mapping).
    scenario:
        Optional execution model
        (:class:`repro.scenarios.ScenarioSpec`; plain mappings are
        accepted and parsed).  ``None`` and the identity
        (``synchronous``) scenario are the same experiment: both run
        the untouched engine and share one fingerprint.  Non-identity
        scenarios route through :mod:`repro.scenarios.executor` and
        fingerprint their model/seed/normalised parameters.
    """

    instance: InstanceSpec
    algorithm: str = "bko20"
    policy: str | None = None
    run_seed: int | None = None
    params: Mapping[str, Any] | tuple[tuple[str, Any], ...] = ()
    scenario: ScenarioSpec | None = None

    def __post_init__(self) -> None:
        # Normalise params to a sorted tuple of pairs so specs are
        # hashable (usable in sets/dict keys) and equal regardless of
        # mapping insertion order.  ``dict(spec.params)`` still works.
        object.__setattr__(
            self, "params", tuple(sorted(dict(self.params).items()))
        )
        if self.scenario is not None and not isinstance(
            self.scenario, ScenarioSpec
        ):
            object.__setattr__(
                self, "scenario", ScenarioSpec.from_dict(self.scenario)
            )

    def effective_seed(self) -> int:
        """The seed the algorithm actually receives."""
        return self.instance.seed if self.run_seed is None else self.run_seed

    def label(self) -> str:
        """Short human-readable identifier (table row label)."""
        suffix = f" policy={self.policy}" if self.policy else ""
        if self.scenario is not None and not self.scenario.is_identity():
            suffix += f" @ {self.scenario.label()}"
        return f"{self.algorithm} on {self.instance.label()}{suffix}"

    def with_algorithm(self, algorithm: str) -> "RunSpec":
        """A copy of this spec targeting a different algorithm."""
        return replace(self, algorithm=algorithm)

    def with_scenario(self, scenario: ScenarioSpec | None) -> "RunSpec":
        """A copy of this spec under a different execution model."""
        return replace(self, scenario=scenario)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (``None`` / empty fields dropped)."""
        payload: dict[str, Any] = {
            "instance": self.instance.to_dict(),
            "algorithm": self.algorithm,
        }
        if self.policy is not None:
            payload["policy"] = self.policy
        if self.run_seed is not None:
            payload["run_seed"] = self.run_seed
        if self.params:
            payload["params"] = dict(self.params)
        if self.scenario is not None:
            payload["scenario"] = self.scenario.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_dict`; unknown fields raise."""
        check_known_keys(payload, _RUN_KEYS, "RunSpec")
        scenario = payload.get("scenario")
        return cls(
            instance=InstanceSpec.from_dict(payload["instance"]),
            algorithm=payload.get("algorithm", "bko20"),
            policy=payload.get("policy"),
            run_seed=payload.get("run_seed"),
            params=dict(payload.get("params", {})),
            scenario=(
                None if scenario is None else ScenarioSpec.from_dict(scenario)
            ),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))

    def _normalized_policy(self) -> str | None:
        """The policy name that actually executes.

        For the paper solver ``policy=None`` falls back to
        :data:`repro.core.params.DEFAULT_POLICY`, so both spellings
        must share one identity.  Baselines take no policy — their
        ``None`` stays ``None`` (an *invalid* baseline spec carrying a
        policy keeps a distinct fingerprint and still raises)."""
        if self.policy is not None:
            return self.policy
        from repro.api.registry import get_algorithm

        try:
            kind = get_algorithm(self.algorithm).kind
        except KeyError:
            return None
        return DEFAULT_POLICY if kind == "paper" else None

    def fingerprint(self) -> str:
        """Stable SHA-256 over the run description.

        Defaults are normalised to what actually executes, so two
        spellings of the same run share one fingerprint: the seed is
        the *effective* seed (``run_seed=None`` equals an explicit
        ``run_seed`` matching the instance seed), for the paper solver
        ``policy=None`` equals the solver's default policy name, and a
        missing / identity scenario contributes nothing (synchronous
        scenario runs are bit-for-bit plain runs, so they must share
        the plain runs' fingerprints — and cache entries — exactly;
        this also keeps every pre-scenario fingerprint stable).
        Includes the instance fingerprint, hence file content for
        path-based instances.
        """
        payload: dict[str, Any] = {
            "instance": self.instance._fingerprint_payload(),
            "algorithm": self.algorithm,
            "policy": self._normalized_policy(),
            "run_seed": self.effective_seed(),
            "params": dict(self.params),
        }
        if self.scenario is not None and not self.scenario.is_identity():
            payload["scenario"] = self.scenario._fingerprint_payload()
        return fingerprint_of(payload)
