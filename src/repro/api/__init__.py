"""repro.api — the one front door for running experiments.

Declarative specs in, reproducible fingerprinted results out::

    from repro.api import InstanceSpec, RunSpec, run, run_many

    spec = RunSpec(InstanceSpec(family="complete_bipartite", size=8, seed=1))
    result = run(spec)                      # validated RunResult
    print(result.rounds, result.fingerprint)

    specs = [spec.with_algorithm(name) for name in algorithm_names()]
    results = run_many(specs, parallel=4)   # deterministic fan-out

The pieces:

* :class:`InstanceSpec` / :class:`RunSpec` — serializable experiment
  descriptions (:mod:`repro.api.spec`), backed by the graph-family
  registry (:mod:`repro.graphs.families`) and the named policies
  (:func:`repro.core.params.named_policies`);
* the unified algorithm registry (:mod:`repro.api.registry`) — the
  paper solver and every baseline behind one interface, all returning
  :class:`repro.results.RunResult`;
* the batch executor (:mod:`repro.api.runner`) — ``run`` / ``run_many``
  / ``run_many_iter`` with validation, fingerprint-keyed caching (in
  process, plus an optional on-disk ``cache_dir=`` spill that lets
  sweeps resume across sessions and an LRU eviction policy via
  :func:`prune_cache` / ``cache_max_entries=``), process-pool fan-out,
  and streaming ``(index, result)`` delivery as runs finish;
* execution models (:mod:`repro.scenarios`) — a :class:`ScenarioSpec`
  on a run spec executes the same experiment under asynchrony, crash
  faults, or message loss, fingerprinted and cached like any other
  run;
* failure domains (:mod:`repro.api.failures`) — every entry point takes
  ``on_error="raise"|"capture"`` or a full :class:`FailurePolicy`
  (bounded retries, seeded deterministic backoff, per-attempt
  timeouts); captured failures surface as deterministic
  :class:`~repro.results.FailedResult` slots instead of aborting the
  batch;
* the cluster layer (:mod:`repro.cluster`) — ``run_sharded`` splits a
  spec batch into deterministic shards drained by independent worker
  processes/machines over a shared directory, and merges the results
  byte-identical to ``run_many``.

The CLI (``python -m repro``) and the sweep harness
(:mod:`repro.analysis.harness`) are built on these entry points.
"""

from repro.api.registry import (
    PAPER_ALGORITHM,
    PAPER_LABEL,
    Algorithm,
    AlgorithmInfo,
    algorithm_names,
    algorithm_registry,
    get_algorithm,
    run_algorithm,
)
from repro.api.failures import (
    FailurePolicy,
    backoff_delay,
    execution_deadline,
    resolve_policy,
)
from repro.api.runner import (
    clear_result_cache,
    prune_cache,
    result_cache_size,
    run,
    run_many,
    run_many_iter,
    specs_for_race,
    specs_for_scenarios,
)
from repro.api.spec import InstanceSpec, RunSpec
from repro.results import (
    FailedResult,
    RunResult,
    canonical_json,
    fingerprint_of,
)
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "PAPER_ALGORITHM",
    "PAPER_LABEL",
    "Algorithm",
    "AlgorithmInfo",
    "algorithm_names",
    "algorithm_registry",
    "get_algorithm",
    "run_algorithm",
    "FailurePolicy",
    "backoff_delay",
    "execution_deadline",
    "resolve_policy",
    "clear_result_cache",
    "prune_cache",
    "result_cache_size",
    "run",
    "run_many",
    "run_many_iter",
    "specs_for_race",
    "specs_for_scenarios",
    "InstanceSpec",
    "RunSpec",
    "FailedResult",
    "RunResult",
    "ScenarioSpec",
    "canonical_json",
    "fingerprint_of",
]
