"""Shared on-disk result-store mechanics (cache spill *and* cluster files).

Extracted from :mod:`repro.api.runner` so every layer that persists
fingerprinted JSON — the executor's ``cache_dir=`` spill, and the
:mod:`repro.cluster` shard manifests / leases / result files built on
top of it — goes through one set of primitives with one concurrency
story:

* :func:`atomic_write_json` — write-to-temp + ``os.replace``.  The
  temporary file gets a **unique** name (``tempfile.mkstemp`` in the
  destination directory), so any number of processes may store the
  same path concurrently: each rename is atomic, the last writer wins,
  and a reader can never observe a half-written file.  (A fixed
  ``.tmp`` name would let two writers interleave truncate/rename and
  publish a torn entry.)
* :func:`disk_store` / :func:`disk_load` — the sealed cache-entry
  format: one JSON file per spec fingerprint, embedding the *result
  fingerprint* so corrupt or hand-edited entries are discarded as
  misses instead of masquerading as cached runs.
* :func:`prune_cache` — LRU-by-mtime eviction, tolerant of entries
  that a concurrent process deletes mid-scan (multiple cluster workers
  legitimately share one ``cache_dir`` and may prune simultaneously).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable

from repro.results import RunResult, fingerprint_of
from repro.telemetry.trace import trace

#: On-disk entry format version (bumped on incompatible layout change).
DISK_FORMAT = 1

#: Chaos seam (:mod:`repro.faults`): when set, consulted before every
#: atomic publish as ``hook(path, text)``.  Returning ``True`` means
#: the hook already "published" (e.g. wrote a deliberately torn file
#: straight to the target, bypassing the atomic rename) and the normal
#: path is skipped.  Every reader in the library treats a torn file as
#: absent and re-runs, so injected tears exercise exactly the recovery
#: paths a real mid-write crash would.
_PUBLISH_FAULT: Callable[[Path, str], bool] | None = None


def atomic_write_json(path: str | Path, payload: Any) -> None:
    """Publish ``payload`` at ``path`` atomically (concurrent-writer safe).

    The payload is serialized with sorted keys (non-JSON values fall
    back to ``repr``), written to a uniquely named temporary file in
    the destination directory, and renamed into place.  Concurrent
    writers of the same path each publish a complete file; the last
    rename wins.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, sort_keys=True, default=repr)
    fault = _PUBLISH_FAULT
    if fault is not None and fault(target, text):
        return
    descriptor, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def read_json(path: str | Path) -> Any | None:
    """Load a JSON file; any unreadable / undecodable file is ``None``."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None


def disk_path(cache_dir: str | Path, fingerprint: str) -> Path:
    """The cache entry path of one spec fingerprint."""
    return Path(cache_dir) / f"{fingerprint}.json"


def disk_store(
    cache_dir: str | Path, fingerprint: str, result: RunResult, validated: bool
) -> None:
    """Write one sealed JSON entry per fingerprint (atomic, last-writer-wins).

    The embedded ``result_fingerprint`` seals the payload; loads that
    do not reproduce it are discarded.
    """
    payload = {
        "format": DISK_FORMAT,
        "fingerprint": fingerprint,
        "validated": bool(validated),
        "result": result.to_dict(),
        "result_fingerprint": result.result_fingerprint(),
    }
    with trace("cache.publish", fingerprint=fingerprint[:12]):
        atomic_write_json(disk_path(cache_dir, fingerprint), payload)


def disk_load(
    cache_dir: str | Path, fingerprint: str
) -> tuple[RunResult, bool] | None:
    """Load a sealed entry; returns ``(result, validated)`` or ``None``.

    Any malformed, mismatched, or unreadable entry is a miss — the
    caller simply re-runs the spec and the entry is rewritten.
    """
    with trace("cache.load", fingerprint=fingerprint[:12]) as span:
        payload = read_json(disk_path(cache_dir, fingerprint))
        if (
            not isinstance(payload, dict)
            or payload.get("format") != DISK_FORMAT
            or payload.get("fingerprint") != fingerprint
        ):
            span.annotate(hit=False)
            return None
        try:
            result = RunResult.from_dict(payload["result"])
        except Exception:
            span.annotate(hit=False)
            return None
        if fingerprint_of(result.to_dict()) != payload.get("result_fingerprint"):
            span.annotate(hit=False)
            return None
        span.annotate(hit=True)
        return result, bool(payload.get("validated"))


def touch_entry(cache_dir: str | Path, fingerprint: str) -> None:
    """Refresh an entry's mtime (LRU recency) — best effort."""
    try:
        os.utime(disk_path(cache_dir, fingerprint))
    except OSError:
        pass


def prune_cache(cache_dir: str | Path, max_entries: int) -> int:
    """Evict the least-recently-used on-disk entries beyond a budget.

    Recency is file mtime — entries are touched on every cache hit and
    rewritten on every store, so mtime order is use order.  Keeps the
    ``max_entries`` most recent entries, deletes the rest, and returns
    how many files were removed.  ``max_entries=0`` empties the store;
    a missing directory is a no-op.  Safe against concurrent pruners
    and writers: an entry that vanishes between the scan and its stat
    (or unlink) was deleted by another process and is simply skipped.
    Exposed on the CLI as ``python -m repro cache-prune`` and applied
    automatically when the executor entry points are given
    ``cache_max_entries=``.
    """
    if max_entries < 0:
        raise ValueError(f"max_entries must be >= 0, got {max_entries}")
    directory = Path(cache_dir)
    if not directory.is_dir():
        return 0
    found = list(directory.glob("*.json"))
    if len(found) <= max_entries:
        # Under budget: skip the per-entry stat and the sort, so
        # per-run pruning (``run(..., cache_max_entries=)`` in a loop)
        # costs one directory scan, not O(store) stats each call.
        return 0
    entries: list[tuple[int, str, Path]] = []
    for path in found:
        try:
            entries.append((path.stat().st_mtime_ns, path.name, path))
        except FileNotFoundError:
            # Evicted by a concurrent pruner between glob and stat —
            # already gone, nothing for us to remove.
            continue
    if len(entries) <= max_entries:
        return 0
    entries.sort()
    excess = entries[: len(entries) - max_entries] if max_entries else entries
    removed = 0
    for _, _, path in excess:
        try:
            path.unlink()
            removed += 1
        except OSError:
            # FileNotFoundError included: a concurrent process beat us
            # to this entry; it does not count toward *our* removals.
            pass
    return removed
