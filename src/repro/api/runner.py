"""The batch executor: ``run``, ``run_many`` and ``run_many_iter``.

The one front door for executing experiments.  Guarantees:

* **Determinism** — a spec carries every input (family, size, seeds,
  algorithm, policy name), so the same spec produces the same
  :class:`~repro.results.RunResult` (byte-identical result
  fingerprint) whether it runs serially, in a process pool, or in a
  different session.
* **Validation** — every coloring is re-checked independently
  (properness + palette bound) before a result is returned; the whole
  point of the harness is that results are verified.
* **Caching** — results are memoised under the spec fingerprint;
  repeated specs (within one ``run_many`` call or across calls) solve
  once.  The in-process cache is explicit
  (:func:`clear_result_cache`); it stores private copies and hands out
  copies, so mutating a returned result never corrupts later lookups,
  and a hit produced under ``validate=False`` is validated before it
  may satisfy a ``validate=True`` request.  Passing ``cache_dir=``
  adds a second, **on-disk** layer — one JSON file per spec
  fingerprint — so sweeps resume across sessions: a fresh process
  pointed at the same directory replays finished specs from disk
  instead of re-solving them.  Disk entries embed the result
  fingerprint and are ignored (treated as misses) if they fail to
  round-trip, so a corrupt or hand-edited file can never masquerade as
  a cached run.  Large stores stay bounded: entries are touched on
  every hit, and :func:`prune_cache` (or ``cache_max_entries=`` on the
  entry points, or ``python -m repro cache-prune``) evicts
  least-recently-used entries beyond a budget.
* **Fan-out** — ``parallel > 1`` distributes distinct specs over a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Specs cross the
  process boundary as plain dicts and results come back pickled; the
  per-spec seeding makes worker-side runs bit-identical to serial
  ones.
* **Streaming** — :func:`run_many_iter` yields ``(index, result)``
  pairs as runs finish (cache hits first, then completions), so
  long sweeps can report progress and persist incrementally;
  :func:`run_many` is built on it and returns the familiar
  spec-ordered list, byte-identical to serial execution.
* **Failure domains** — every entry point takes
  ``on_error="raise"|"capture"`` (or a full
  :class:`~repro.api.failures.FailurePolicy` with retries, seeded
  deterministic backoff, and a per-attempt ``timeout_s``).  Under
  ``"raise"`` a failing spec aborts the batch, with the spec's index
  and fingerprint attached to the propagated exception; under
  ``"capture"`` the spec's slot holds a deterministic
  :class:`~repro.results.FailedResult` (exception type/message,
  traceback digest, attempt count) and the rest of the batch proceeds.
  Capture happens at the execution site — inside :func:`run`, never at
  the pool boundary — so serial and parallel batches are byte-identical
  *including* their failure records.  Failures are never written to
  either cache layer (a transient failure must not poison later runs);
  the cluster layer quarantines them in its own dead-letter store.
"""

from __future__ import annotations

import copy
import hashlib
import time
import traceback as traceback_module
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.api.diskcache import (
    disk_load,
    disk_path,
    disk_store,
    prune_cache,
    touch_entry,
)
from repro.api import failures as _failures
from repro.api.failures import (
    FailurePolicy,
    backoff_delay,
    execution_deadline,
    resolve_policy,
)
from repro.api.registry import get_algorithm
from repro.api.spec import InstanceSpec, RunSpec
from repro.coloring.verify import check_palette_bound, check_proper_edge_coloring
from repro.model.scheduler import ENGINES, engine_override
from repro.results import FailedResult, RunResult
from repro.scenarios.spec import ScenarioSpec
from repro.telemetry.events import emit_event
from repro.telemetry.ledger import record_run, resolve_ledger_dir
from repro.telemetry.trace import trace

__all__ = [
    "clear_result_cache",
    "prune_cache",  # canonical home: repro.api.diskcache (re-exported)
    "result_cache_size",
    "run",
    "run_many",
    "run_many_iter",
    "specs_for_race",
    "specs_for_scenarios",
]

#: Chaos seam (:mod:`repro.faults`): when set, called as
#: ``hook(fingerprint, attempt)`` at the start of every execution
#: attempt, *inside* the attempt's deadline and retry scope.  The hook
#: may raise (``poison`` / ``flaky`` faults) or stall (``hang``
#: faults); whatever it does is handled exactly like an organic
#: failure of the spec.  Cache hits never consult the hook.
_FAULT_HOOK: Callable[[str, int], None] | None = None

#: Result cache: spec fingerprint -> (result, was_validated).  The
#: stored result is private to the cache — lookups hand out deep
#: copies, so no caller mutation can poison later hits.  In-process
#: and unbounded; sweeps that would outgrow it should clear between
#: phases (or spill to disk with ``cache_dir=``).
_RESULT_CACHE: dict[str, tuple[RunResult, bool]] = {}

def clear_result_cache() -> int:
    """Drop all in-process cached results; returns how many were dropped.

    On-disk stores are not touched — delete the ``cache_dir`` contents
    to forget those.
    """
    dropped = len(_RESULT_CACHE)
    _RESULT_CACHE.clear()
    return dropped


def result_cache_size() -> int:
    """Number of results currently cached in-process."""
    return len(_RESULT_CACHE)


def _validate(result: RunResult, graph) -> None:
    if "scenario" in result.details:
        # Scenario results are validated against their *survivor*
        # claims (adversarial executions may legitimately crash agents
        # or produce measured conflicts — a full-graph properness check
        # would reject exactly the outcomes the scenario measures).
        from repro.scenarios.executor import (
            is_scenario_result,
            validate_scenario_result,
        )

        if is_scenario_result(result):
            validate_scenario_result(result, graph)
            return
    check_proper_edge_coloring(graph, result.coloring)
    if result.palette_size:
        check_palette_bound(result.coloring, result.palette_size)


def _cache_lookup(fingerprint: str, spec: RunSpec, validate: bool) -> RunResult | None:
    """Return a private copy of a cached result, validating if owed.

    A hit produced by a ``validate=False`` run must not satisfy a
    ``validate=True`` request unchecked — the validation happens now
    (once) and the entry is upgraded.
    """
    entry = _RESULT_CACHE.get(fingerprint)
    if entry is None:
        return None
    result, validated = entry
    if validate and not validated:
        _validate(result, spec.instance.build())
        _RESULT_CACHE[fingerprint] = (result, True)
    return copy.deepcopy(result)


def _cache_store(fingerprint: str, result: RunResult, validated: bool) -> None:
    _RESULT_CACHE[fingerprint] = (copy.deepcopy(result), validated)


# --- on-disk spill -----------------------------------------------------
#
# The store/load/prune mechanics live in :mod:`repro.api.diskcache`
# (shared with the cluster layer); this wrapper adds the executor's
# validation-upgrade and LRU-touch semantics.

_disk_path = disk_path  # backwards-compatible aliases
_disk_store = disk_store


def _disk_lookup(
    cache_dir: str | Path, fingerprint: str, spec: RunSpec, validate: bool
) -> RunResult | None:
    """Load a spilled result, verifying integrity and validating if owed.

    Any malformed, mismatched, or unreadable entry is a miss — the
    spec simply re-runs and the entry is rewritten.
    """
    entry = disk_load(cache_dir, fingerprint)
    if entry is None:
        return None
    result, validated = entry
    if validate and not validated:
        _validate(result, spec.instance.build())
        disk_store(cache_dir, fingerprint, result, True)
    else:
        # Refresh the entry's mtime on every hit: the eviction policy
        # (:func:`prune_cache`) is LRU-by-mtime, so recently *used*
        # entries survive pruning, not just recently written ones.
        touch_entry(cache_dir, fingerprint)
    return result


def _lookup_layers(
    fingerprint: str,
    spec: RunSpec,
    validate: bool,
    cache: bool,
    cache_dir: str | Path | None,
) -> tuple[RunResult | None, str | None]:
    """Consult both cache layers and keep them in sync on a hit.

    A memory hit still owes the disk layer its entry (otherwise a
    later session could not resume from it); a disk hit backfills the
    in-process cache.  Returns ``(result, layer)`` with ``layer`` one
    of ``"memory"`` / ``"disk"`` on a hit (the run ledger records the
    disposition), ``(None, None)`` on a miss.
    """
    if cache:
        hit = _cache_lookup(fingerprint, spec, validate)
        if hit is not None:
            if cache_dir is not None and not _disk_path(
                cache_dir, fingerprint
            ).exists():
                _disk_store(cache_dir, fingerprint, hit, validate)
            return hit, "memory"
    if cache_dir is not None:
        hit = _disk_lookup(cache_dir, fingerprint, spec, validate)
        if hit is not None:
            if cache:
                _cache_store(fingerprint, hit, validate)
            return hit, "disk"
    return None, None


def _execute_once(spec: RunSpec, fingerprint: str, validate: bool) -> RunResult:
    """One execution attempt: build, run, stamp, validate."""
    graph = spec.instance.build()
    scenario = spec.scenario
    if scenario is not None and not scenario.is_identity():
        # The scenario capability table is its own registry — a
        # program added via register_program() need not exist in the
        # api algorithm registry to run under an adversary.
        from repro.scenarios.executor import execute_scenario

        result = execute_scenario(spec, graph)
    else:
        result = get_algorithm(spec.algorithm).run(
            graph,
            seed=spec.effective_seed(),
            policy=spec.policy,
            **dict(spec.params),
        )
    result.fingerprint = fingerprint
    if validate:
        _validate(result, graph)
    return result


def _execute_with_policy(
    spec: RunSpec,
    fingerprint: str,
    validate: bool,
    policy: FailurePolicy,
    observed: dict[str, Any] | None = None,
) -> RunResult:
    """Drive the attempt loop: deadline, retries, backoff, capture.

    Everything a failure domain needs happens here, at the execution
    site: the per-attempt ``SIGALRM`` deadline, the chaos fault hook,
    bounded retries with seeded deterministic backoff, and — under
    ``on_error="capture"`` — the conversion of the last attempt's
    exception into a :class:`~repro.results.FailedResult`.  A spec
    that succeeds (on any attempt) returns its ordinary result,
    unchanged: retried successes are byte-identical to first-try ones.

    ``observed``, when given, receives the out-of-band accounting the
    run ledger records (``attempts``: which attempt succeeded) —
    deliberately not part of the result, which stays byte-identical
    regardless of retries.
    """
    started = time.perf_counter()
    last_exc: Exception | None = None
    last_traceback = ""
    for attempt in range(1, policy.attempts + 1):
        try:
            with execution_deadline(policy.timeout_s):
                with trace(
                    "run.attempt",
                    fingerprint=fingerprint[:12],
                    attempt=attempt,
                ):
                    hook = _FAULT_HOOK
                    if hook is not None:
                        hook(fingerprint, attempt)
                    result = _execute_once(spec, fingerprint, validate)
            if observed is not None:
                observed["attempts"] = attempt
            return result
        except Exception as exc:
            last_exc = exc
            last_traceback = "".join(
                traceback_module.format_exception(type(exc), exc, exc.__traceback__)
            )
            if attempt < policy.attempts:
                delay = backoff_delay(policy, fingerprint, attempt)
                emit_event(
                    "spec_retry",
                    fingerprint=fingerprint,
                    attempt=attempt,
                    delay_s=delay,
                    error_type=type(exc).__name__,
                )
                if delay > 0:
                    with trace(
                        "run.backoff",
                        fingerprint=fingerprint[:12],
                        attempt=attempt,
                        delay_s=delay,
                    ):
                        _failures._sleep(delay)
    assert last_exc is not None
    if not policy.captures:
        raise last_exc
    return FailedResult(
        name=spec.algorithm,
        fingerprint=fingerprint,
        error_type=type(last_exc).__name__,
        error_message=str(last_exc),
        traceback_digest=hashlib.sha256(
            last_traceback.encode("utf-8")
        ).hexdigest(),
        attempts=policy.attempts,
        wall_clock_s=time.perf_counter() - started,
        traceback_text=last_traceback,
    )


def run(
    spec: RunSpec,
    *,
    validate: bool = True,
    cache: bool = True,
    cache_dir: str | Path | None = None,
    cache_max_entries: int | None = None,
    on_error: str | FailurePolicy = "raise",
    engine: str | None = None,
    ledger_dir: str | Path | None = None,
    _fingerprint: str | None = None,
) -> RunResult:
    """Execute one spec and return its fingerprinted, validated result.

    ``cache`` controls the in-process memo; ``cache_dir`` adds the
    cross-session on-disk layer (each is consulted and written
    independently, so ``cache=False, cache_dir=...`` still resumes
    from disk without touching process memory).  ``cache_max_entries``
    caps the on-disk store: after a store, the least-recently-used
    entries beyond the cap are pruned (see :func:`prune_cache`).

    ``on_error`` is the failure policy (``"raise"`` / ``"capture"`` or
    a :class:`~repro.api.failures.FailurePolicy`): under capture a
    failing spec returns a :class:`~repro.results.FailedResult` after
    exhausting the policy's attempts instead of raising.  Failures are
    never cached — only successful results enter either cache layer.

    ``engine`` selects the simulator's execution backend for this call
    (``"list"`` / ``"numpy"`` / ``"auto"``; ``None`` keeps the ambient
    default — see :func:`repro.model.scheduler.engine_override`).  It
    is an *executor* argument, deliberately not a spec field: engine
    choice never changes results, so it never enters fingerprints and
    a result computed under one engine is a cache hit for every other.

    ``ledger_dir`` appends one observational record per resolution
    (executed / cache hit / captured failure) to the run ledger there
    (see :mod:`repro.telemetry.ledger`); ``None`` falls back to the
    ambient :func:`repro.telemetry.ledger.ledger_context` directory,
    and recording is off when neither is set.  Like ``engine``, the
    ledger is executor state: it never enters fingerprints and never
    changes results — a run with the ledger on is byte-identical to
    one without.

    A spec carrying a non-identity scenario routes through
    :func:`repro.scenarios.executor.execute_scenario` — same result
    type, same caches, same fingerprint discipline; the identity
    (``synchronous``) scenario is normalised away and takes this plain
    path bit-for-bit.
    """
    policy = resolve_policy(on_error)
    if engine is not None and engine not in ENGINES:
        # Validate before the cache lookup so a typo'd engine raises
        # whether or not the spec happens to be cached.
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    ledger = resolve_ledger_dir(ledger_dir)
    fingerprint = spec.fingerprint() if _fingerprint is None else _fingerprint
    hit, layer = _lookup_layers(fingerprint, spec, validate, cache, cache_dir)
    if hit is not None:
        record_run(
            ledger,
            spec=spec,
            fingerprint=fingerprint,
            disposition=f"cache_{layer}",
            result=hit,
            attempts=0,
            engine=engine,
        )
        emit_event(
            "spec_resolved",
            fingerprint=fingerprint,
            disposition=f"cache_{layer}",
        )
        return hit
    observed: dict[str, Any] = {}
    started = time.perf_counter()
    with engine_override(engine) as active_engine:
        result = _execute_with_policy(
            spec, fingerprint, validate, policy, observed
        )
    wall_clock_s = time.perf_counter() - started
    if result.is_failure():
        record_run(
            ledger,
            spec=spec,
            fingerprint=fingerprint,
            disposition="failed",
            result=result,
            attempts=policy.attempts,
            wall_clock_s=wall_clock_s,
            engine=active_engine,
        )
        emit_event(
            "spec_resolved",
            fingerprint=fingerprint,
            disposition="failed",
            attempts=policy.attempts,
            error_type=result.error_type,
        )
        return result
    record_run(
        ledger,
        spec=spec,
        fingerprint=fingerprint,
        disposition="executed",
        result=result,
        attempts=observed.get("attempts", 1),
        wall_clock_s=wall_clock_s,
        engine=active_engine,
    )
    emit_event(
        "spec_resolved",
        fingerprint=fingerprint,
        disposition="executed",
        attempts=observed.get("attempts", 1),
        wall_clock_s=round(wall_clock_s, 6),
    )
    if cache:
        _cache_store(fingerprint, result, validate)
    if cache_dir is not None:
        _disk_store(cache_dir, fingerprint, result, validate)
        if cache_max_entries is not None:
            prune_cache(cache_dir, cache_max_entries)
    return result


def _run_in_worker(
    payload: tuple[
        dict[str, Any], bool, dict[str, Any] | None, str | None, str | None
    ]
) -> RunResult:
    """Pool entry point: rebuild the spec from its dict form and run it.

    The failure policy crosses the pool boundary as a dict so capture
    (and its retries/deadline) happens *inside* the worker — the
    traceback the failure record digests is the algorithm's, identical
    to what a serial run would have captured.  The engine selection
    and the ledger directory ride along the same way (both are
    per-call executor state, not spec state, so the worker must be
    told explicitly) — ledger records are written at the execution
    site, so a pooled batch produces the same rows a serial one does,
    stamped with the worker's own pid.
    """
    spec_dict, validate, policy_dict, engine, ledger_dir = payload
    policy = (
        FailurePolicy.from_dict(policy_dict)
        if policy_dict is not None
        else FailurePolicy()
    )
    return run(
        RunSpec.from_dict(spec_dict),
        validate=validate,
        cache=False,
        on_error=policy,
        engine=engine,
        ledger_dir=ledger_dir,
    )


def run_many_iter(
    specs: Iterable[RunSpec],
    *,
    parallel: int = 1,
    validate: bool = True,
    cache: bool = True,
    cache_dir: str | Path | None = None,
    cache_max_entries: int | None = None,
    on_error: str | FailurePolicy = "raise",
    engine: str | None = None,
    ledger_dir: str | Path | None = None,
) -> Iterator[tuple[int, RunResult]]:
    """Execute many specs, yielding ``(index, result)`` as runs finish.

    Every spec index is yielded exactly once.  Cache hits (in-process
    or on-disk) come first, in spec order; remaining specs follow as
    their runs complete — in spec order when serial, in completion
    order when ``parallel > 1``.  Duplicate specs (same fingerprint)
    are executed once; the first occurrence yields the run's result
    object and later occurrences yield independent copies — exactly
    the object identity :func:`run_many` has always returned.

    Under ``on_error="capture"`` a failing spec yields a
    :class:`~repro.results.FailedResult` at its index (duplicates get
    copies, like any result); under ``"raise"`` the exception
    propagates annotated with the failing spec's batch index, label,
    and fingerprint (``spec_index`` / ``spec_fingerprint`` attributes
    plus an exception note), so a poison spec in a thousand-spec batch
    is identifiable from the traceback alone.

    Streaming changes *when* results surface, never *what* they are:
    collecting the pairs into spec order reproduces the serial
    ``run_many`` list byte-for-byte.

    ``ledger_dir`` (or the ambient
    :func:`~repro.telemetry.ledger.ledger_context`) records one run
    record per resolved fingerprint — at the execution site even under
    ``parallel > 1``, so the deterministic core of the records matches
    serial execution; see :func:`run`.
    """
    try:
        yield from _run_many_iter_inner(
            specs,
            parallel=parallel,
            validate=validate,
            cache=cache,
            cache_dir=cache_dir,
            policy=resolve_policy(on_error),
            engine=engine,
            ledger_dir=resolve_ledger_dir(ledger_dir),
        )
    finally:
        # One prune per batch (not per store) — in a finally so the
        # cap holds even when a streaming consumer stops early and
        # closes the generator.
        if cache_dir is not None and cache_max_entries is not None:
            prune_cache(cache_dir, cache_max_entries)


def _annotate_spec_failure(
    exc: Exception, index: int, spec: RunSpec, fingerprint: str
) -> None:
    """Attach the failing spec's batch position to a propagating error.

    The exception *type* is preserved (callers keep catching what the
    algorithm raised); the batch context rides along as attributes and
    an exception note, so an aborted ``run_many`` names which spec
    killed it.
    """
    exc.spec_index = index  # type: ignore[attr-defined]
    exc.spec_fingerprint = fingerprint  # type: ignore[attr-defined]
    exc.add_note(
        f"while executing spec {index} ({spec.label()}, "
        f"fingerprint {fingerprint[:12]}) of a run_many batch"
    )


def _run_many_iter_inner(
    specs: Iterable[RunSpec],
    *,
    parallel: int,
    validate: bool,
    cache: bool,
    cache_dir: str | Path | None,
    policy: FailurePolicy,
    engine: str | None = None,
    ledger_dir: str | None = None,
) -> Iterator[tuple[int, RunResult]]:
    ordered = list(specs)
    fingerprints = [spec.fingerprint() for spec in ordered]
    indices_of: dict[str, list[int]] = {}
    for index, fingerprint in enumerate(fingerprints):
        indices_of.setdefault(fingerprint, []).append(index)

    def emissions(
        fingerprint: str, result: RunResult
    ) -> Iterator[tuple[int, RunResult]]:
        indices = indices_of[fingerprint]
        yield indices[0], result
        for index in indices[1:]:
            yield index, copy.deepcopy(result)

    todo: dict[str, RunSpec] = {}
    resolved: set[str] = set()
    for fingerprint, spec in zip(fingerprints, ordered):
        if fingerprint in resolved or fingerprint in todo:
            continue
        hit, layer = _lookup_layers(fingerprint, spec, validate, cache, cache_dir)
        if hit is not None:
            record_run(
                ledger_dir,
                spec=spec,
                fingerprint=fingerprint,
                disposition=f"cache_{layer}",
                result=hit,
                attempts=0,
                engine=engine,
            )
            emit_event(
                "spec_resolved",
                fingerprint=fingerprint,
                disposition=f"cache_{layer}",
            )
            resolved.add(fingerprint)
            yield from emissions(fingerprint, hit)
        else:
            todo[fingerprint] = spec

    if parallel <= 1 or len(todo) <= 1:
        for fingerprint, spec in todo.items():
            try:
                result = run(
                    spec,
                    validate=validate,
                    cache=cache,
                    cache_dir=cache_dir,
                    on_error=policy,
                    engine=engine,
                    ledger_dir=ledger_dir,
                    _fingerprint=fingerprint,
                )
            except Exception as exc:
                _annotate_spec_failure(
                    exc, indices_of[fingerprint][0], spec, fingerprint
                )
                raise
            yield from emissions(fingerprint, result)
    else:
        workers = min(parallel, len(todo))
        policy_dict = policy.to_dict()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _run_in_worker,
                    (spec.to_dict(), validate, policy_dict, engine, ledger_dir),
                ): fingerprint
                for fingerprint, spec in todo.items()
            }
            for future in as_completed(futures):
                fingerprint = futures[future]
                try:
                    result = future.result()
                except Exception as exc:
                    _annotate_spec_failure(
                        exc,
                        indices_of[fingerprint][0],
                        todo[fingerprint],
                        fingerprint,
                    )
                    raise
                if not result.is_failure():
                    if cache:
                        _cache_store(fingerprint, result, validate)
                    if cache_dir is not None:
                        _disk_store(cache_dir, fingerprint, result, validate)
                yield from emissions(fingerprint, result)


def run_many(
    specs: Iterable[RunSpec],
    *,
    parallel: int = 1,
    validate: bool = True,
    cache: bool = True,
    cache_dir: str | Path | None = None,
    cache_max_entries: int | None = None,
    on_error: str | FailurePolicy = "raise",
    engine: str | None = None,
    ledger_dir: str | Path | None = None,
) -> list[RunResult]:
    """Execute many specs, optionally fanning out over processes.

    Results come back in spec order, byte-identical to serial
    execution regardless of ``parallel``.  Duplicate specs (same
    fingerprint) are executed once and later occurrences get
    independent copies; already-cached specs (in-process, or on-disk
    when ``cache_dir`` is given) are not re-executed at all.

    Parameters
    ----------
    specs:
        The run descriptions.
    parallel:
        Worker process count; ``1`` (the default) runs serially in
        this process.  Parallel execution is deterministic: results
        are keyed by spec fingerprint, never by completion order.
    validate / cache / cache_dir / cache_max_entries:
        As for :func:`run` (validation happens inside workers).
    on_error:
        Failure policy (see :func:`run_many_iter`): ``"raise"``
        (default) aborts the batch with the failing spec's index and
        fingerprint attached to the exception; ``"capture"`` puts a
        :class:`~repro.results.FailedResult` in the failing spec's
        slot — byte-identical serial vs. parallel, failures included.
    """
    ordered = list(specs)
    results: list[RunResult | None] = [None] * len(ordered)
    for index, result in run_many_iter(
        ordered,
        parallel=parallel,
        validate=validate,
        cache=cache,
        cache_dir=cache_dir,
        cache_max_entries=cache_max_entries,
        on_error=on_error,
        engine=engine,
        ledger_dir=ledger_dir,
    ):
        results[index] = result
    return results  # type: ignore[return-value]


def specs_for_race(
    instance: InstanceSpec,
    *,
    algorithms: Sequence[str] | None = None,
    policy: str | None = None,
) -> list[RunSpec]:
    """One spec per algorithm on a single instance (a "race").

    ``algorithms=None`` means every registered algorithm — the paper
    solver included, as its own entrant.  ``policy`` applies to the
    paper solver only.
    """
    from repro.api.registry import algorithm_names, get_algorithm

    names = list(algorithms) if algorithms is not None else algorithm_names()
    return [
        RunSpec(
            instance=instance,
            algorithm=name,
            policy=policy if get_algorithm(name).kind == "paper" else None,
        )
        for name in names
    ]


def specs_for_scenarios(
    instance: InstanceSpec,
    scenarios: Sequence["ScenarioSpec"],
    *,
    algorithm: str = "greedy_sequential",
) -> list[RunSpec]:
    """One spec per execution model on a single instance and algorithm.

    The scenario sibling of :func:`specs_for_race`: sweep *conditions*
    instead of contestants.  The algorithm must be scenario-capable for
    non-identity models (see
    :func:`repro.scenarios.programs.scenario_capable`).
    """
    return [
        RunSpec(instance=instance, algorithm=algorithm, scenario=scenario)
        for scenario in scenarios
    ]
