"""The batch executor: ``run(spec)`` and ``run_many(specs, parallel=N)``.

The one front door for executing experiments.  Guarantees:

* **Determinism** — a spec carries every input (family, size, seeds,
  algorithm, policy name), so the same spec produces the same
  :class:`~repro.results.RunResult` (byte-identical result
  fingerprint) whether it runs serially, in a process pool, or in a
  different session.
* **Validation** — every coloring is re-checked independently
  (properness + palette bound) before a result is returned; the whole
  point of the harness is that results are verified.
* **Caching** — results are memoised under the spec fingerprint;
  repeated specs (within one ``run_many`` call or across calls) solve
  once.  The cache is in-process and explicit
  (:func:`clear_result_cache`); it stores private copies and hands out
  copies, so mutating a returned result never corrupts later lookups,
  and a hit produced under ``validate=False`` is validated before it
  may satisfy a ``validate=True`` request.
* **Fan-out** — ``parallel > 1`` distributes distinct specs over a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Specs cross the
  process boundary as plain dicts and results come back pickled; the
  per-spec seeding makes worker-side runs bit-identical to serial
  ones.
"""

from __future__ import annotations

import copy
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Iterable, Sequence

from repro.api.registry import get_algorithm
from repro.api.spec import InstanceSpec, RunSpec
from repro.coloring.verify import check_palette_bound, check_proper_edge_coloring
from repro.results import RunResult

#: Result cache: spec fingerprint -> (result, was_validated).  The
#: stored result is private to the cache — lookups hand out deep
#: copies, so no caller mutation can poison later hits.  In-process
#: and unbounded; sweeps that would outgrow it should clear between
#: phases.
_RESULT_CACHE: dict[str, tuple[RunResult, bool]] = {}


def clear_result_cache() -> int:
    """Drop all cached results; returns how many were dropped."""
    dropped = len(_RESULT_CACHE)
    _RESULT_CACHE.clear()
    return dropped


def result_cache_size() -> int:
    """Number of results currently cached."""
    return len(_RESULT_CACHE)


def _validate(result: RunResult, graph) -> None:
    check_proper_edge_coloring(graph, result.coloring)
    if result.palette_size:
        check_palette_bound(result.coloring, result.palette_size)


def _cache_lookup(fingerprint: str, spec: RunSpec, validate: bool) -> RunResult | None:
    """Return a private copy of a cached result, validating if owed.

    A hit produced by a ``validate=False`` run must not satisfy a
    ``validate=True`` request unchecked — the validation happens now
    (once) and the entry is upgraded.
    """
    entry = _RESULT_CACHE.get(fingerprint)
    if entry is None:
        return None
    result, validated = entry
    if validate and not validated:
        _validate(result, spec.instance.build())
        _RESULT_CACHE[fingerprint] = (result, True)
    return copy.deepcopy(result)


def _cache_store(fingerprint: str, result: RunResult, validated: bool) -> None:
    _RESULT_CACHE[fingerprint] = (copy.deepcopy(result), validated)


def run(
    spec: RunSpec,
    *,
    validate: bool = True,
    cache: bool = True,
    _fingerprint: str | None = None,
) -> RunResult:
    """Execute one spec and return its fingerprinted, validated result."""
    fingerprint = spec.fingerprint() if _fingerprint is None else _fingerprint
    if cache:
        hit = _cache_lookup(fingerprint, spec, validate)
        if hit is not None:
            return hit
    graph = spec.instance.build()
    algorithm = get_algorithm(spec.algorithm)
    result = algorithm.run(
        graph,
        seed=spec.effective_seed(),
        policy=spec.policy,
        **dict(spec.params),
    )
    result.fingerprint = fingerprint
    if validate:
        _validate(result, graph)
    if cache:
        _cache_store(fingerprint, result, validate)
    return result


def _run_in_worker(payload: tuple[dict[str, Any], bool]) -> RunResult:
    """Pool entry point: rebuild the spec from its dict form and run it."""
    spec_dict, validate = payload
    return run(RunSpec.from_dict(spec_dict), validate=validate, cache=False)


def run_many(
    specs: Iterable[RunSpec],
    *,
    parallel: int = 1,
    validate: bool = True,
    cache: bool = True,
) -> list[RunResult]:
    """Execute many specs, optionally fanning out over processes.

    Results come back in spec order.  Duplicate specs (same
    fingerprint) are executed once and share one result object;
    already-cached specs are not re-executed at all.

    Parameters
    ----------
    specs:
        The run descriptions.
    parallel:
        Worker process count; ``1`` (the default) runs serially in
        this process.  Parallel execution is deterministic: results
        are keyed and ordered by spec fingerprint, never by completion
        order.
    validate / cache:
        As for :func:`run` (validation happens inside workers).
    """
    ordered = list(specs)
    fingerprints = [spec.fingerprint() for spec in ordered]
    results: dict[str, RunResult] = {}
    if cache:
        for fingerprint, spec in zip(fingerprints, ordered):
            if fingerprint not in results:
                hit = _cache_lookup(fingerprint, spec, validate)
                if hit is not None:
                    results[fingerprint] = hit
    pending: dict[str, RunSpec] = {}
    for fingerprint, spec in zip(fingerprints, ordered):
        if fingerprint not in results and fingerprint not in pending:
            pending[fingerprint] = spec

    if parallel <= 1 or len(pending) <= 1:
        for fingerprint, spec in pending.items():
            results[fingerprint] = run(
                spec, validate=validate, cache=cache, _fingerprint=fingerprint
            )
    else:
        payloads = [(spec.to_dict(), validate) for spec in pending.values()]
        workers = min(parallel, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for fingerprint, result in zip(
                pending, pool.map(_run_in_worker, payloads)
            ):
                results[fingerprint] = result
                if cache:
                    _cache_store(fingerprint, result, validate)

    # Duplicate specs get independent copies (first occurrence keeps
    # the original object).
    first_index: dict[str, int] = {}
    for index, fingerprint in enumerate(fingerprints):
        first_index.setdefault(fingerprint, index)
    return [
        results[fingerprint]
        if index == first_index[fingerprint]
        else copy.deepcopy(results[fingerprint])
        for index, fingerprint in enumerate(fingerprints)
    ]


def specs_for_race(
    instance: InstanceSpec,
    *,
    algorithms: Sequence[str] | None = None,
    policy: str | None = None,
) -> list[RunSpec]:
    """One spec per algorithm on a single instance (a "race").

    ``algorithms=None`` means every registered algorithm — the paper
    solver included, as its own entrant.  ``policy`` applies to the
    paper solver only.
    """
    from repro.api.registry import algorithm_names, get_algorithm

    names = list(algorithms) if algorithms is not None else algorithm_names()
    return [
        RunSpec(
            instance=instance,
            algorithm=name,
            policy=policy if get_algorithm(name).kind == "paper" else None,
        )
        for name in names
    ]
