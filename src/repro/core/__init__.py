"""The paper's contribution: quasi-polylog-in-Δ list edge coloring.

Module map (one module per lemma, mirroring the paper's Section 4):

* :mod:`repro.core.ledger` — round accounting with sequential/parallel
  composition, mirroring how the paper itself charges rounds;
* :mod:`repro.core.params` — parameter policies: the paper's asymptotic
  choices (β = α log^{4c} Δ̄, p = √Δ̄) plus scaled-down variants usable
  at simulation scale, and a constant-p policy modelling Kuhn [SODA'20];
* :mod:`repro.core.levels` — Lemma 4.4: harmonic-bound subspace
  candidate selection and edge levels;
* :mod:`repro.core.virtual_graph` — the virtual-copy splitting of
  Figure 6 (nodes split into bounded-degree copies);
* :mod:`repro.core.space_reduction` — Lemma 4.3: assign each edge a
  color subspace via per-level phases (set ``E(1)``) and a final small
  list coloring (set ``E(2)``);
* :mod:`repro.core.slack_reduction` — Lemma 4.2: reduce a slack-1
  instance to many slack-β instances via defective colorings;
* :mod:`repro.core.solver` — Theorem 4.1: the full recursion, plus the
  public entry points :func:`solve_list_edge_coloring` and
  :func:`solve_edge_coloring`.
"""

from repro.core.ledger import RoundLedger
from repro.core.params import (
    ParameterPolicy,
    kuhn20_style_policy,
    paper_policy,
    scaled_policy,
)
from repro.core.levels import LevelAssignment, compute_level
from repro.core.solver import (
    SolveResult,
    solve_edge_coloring,
    solve_list_edge_coloring,
)

__all__ = [
    "RoundLedger",
    "ParameterPolicy",
    "kuhn20_style_policy",
    "paper_policy",
    "scaled_policy",
    "LevelAssignment",
    "compute_level",
    "SolveResult",
    "solve_edge_coloring",
    "solve_list_edge_coloring",
]
