"""Lemma 4.3: list color space reduction.

Given a list edge coloring instance over a palette of size ``C`` and a
parameter ``p``, assign to every edge one of ``q <= 2p`` subspaces of
size at most ``C/p`` such that, per edge (the paper's Equation (2)),

    ``deg'(e) <= 24 * H_q * log p * (|L'_e| / |L_e|) * deg(e)``,

where ``deg'`` counts neighbors assigned the same subspace and
``L'_e = L_e ∩ C_{i_e}``.  The instance then splits into ``q``
independent instances (solved in parallel) over palettes of size
``C/p``.

The assignment procedure, exactly as in Section 4.2:

* **levels** (Lemma 4.4, :mod:`repro.core.levels`): every edge gets the
  largest level ``ℓ`` with ``>= 2^ℓ`` subspaces intersecting its list in
  ``>= |L_e| / (2^{ℓ+1} H_q)`` colors;
* **level <= 3**: take the largest-intersection subspace outright (the
  bound holds even if all neighbors pick the same subspace);
* **E(1)** (``ℓ > 3`` and ``deg(e) >= 2^ℓ``): processed in phases
  ``ℓ = 4 .. floor(log2 q)``; in phase ℓ each edge computes its menu
  ``J_e`` (subspaces meeting the level bound and not over-chosen by
  earlier-phase neighbors), nodes split into virtual copies of degree
  ``<= 2^{ℓ-2}`` (Figure 6), and the subspace choice becomes a
  ``(deg+1)``-list edge coloring on the virtual graph over the palette
  ``{1..q}`` — solved recursively via the supplied callback;
* **E(2)** (``ℓ > 3`` and ``deg(e) < 2^ℓ``): one final small
  ``(deg+1)``-list edge coloring on the induced subgraph assigns each
  remaining edge a subspace different from all neighbors.

The counting arguments guaranteeing ``|J_e| >= deg+1`` at every step
are theorems, but this implementation still *checks* them at runtime
and defers any edge that violates them (possible only at finite scale
with degenerate parameters); deferred edges are reported and recolored
by the caller's fallback from their full residual lists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import networkx as nx

from repro.errors import ParameterError
from repro.coloring.lists import ListAssignment
from repro.coloring.palette import Palette, split_palette
from repro.core.levels import LevelAssignment, compute_level
from repro.core.virtual_graph import build_virtual_graph
from repro.graphs.edges import Edge, edges_subgraph
from repro.utils.harmonic import harmonic_number
from repro.utils.logstar import ilog2


#: Callback solving an auxiliary ``(deg+1)``-list edge coloring whose
#: "colors" are subspace indices ``1..q``.  Arguments: the instance
#: graph, the lists, a seed proper edge coloring of the instance, and a
#: human-readable tag for the ledger.  Returns edge -> chosen index.
IndexInstanceSolver = Callable[
    [nx.Graph, ListAssignment, Mapping[Edge, int], str], dict[Edge, int]
]


@dataclass
class SpaceReductionOutcome:
    """Result of one color-space reduction.

    Attributes
    ----------
    subspaces:
        The partition ``C_1, ..., C_q`` (0-based indexing internally).
    assignment:
        Edge -> 0-based subspace index.
    deferred:
        Edges that could not be assigned under the runtime guarantees;
        empty in the theory regime.
    eq2_violations:
        Number of edges violating Equation (2) — 0 in the theory
        regime; counted (not fatal) because finite-scale parameters can
        break the constant.
    phases_run:
        Number of E(1) phases that had edges.
    level_histogram:
        level -> number of edges at that level (benchmarks report it).
    """

    subspaces: list[Palette]
    assignment: dict[Edge, int]
    deferred: list[Edge] = field(default_factory=list)
    eq2_violations: int = 0
    phases_run: int = 0
    level_histogram: dict[int, int] = field(default_factory=dict)


def equation_2_bound(
    q: int, p: int, old_list: int, new_list: int, old_degree: int
) -> float:
    """The paper's Equation (2) right-hand side.

    ``24 * H_q * log p * (|L'| / |L|) * deg(e)`` — exposed separately
    so the tests and the LEM43 benchmark state it exactly once.
    """
    if old_list <= 0:
        raise ParameterError("old list size must be positive")
    return 24.0 * harmonic_number(q) * math.log2(max(2, p)) * new_list / old_list * old_degree


def reduce_color_space(
    edges: Sequence[Edge],
    lists: Mapping[Edge, frozenset[int]],
    palette: Palette,
    p: int,
    adjacency: Mapping[Edge, Sequence[Edge]],
    edge_degrees: Mapping[Edge, int],
    initial_coloring: Mapping[Edge, int],
    solve_index_instance: IndexInstanceSolver,
) -> SpaceReductionOutcome:
    """Assign a color subspace to every edge (Lemma 4.3).

    Parameters
    ----------
    edges:
        The instance's edges.
    lists:
        Current (possibly already narrowed) list of each edge.
    palette:
        Ambient palette of size ``C``.
    p:
        Split parameter, ``2 <= p <= C``.
    adjacency:
        Line-graph adjacency *within this instance*.
    edge_degrees:
        ``deg(e)`` within this instance (len of adjacency row; passed
        explicitly so callers can precompute).
    initial_coloring:
        The ambient proper ``X``-edge coloring, used to seed the
        auxiliary instances.
    solve_index_instance:
        Callback that solves the auxiliary ``(deg+1)``-list instances
        (the ``T(2p-1, 1, 2p)`` term); the caller charges its rounds.

    Returns
    -------
    SpaceReductionOutcome
    """
    if p < 2:
        raise ParameterError(f"p must be >= 2, got {p}")
    if p > len(palette):
        raise ParameterError(
            f"p={p} exceeds palette size {len(palette)} (Lemma 4.3 needs p <= C)"
        )

    subspaces = split_palette(palette, p)
    q = len(subspaces)
    outcome = SpaceReductionOutcome(subspaces=subspaces, assignment={})

    # --- levels (Lemma 4.4) -------------------------------------------
    levels: dict[Edge, LevelAssignment] = {}
    for edge in edges:
        edge_list = lists[edge]
        if not edge_list:
            outcome.deferred.append(edge)
            continue
        levels[edge] = compute_level(edge_list, subspaces)
        histogram_key = levels[edge].level
        outcome.level_histogram[histogram_key] = (
            outcome.level_histogram.get(histogram_key, 0) + 1
        )

    # --- level <= 3: largest intersection wins --------------------------
    # Ties are broken by the edge's initial color (locally computable):
    # the paper allows ANY largest-intersection subspace (Equation (2)
    # holds even if all neighbors agree), and spreading ties avoids the
    # degenerate all-in-one-subspace split on uniform lists.
    for edge, level in levels.items():
        if level.level <= 3:
            best = max(level.intersections[i] for i in level.candidates)
            tied = sorted(
                i for i in level.candidates if level.intersections[i] == best
            )
            outcome.assignment[edge] = tied[initial_coloring[edge] % len(tied)]

    # --- split the rest into E(1) and E(2) ------------------------------
    e1: dict[int, list[Edge]] = {}
    e2: list[Edge] = []
    for edge, level in levels.items():
        if level.level <= 3:
            continue
        if edge_degrees[edge] >= 2**level.level:
            e1.setdefault(level.level, []).append(edge)
        else:
            e2.append(edge)

    h_q = harmonic_number(q)
    max_level = ilog2(q) if q >= 1 else 0

    # --- E(1) phases ----------------------------------------------------
    for phase_level in range(4, max_level + 1):
        phase_edges = e1.get(phase_level, [])
        if not phase_edges:
            continue
        outcome.phases_run += 1
        menus: dict[Edge, frozenset[int]] = {}
        for edge in phase_edges:
            level = levels[edge]
            size = len(lists[edge])
            threshold = size / (2 ** (phase_level + 1) * h_q)
            cap = edge_degrees[edge] / 2 ** (phase_level - 1)
            chosen_counts: dict[int, int] = {}
            for neighbor in adjacency[edge]:
                assigned = outcome.assignment.get(neighbor)
                if assigned is not None:
                    chosen_counts[assigned] = chosen_counts.get(assigned, 0) + 1
            menu = frozenset(
                index
                for index, inter in enumerate(level.intersections)
                if inter >= threshold and chosen_counts.get(index, 0) <= cap
            )
            menus[edge] = menu

        # Virtual graph of Figure 6: copies of degree <= 2^{ℓ-2}.
        group_size = max(1, 2 ** (phase_level - 2))
        virtual = build_virtual_graph(phase_edges, group_size)

        # Feasibility check |J_e| >= virtual line degree + 1; defer
        # violators (removals only shrink the survivors' degrees).
        kept: list[Edge] = []
        for edge in phase_edges:
            virtual_edge = virtual.virtual_of[edge]
            vu, vv = virtual_edge
            virtual_line_degree = (
                virtual.graph.degree(vu) + virtual.graph.degree(vv) - 2
            )
            if len(menus[edge]) >= virtual_line_degree + 1:
                kept.append(edge)
            else:
                outcome.deferred.append(edge)
        if not kept:
            continue
        virtual = build_virtual_graph(kept, group_size)

        index_palette = Palette.of_size(q)
        virtual_lists = ListAssignment(
            {
                virtual.virtual_of[edge]: frozenset(
                    index + 1 for index in menus[edge]
                )
                for edge in kept
            },
            index_palette,
        )
        virtual_initial = {
            virtual.virtual_of[edge]: initial_coloring[edge] for edge in kept
        }
        chosen = solve_index_instance(
            virtual.graph,
            virtual_lists,
            virtual_initial,
            f"phase ℓ={phase_level} index assignment",
        )
        for virtual_edge, index_plus_one in chosen.items():
            outcome.assignment[virtual.real_of[virtual_edge]] = index_plus_one - 1

    # --- E(2): one small list edge coloring over {1..q} -----------------
    if e2:
        menus = {}
        kept = []
        e2_set = set(e2)
        for edge in e2:
            taken_by_assigned = {
                outcome.assignment[neighbor]
                for neighbor in adjacency[edge]
                if neighbor in outcome.assignment
            }
            menu = frozenset(
                index
                for index, inter in enumerate(levels[edge].intersections)
                if inter > 0 and index not in taken_by_assigned
            )
            induced_degree = sum(
                1 for neighbor in adjacency[edge] if neighbor in e2_set
            )
            if len(menu) >= induced_degree + 1:
                menus[edge] = menu
                kept.append(edge)
            else:
                outcome.deferred.append(edge)
        if kept:
            kept_set = set(kept)
            # Degrees can only have shrunk by dropping violators.
            index_palette = Palette.of_size(q)
            sub = nx.Graph()
            for u, v in kept:
                sub.add_edge(u, v)
            e2_lists = ListAssignment(
                {
                    edge: frozenset(index + 1 for index in menus[edge])
                    for edge in kept
                },
                index_palette,
            )
            e2_initial = {edge: initial_coloring[edge] for edge in kept}
            chosen = solve_index_instance(
                sub, e2_lists, e2_initial, "E(2) index assignment"
            )
            for edge, index_plus_one in chosen.items():
                outcome.assignment[edge] = index_plus_one - 1

    # --- Equation (2) audit ---------------------------------------------
    for edge, index in outcome.assignment.items():
        old_list = len(lists[edge])
        new_list = len(lists[edge] & subspaces[index].as_set)
        same = sum(
            1
            for neighbor in adjacency[edge]
            if outcome.assignment.get(neighbor) == index
        )
        bound = equation_2_bound(q, p, old_list, new_list, edge_degrees[edge])
        if same > bound:
            outcome.eq2_violations += 1

    return outcome
