"""Virtual-copy graphs (the paper's Figure 6).

In phase ``ℓ`` of Lemma 4.3, each node ``v`` divides its phase-``ℓ``
edges into groups of size at most ``2^{ℓ-2}`` and creates one *virtual
copy* of itself per group.  The resulting virtual graph has maximum
degree ``2^{ℓ-2}``, hence maximum *edge* degree ``2^{ℓ-1} - 2``, which
makes the subspace-index assignment a small ``(deg+1)``-list edge
coloring instance that the solver handles recursively.

Virtual nodes are labelled ``("virt", node, group_index)``; because a
simple graph has at most one edge between two real nodes, the mapping
between real edges and virtual edges is a bijection
(:attr:`VirtualGraphResult.real_of` / :attr:`VirtualGraphResult.virtual_of`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import networkx as nx

from repro.errors import AlgorithmInvariantError, ParameterError
from repro.graphs.edges import Edge, edge_key


#: Virtual node label type: ("virt", real node, group index).
VirtualNode = tuple[str, Hashable, int]


@dataclass(frozen=True)
class VirtualGraphResult:
    """A virtual graph together with the edge correspondence.

    Attributes
    ----------
    graph:
        The virtual graph (nodes are :data:`VirtualNode` labels).
    real_of:
        Virtual canonical edge -> real canonical edge.
    virtual_of:
        Real canonical edge -> virtual canonical edge.
    group_size:
        The cap on edges per virtual copy (``2^{ℓ-2}`` in phase ℓ).
    """

    graph: nx.Graph
    real_of: dict[Edge, Edge]
    virtual_of: dict[Edge, Edge]
    group_size: int

    def max_virtual_degree(self) -> int:
        """Maximum degree of the virtual graph (``<= group_size``)."""
        if self.graph.number_of_nodes() == 0:
            return 0
        return max(d for _n, d in self.graph.degree())


def build_virtual_graph(
    edges: Sequence[Edge], group_size: int
) -> VirtualGraphResult:
    """Split nodes into virtual copies so degrees stay below ``group_size``.

    Parameters
    ----------
    edges:
        The (real) edges participating in this phase.
    group_size:
        Maximum number of edges assigned to one virtual copy
        (``2^{ℓ-2}`` in the paper's phase ``ℓ``).

    Returns
    -------
    VirtualGraphResult
        The virtual graph has max degree ``<= group_size`` and its
        edges biject with ``edges``.
    """
    if group_size < 1:
        raise ParameterError(f"group_size must be >= 1, got {group_size}")

    # Deterministic grouping: each real node's incident edges (within
    # this phase) are sorted, then chunked.
    incident: dict[Hashable, list[Edge]] = {}
    for edge in sorted(set(edges), key=repr):
        u, v = edge
        incident.setdefault(u, []).append(edge)
        incident.setdefault(v, []).append(edge)

    copy_of: dict[tuple[Hashable, Edge], VirtualNode] = {}
    for node, node_edges in incident.items():
        for index, edge in enumerate(node_edges):
            copy_of[(node, edge)] = ("virt", node, index // group_size)

    graph = nx.Graph()
    real_of: dict[Edge, Edge] = {}
    virtual_of: dict[Edge, Edge] = {}
    for edge in sorted(set(edges), key=repr):
        u, v = edge
        virtual_u = copy_of[(u, edge)]
        virtual_v = copy_of[(v, edge)]
        virtual_edge = edge_key(virtual_u, virtual_v)
        if graph.has_edge(*virtual_edge):  # pragma: no cover — bijection argument
            raise AlgorithmInvariantError(
                f"virtual edge collision between {real_of[virtual_edge]!r} "
                f"and {edge!r}"
            )
        graph.add_edge(*virtual_edge)
        real_of[virtual_edge] = edge
        virtual_of[edge] = virtual_edge

    result = VirtualGraphResult(
        graph=graph, real_of=real_of, virtual_of=virtual_of, group_size=group_size
    )
    max_degree = result.max_virtual_degree()
    if max_degree > group_size:  # pragma: no cover — chunking bound
        raise AlgorithmInvariantError(
            f"virtual degree {max_degree} exceeds group size {group_size}"
        )
    return result
