"""Parameter policies for the recursive solver.

The paper's Section 4.3 fixes its parameters asymptotically:

* slack target ``β = α log^{4c} Δ̄`` for a large constant ``α``
  (Lemma 4.2 is invoked with this β);
* split parameter ``p = √Δ̄`` (Lemma 4.3/4.5), driving the degree
  reduction ``Δ̄ -> 2√Δ̄ - 1`` per recursion level;
* base case: constant ``Δ̄`` solved in ``O(log* X)``.

Those choices only bite for astronomically large ``Δ̄`` (``log^4 Δ̄``
already exceeds any simulatable degree).  A reproduction that ran the
paper's literal constants would *never* exercise the interesting code
paths, so this module provides several policies with the same
functional forms at different scales:

* :func:`paper_policy` — the literal asymptotic choices.  Useful for
  the analysis module (recurrence evaluation) and for demonstrating
  that at feasible ``Δ̄`` it degenerates to the base case (an honest,
  reportable fact);
* :func:`scaled_policy` — same shapes (β polylogarithmic in ``Δ̄``,
  ``p = √Δ̄``) with constants small enough that the machinery engages
  at simulation scale.  This is the default for benchmarks;
* :func:`kuhn20_style_policy` — constant split arity, modelling the
  recursion shape of Kuhn [SODA'20] (the ``2^{O(√log Δ)}`` baseline):
  the color space is halved per level instead of reduced by ``√Δ̄``.

Every policy records its choices so benchmark tables can show which
parameters were in force.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ParameterError


@dataclass(frozen=True)
class ParameterPolicy:
    """Tuning knobs of the recursive solver.

    Attributes
    ----------
    name:
        Shown in benchmark tables.
    beta:
        Callable ``(max_edge_degree, palette_size) -> β >= 2`` for
        Lemma 4.2 (slack target of the relaxed instances).
    split:
        Callable ``(max_edge_degree, palette_size) -> p >= 2`` for
        Lemma 4.3 (number of color subspaces per reduction).
    base_degree_threshold:
        Instances with ``Δ̄`` at most this are solved by the base case
        (the paper's "``Δ̄ = O(1)``" case).
    base_palette_threshold:
        Instances whose palette is at most this are solved by the base
        case (the paper's "palette size becomes constant" case of
        Lemma 4.5).
    max_depth:
        Recursion depth guard; beyond it the solver falls back to the
        base case (and records the event), keeping executions total.
    use_kw_in_base:
        Whether the base case compresses the class count with the
        Kuhn-Wattenhofer reduction before the greedy sweep (cheaper
        sweeps at the cost of ``O(Δ̄ log Δ̄)`` reduction rounds).
    """

    name: str
    beta: Callable[[int, int], int]
    split: Callable[[int, int], int]
    base_degree_threshold: int = 4
    base_palette_threshold: int = 8
    max_depth: int = 16
    use_kw_in_base: bool = True

    def __post_init__(self) -> None:
        if self.base_degree_threshold < 1:
            raise ParameterError("base_degree_threshold must be >= 1")
        if self.base_palette_threshold < 1:
            raise ParameterError("base_palette_threshold must be >= 1")
        if self.max_depth < 1:
            raise ParameterError("max_depth must be >= 1")

    def describe(self) -> dict[str, object]:
        """Return a summary dict for benchmark reports."""
        return {
            "name": self.name,
            "base_degree_threshold": self.base_degree_threshold,
            "base_palette_threshold": self.base_palette_threshold,
            "max_depth": self.max_depth,
            "use_kw_in_base": self.use_kw_in_base,
        }


def _log2_at_least_2(value: int) -> float:
    return math.log2(max(4, value))


def paper_policy(c: int = 1, alpha: int = 1) -> ParameterPolicy:
    """The paper's literal asymptotic parameters.

    ``β = α log^{4c} Δ̄`` and ``p = √Δ̄``.  At simulatable degrees
    ``β`` exceeds ``Δ̄`` itself, so Lemma 4.2's defective coloring puts
    every node in a single group and the recursion collapses to the
    base case — the expected (and reported) behaviour of asymptotic
    constants at laptop scale.
    """
    if c < 1 or alpha < 1:
        raise ParameterError(f"c and alpha must be >= 1, got c={c}, alpha={alpha}")

    def beta(dbar: int, palette: int) -> int:
        return max(2, math.ceil(alpha * _log2_at_least_2(dbar) ** (4 * c)))

    def split(dbar: int, palette: int) -> int:
        return max(2, math.isqrt(max(4, dbar)))

    return ParameterPolicy(name=f"paper(c={c},alpha={alpha})", beta=beta, split=split)


def scaled_policy(
    *,
    base_degree_threshold: int = 6,
    base_palette_threshold: int = 12,
    max_depth: int = 16,
) -> ParameterPolicy:
    """Scaled-down policy with the paper's functional forms.

    ``β = ceil(log2 Δ̄)`` (polylogarithmic, exponent 1 instead of 4c)
    and ``p = √Δ̄`` — the same asymptotic shapes, engaged at feasible
    degrees.  This is the benchmark default.
    """

    def beta(dbar: int, palette: int) -> int:
        return max(2, math.ceil(_log2_at_least_2(dbar)))

    def split(dbar: int, palette: int) -> int:
        return max(2, math.isqrt(max(4, dbar)))

    return ParameterPolicy(
        name="scaled(beta=log,p=sqrt)",
        beta=beta,
        split=split,
        base_degree_threshold=base_degree_threshold,
        base_palette_threshold=base_palette_threshold,
        max_depth=max_depth,
    )


def kuhn20_style_policy() -> ParameterPolicy:
    """Constant split arity, modelling Kuhn [SODA'20]'s recursion shape.

    The SODA'20 algorithm recursively halves the color space (constant
    arity) rather than cutting it by a ``√Δ̄`` factor; its recursion
    depth is therefore ``Θ(log Δ̄)`` levels instead of
    ``Θ(log log Δ̄)``, which is where the ``2^{O(√log Δ)}`` vs
    quasi-polylog separation comes from.  Pairing the same machinery
    with ``p = 2`` reproduces that shape for the RACE and ablation
    benchmarks.
    """

    def beta(dbar: int, palette: int) -> int:
        return 2

    def split(dbar: int, palette: int) -> int:
        return 2

    return ParameterPolicy(name="kuhn20-style(p=2)", beta=beta, split=split)


def fixed_policy(beta_value: int, split_value: int, **kwargs) -> ParameterPolicy:
    """A policy with constant β and p, for ablation sweeps."""
    if beta_value < 2 or split_value < 2:
        raise ParameterError(
            f"beta and split must be >= 2, got {beta_value}, {split_value}"
        )
    return ParameterPolicy(
        name=f"fixed(beta={beta_value},p={split_value})",
        beta=lambda dbar, palette: beta_value,
        split=lambda dbar, palette: split_value,
        **kwargs,
    )


def machinery_policy() -> ParameterPolicy:
    """β=2, p=4, low thresholds: the full recursion engages at
    simulation scale (see DESIGN.md §4, parameter policies)."""
    return fixed_policy(2, 4, base_degree_threshold=4, base_palette_threshold=6)


#: Name of the policy the solver falls back to when none is given
#: (``solve_edge_coloring(policy=None)`` uses :func:`scaled_policy`).
#: Spec fingerprints normalise ``policy=None`` to this name so the two
#: spellings of the same run share one identity.
DEFAULT_POLICY = "scaled"


def named_policies() -> dict[str, Callable[[], ParameterPolicy]]:
    """The policy registry: name -> zero-argument factory.

    These names are the serializable policy identifiers used by the CLI
    (``--policy``) and by :class:`repro.api.RunSpec` — a policy object
    itself holds callables and cannot cross a process boundary, so
    specs carry names and workers rebuild the policy from this table.
    """
    return {
        "scaled": scaled_policy,
        "paper": paper_policy,
        "kuhn20": kuhn20_style_policy,
        "machinery": machinery_policy,
    }


def resolve_policy(
    policy: "ParameterPolicy | str | None",
) -> ParameterPolicy | None:
    """Resolve a policy name (or pass through a policy object / None)."""
    if policy is None or isinstance(policy, ParameterPolicy):
        return policy
    registry = named_policies()
    if policy not in registry:
        raise ParameterError(
            f"unknown policy {policy!r}; have {sorted(registry)}"
        )
    return registry[policy]()
