"""Lemma 4.2 helpers: slack reduction via defective colorings.

The driving loop of Lemma 4.2 lives in
:class:`repro.core.solver.RecursiveSolver` (it needs the solver's
master coloring); this module holds the pure, independently testable
pieces:

* :func:`select_active_edges` — the activity rule of step 3(b): an
  edge of a defective class participates iff its residual list still
  holds more than ``deg(e) / 2`` colors;
* :func:`active_slack_guarantee` — the lemma's arithmetic: an active
  edge's list has slack at least β within its class subgraph (the
  "Enough slack" paragraph of Section 4.1);
* :class:`SlackLoopStats` — the observable trajectory (``Δ̄`` per outer
  iteration, relaxed-solver invocations) that the LEM42 benchmark
  checks against the ``O(β² log Δ̄)`` claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.graphs.edges import Edge


@dataclass(frozen=True)
class ActiveSelection:
    """Partition of a defective class into active and inactive edges."""

    active: tuple[Edge, ...]
    inactive: tuple[Edge, ...]


def select_active_edges(
    class_edges: Sequence[Edge],
    residual_list_size: Callable[[Edge], int],
    instance_degrees: Mapping[Edge, int],
) -> ActiveSelection:
    """Apply the activity rule of Lemma 4.2, step 3(b).

    An edge is *active* iff its residual list (original list minus the
    colors already used by neighbors) holds strictly more than
    ``deg(e) / 2`` colors, where ``deg(e)`` is the edge's degree in the
    instance the lemma was invoked on (fixed at the start of the
    current outer iteration).
    """
    active: list[Edge] = []
    inactive: list[Edge] = []
    for edge in class_edges:
        if residual_list_size(edge) > instance_degrees[edge] / 2:
            active.append(edge)
        else:
            inactive.append(edge)
    return ActiveSelection(active=tuple(active), inactive=tuple(inactive))


def active_slack_guarantee(
    list_size: int, instance_degree: int, class_degree: int, beta: int
) -> bool:
    """Check the "Enough slack" inequality of Lemma 4.2.

    For an active edge (``list_size > instance_degree / 2``) whose
    degree within its defective class is ``class_degree <=
    instance_degree / (2β)``, the lemma derives
    ``list_size > β * class_degree``.  Returns whether that conclusion
    holds — tests feed it both honest and adversarial inputs.
    """
    return list_size > beta * class_degree


@dataclass
class SlackLoopStats:
    """Observable trajectory of one Lemma 4.2 execution.

    Attributes
    ----------
    dbar_trajectory:
        ``Δ̄`` of the residual instance at the start of each outer
        iteration; the lemma predicts (at least) halving per step.
    relaxed_invocations:
        Number of slack-β sub-instances actually solved; the lemma
        bounds the total by ``O(β² log Δ̄)``.
    betas:
        The β used at each outer iteration.
    inactive_edges:
        Edges postponed to the next iteration by the activity rule,
        summed over classes, per iteration.
    """

    dbar_trajectory: list[int] = field(default_factory=list)
    relaxed_invocations: int = 0
    betas: list[int] = field(default_factory=list)
    inactive_edges: list[int] = field(default_factory=list)

    def halved_everywhere(self) -> bool:
        """Did ``Δ̄`` (at least) halve between consecutive iterations?

        The paper proves uncolored edges lose half their degree per
        iteration; the benchmark asserts this on the recorded
        trajectory.
        """
        return all(
            later <= earlier / 2 or later <= 1
            for earlier, later in zip(self.dbar_trajectory, self.dbar_trajectory[1:])
        )
