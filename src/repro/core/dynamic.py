"""Extending partial colorings — the paper's motivating application.

The paper (introduction, discussing [Bar15]): *"Being able to solve
list coloring in particular allows to extend an initial partial
coloring of a graph to a full coloring of the graph."*  This module
makes that concrete and useful: after a topology change (new links in
a network), only the new edges need colors, each choosing from the
greedy palette minus the colors its already-colored neighbors hold —
a ``(deg(e)+1)``-list instance by the residual invariant, solved with
the paper's algorithm while **every existing color stays untouched**.

This is the dynamic-network story of distributed coloring: recoloring
cost is proportional to the change, not the graph.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import networkx as nx

from repro.errors import InvalidInstanceError
from repro.coloring.lists import ListAssignment
from repro.coloring.palette import Palette
from repro.coloring.verify import check_proper_edge_coloring
from repro.core.params import ParameterPolicy
from repro.core.solver import SolveResult, solve_list_edge_coloring
from repro.graphs.edges import Edge, edge_key, edge_set
from repro.graphs.line_graph import line_graph_adjacency
from repro.graphs.properties import max_degree, validate_simple_graph


def extend_coloring(
    graph: nx.Graph,
    existing: Mapping[Edge, int],
    *,
    policy: ParameterPolicy | None = None,
    seed: int | None = None,
    palette: Palette | None = None,
) -> SolveResult:
    """Color the uncolored edges of ``graph`` without touching ``existing``.

    Parameters
    ----------
    graph:
        The (new) topology; may contain edges absent from ``existing``.
    existing:
        A proper partial edge coloring (validated).  All its colors are
        preserved verbatim in the result.
    policy / seed:
        Forwarded to the list solver.
    palette:
        Color space to draw from; defaults to ``{1, ..., 2Δ-1}`` of the
        *new* graph (which always suffices).

    Returns
    -------
    SolveResult
        Result whose ``coloring`` covers every edge of ``graph``; the
        rounds account only for the residual instance (the point of
        incremental recoloring).

    Raises
    ------
    InvalidInstanceError
        If ``existing`` is not proper on ``graph``, or the supplied
        palette cannot feasibly extend it.
    """
    validate_simple_graph(graph)
    existing = {edge_key(u, v): color for (u, v), color in existing.items()}
    for edge in existing:
        if not graph.has_edge(*edge):
            raise InvalidInstanceError(
                f"existing coloring mentions a non-edge {edge!r}"
            )
    check_proper_edge_coloring(graph, existing, require_total=False)

    if palette is None:
        delta = max_degree(graph)
        palette = Palette.of_size(max(1, 2 * delta - 1))
    missing_palette = [c for c in existing.values() if c not in palette]
    if missing_palette:
        raise InvalidInstanceError(
            f"existing colors outside the palette, e.g. {missing_palette[:3]!r}"
        )

    adjacency = line_graph_adjacency(graph)
    pending = [edge for edge in edge_set(graph) if edge not in existing]
    if not pending:
        return SolveResult(
            coloring=dict(existing),
            rounds=0,
            ledger=_empty_ledger(),
            initial_palette=0,
            policy_name="(nothing to do)",
        )

    # Residual lists: palette minus the colors held by colored
    # neighbors.  By the residual invariant these lists always hold at
    # least residual-degree + 1 colors when the palette is 2Δ-1.
    residual_lists: dict[Edge, frozenset[int]] = {}
    ambient = palette.as_set
    for edge in pending:
        blocked = {
            existing[n] for n in adjacency[edge] if n in existing
        }
        residual_lists[edge] = frozenset(ambient - blocked)

    sub = nx.Graph()
    for u, v in pending:
        sub.add_edge(u, v)
    instance = ListAssignment(residual_lists, palette)
    instance.validate_deg_plus_one(sub)

    result = solve_list_edge_coloring(sub, instance, policy=policy, seed=seed)

    combined = dict(existing)
    combined.update(result.coloring)
    check_proper_edge_coloring(graph, combined)
    return SolveResult(
        coloring=combined,
        rounds=result.rounds,
        ledger=result.ledger,
        initial_palette=result.initial_palette,
        policy_name=result.policy_name,
        stats=result.stats,
    )


def insert_edges(
    graph: nx.Graph,
    existing: Mapping[Edge, int],
    new_edges: Iterable[tuple],
    *,
    policy: ParameterPolicy | None = None,
    seed: int | None = None,
) -> tuple[nx.Graph, SolveResult]:
    """Add ``new_edges`` to ``graph`` and extend the coloring over them.

    Convenience wrapper for the dynamic-update workflow; returns the
    updated graph and the extension result.  Colors of old edges are
    guaranteed unchanged (asserted).
    """
    updated = graph.copy()
    for u, v in new_edges:
        if u == v:
            raise InvalidInstanceError(f"self-loop insertion ({u!r}, {v!r})")
        updated.add_edge(u, v)
    result = extend_coloring(updated, existing, policy=policy, seed=seed)
    for edge, color in existing.items():
        if result.coloring[edge_key(*edge)] != color:
            raise InvalidInstanceError(  # pragma: no cover — by construction
                f"extension modified the existing color of {edge!r}"
            )
    return updated, result


def _empty_ledger():
    from repro.core.ledger import RoundLedger

    return RoundLedger()
