"""Round accounting with sequential and parallel composition.

The paper charges rounds exactly the way a ledger tree composes:
sequential stages add (``T = T_1 + T_2``), independent sub-instances
solved "in parallel by the same algorithm" take the maximum
(``T = max_i T_i``), and primitive subroutines contribute their
measured simulated rounds.  :class:`RoundLedger` records that tree so
benchmarks can report both the total and the per-lemma breakdown, and
carries named counters for structural statistics (recursion depth,
fallback engagements, deferred edges, ...).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class LedgerEntry:
    """One node of the accounting tree."""

    label: str
    mode: str  # "seq", "par", or "leaf"
    rounds: int = 0  # only meaningful for leaves
    children: list["LedgerEntry"] = field(default_factory=list)

    def total(self) -> int:
        """Total rounds of the subtree under this entry."""
        if self.mode == "leaf":
            return self.rounds
        child_totals = [child.total() for child in self.children]
        if self.mode == "par":
            return max(child_totals, default=0)
        return sum(child_totals)

    def render(self, indent: int = 0, max_depth: int | None = None) -> list[str]:
        """Pretty-print the subtree as indented lines."""
        marker = {"seq": "+", "par": "|", "leaf": "."}[self.mode]
        lines = [f"{'  ' * indent}{marker} {self.label}: {self.total()}"]
        if max_depth is not None and indent >= max_depth:
            return lines
        for child in self.children:
            lines.extend(child.render(indent + 1, max_depth))
        return lines


class RoundLedger:
    """A mutable accounting tree with a cursor.

    Usage::

        ledger = RoundLedger()
        ledger.charge("initial coloring", 5)
        with ledger.sequential("Lemma 4.2"):
            ledger.charge("defective coloring", 7)
            with ledger.parallel("subspaces"):
                with ledger.sequential("subspace 0"):
                    ledger.charge("greedy", 3)
                with ledger.sequential("subspace 1"):
                    ledger.charge("greedy", 9)
        ledger.total_rounds()   # 5 + (7 + max(3, 9)) = 21
    """

    def __init__(self, label: str = "total") -> None:
        self._root = LedgerEntry(label=label, mode="seq")
        self._stack: list[LedgerEntry] = [self._root]
        self._counters: dict[str, int] = {}

    # -- round charges -------------------------------------------------

    def charge(self, label: str, rounds: int) -> None:
        """Record ``rounds`` for a primitive step at the cursor."""
        if rounds < 0:
            raise ValueError(f"cannot charge negative rounds ({rounds})")
        self._stack[-1].children.append(
            LedgerEntry(label=label, mode="leaf", rounds=rounds)
        )

    @contextmanager
    def sequential(self, label: str) -> Iterator[None]:
        """Open a child whose sub-charges add up."""
        entry = LedgerEntry(label=label, mode="seq")
        self._stack[-1].children.append(entry)
        self._stack.append(entry)
        try:
            yield
        finally:
            self._stack.pop()

    @contextmanager
    def parallel(self, label: str) -> Iterator[None]:
        """Open a child whose sub-charges take the maximum.

        Direct :meth:`charge` calls inside a parallel block are treated
        as independent branches (each leaf is a child).
        """
        entry = LedgerEntry(label=label, mode="par")
        self._stack[-1].children.append(entry)
        self._stack.append(entry)
        try:
            yield
        finally:
            self._stack.pop()

    # -- counters --------------------------------------------------------

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a named structural counter."""
        self._counters[counter] = self._counters.get(counter, 0) + amount

    def record_max(self, counter: str, value: int) -> None:
        """Keep the maximum of ``value`` seen under ``counter``."""
        self._counters[counter] = max(self._counters.get(counter, 0), value)

    def counter(self, name: str) -> int:
        """Return the value of a counter (0 if never bumped)."""
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, int]:
        """Return a copy of all counters."""
        return dict(self._counters)

    # -- reporting -------------------------------------------------------

    def total_rounds(self) -> int:
        """Total rounds of the whole execution."""
        return self._root.total()

    def breakdown(self, max_depth: int | None = 3) -> str:
        """Return a human-readable tree of charges."""
        return "\n".join(self._root.render(0, max_depth))

    @property
    def root(self) -> LedgerEntry:
        """The root entry (read access for tests and analysis)."""
        return self._root
