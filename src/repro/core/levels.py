"""Lemma 4.4: harmonic-bound subspace candidates and edge levels.

Given a partition of the color space into ``q`` subspaces
``C_1, ..., C_q``, Lemma 4.4 guarantees for every list ``L`` an integer
``k`` and ``k`` indices whose subspaces each intersect ``L`` in at
least ``|L| / (k * H_q)`` colors.  The algorithm of Lemma 4.3 uses the
dyadic form: the *level* ``ℓ(e)`` of an edge is an integer such that at
least ``2^{ℓ(e)}`` subspaces satisfy

    ``|L_e ∩ C_i|  >=  |L_e| / (2^{ℓ(e)+1} * H_q)``.

We compute the *largest* such level (more candidate subspaces means
more scheduling freedom in the phases), which exists for every
non-empty list by the lemma.  The paper's Figure 5 instance
(``C = 20``, ``p = 4``, ``|L_e| = 7`` giving ``I = {1, 2}``) is
reproduced as a test and a benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import AlgorithmInvariantError, InvalidInstanceError
from repro.coloring.palette import Palette
from repro.utils.harmonic import harmonic_number
from repro.utils.logstar import ilog2


@dataclass(frozen=True)
class LevelAssignment:
    """The level of one edge and its candidate subspaces.

    Attributes
    ----------
    level:
        The largest valid level ``ℓ`` (``0 <= ℓ <= floor(log2 q)``).
    candidates:
        Indices ``i`` (0-based) with
        ``|L ∩ C_i| >= |L| / (2^{ℓ+1} H_q)``; at least ``2^ℓ`` of them.
    intersections:
        ``|L ∩ C_i|`` for every subspace, for downstream tie-breaking
        (assign the largest intersection when unconstrained).
    """

    level: int
    candidates: tuple[int, ...]
    intersections: tuple[int, ...]

    def best_candidate(self) -> int:
        """Return the candidate index with the largest intersection."""
        return max(self.candidates, key=lambda i: (self.intersections[i], -i))


def lemma_44_index_set(intersections: Sequence[int]) -> tuple[int, list[int]]:
    """Return the Lemma 4.4 pair ``(k, I)`` for given intersection sizes.

    This is the literal statement of the lemma: the indices are sorted
    by decreasing intersection and ``k`` is chosen so that the top
    ``k`` subspaces each meet the bound ``|L| / (k * H_p)``.  Exposed
    separately from :func:`compute_level` so tests can validate the
    lemma exactly as stated (including on the paper's Figure 5
    instance).

    Returns
    -------
    (k, I):
        ``k >= 1`` and the 0-based index list ``I`` with ``|I| = k``.
    """
    p = len(intersections)
    if p < 1:
        raise InvalidInstanceError("need at least one subspace")
    total = sum(intersections)
    if total == 0:
        raise InvalidInstanceError("the list is empty; no index set exists")
    h_p = harmonic_number(p)
    order = sorted(range(p), key=lambda i: (-intersections[i], i))
    for k in range(1, p + 1):
        threshold = total / (k * h_p)
        if intersections[order[k - 1]] >= threshold:
            return k, order[:k]
    raise AlgorithmInvariantError(
        "Lemma 4.4 violated — impossible for correct inputs "
        f"(intersections={list(intersections)!r})"
    )


def compute_level(
    list_colors: frozenset[int], subspaces: Sequence[Palette]
) -> LevelAssignment:
    """Return the largest valid level of a list against a partition.

    Raises
    ------
    InvalidInstanceError
        If the list is empty or no subspace intersects it (both mean
        the edge cannot participate in the reduction and must be
        handled by the caller's fallback).
    """
    if not list_colors:
        raise InvalidInstanceError("cannot compute the level of an empty list")
    q = len(subspaces)
    if q < 1:
        raise InvalidInstanceError("need at least one subspace")
    intersections = tuple(
        len(list_colors & subspace.as_set) for subspace in subspaces
    )
    covered = sum(intersections)
    if covered != len(list_colors):
        raise InvalidInstanceError(
            "subspaces do not partition the list's colors "
            f"({covered} covered of {len(list_colors)})"
        )
    h_q = harmonic_number(q)
    size = len(list_colors)
    for level in range(ilog2(q), -1, -1):
        threshold = size / (2 ** (level + 1) * h_q)
        candidates = tuple(
            i for i, inter in enumerate(intersections) if inter >= threshold
        )
        if len(candidates) >= 2**level:
            return LevelAssignment(
                level=level, candidates=candidates, intersections=intersections
            )
    raise AlgorithmInvariantError(
        "no valid level found — contradicts Lemma 4.4 "
        f"(size={size}, intersections={intersections!r})"
    )
