"""Theorem 4.1: the full recursive list edge coloring algorithm.

Public entry points:

* :func:`solve_list_edge_coloring` — solve a ``(deg(e)+1)``-list edge
  coloring instance in quasi-polylog-in-Δ̄ rounds (plus ``O(log* n)``);
* :func:`solve_edge_coloring` — the classic ``(2Δ-1)``-edge coloring
  as the special case with uniform lists.

Execution pipeline (Section 4.3):

1. compute an initial ``O(Δ̄²)``-edge coloring with Linial on the line
   graph, in ``O(log* n)`` simulated rounds;
2. run :meth:`RecursiveSolver._solve_slack1` — Lemma 4.2: reduce the
   slack-1 instance to slack-β instances via defective colorings,
   iterating while ``Δ̄`` halves;
3. each slack-β instance goes through
   :meth:`RecursiveSolver._solve_relaxed` — Lemma 4.3/4.5: split the
   color space by ``p = √Δ̄`` and recurse per subspace in parallel;
   the subspace-index assignment itself is a small ``(deg+1)``-list
   instance on a virtual graph, solved by a recursive sub-solver (the
   ``T(2p-1, 1, 2p)`` term);
4. constant-degree / constant-palette instances hit the base case:
   Linial down to ``O(Δ̄²)`` classes, optionally Kuhn-Wattenhofer down
   to ``Δ̄+1`` classes, then a greedy class sweep.

Robustness: the asymptotic guarantees (list sizes vs degrees) are
checked at runtime; any edge that falls outside them is *deferred* and
finished by the final cleanup from its full residual list — which is
always feasible by the residual invariant.  Deferral counts are
reported in the result so experiments can see how often the theory
path vs. the fallback engaged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import networkx as nx

from repro.errors import AlgorithmInvariantError, InvalidInstanceError
from repro.coloring.edge_coloring import PartialEdgeColoring
from repro.coloring.lists import ListAssignment, uniform_lists
from repro.coloring.palette import Palette
from repro.coloring.verify import check_list_edge_coloring
from repro.core.ledger import RoundLedger
from repro.core.params import ParameterPolicy, scaled_policy
from repro.core.slack_reduction import SlackLoopStats, select_active_edges
from repro.core.space_reduction import reduce_color_space
from repro.graphs.edges import Edge, edge_set
from repro.graphs.line_graph import line_graph_adjacency
from repro.graphs.properties import assign_unique_ids, max_degree
from repro.model.edge_network import edge_identifier
from repro.primitives.color_reduction import kuhn_wattenhofer_reduction
from repro.primitives.defective import defective_edge_coloring
from repro.primitives.linial import linial_reduce
from repro.results import RunResult


@dataclass
class SolveResult(RunResult):
    """Outcome of one paper-solver run, with full accounting.

    A :class:`repro.results.RunResult` specialisation kept as a named
    class so existing ``from repro.core.solver import SolveResult``
    imports (and isinstance checks) continue to work.  The solver
    always populates ``coloring``, ``rounds``, ``ledger``,
    ``initial_palette``, ``policy_name``, ``palette_size`` and
    ``stats``; see the base class for field semantics.
    """


class RecursiveSolver:
    """One solver instance bound to one (sub-)problem.

    Auxiliary subspace-index assignments spawn child solvers that share
    the policy and the ledger but own their instance's graph and
    master coloring.
    """

    def __init__(
        self,
        graph: nx.Graph,
        lists: ListAssignment,
        initial_coloring: Mapping[Edge, int],
        policy: ParameterPolicy,
        ledger: RoundLedger,
        *,
        depth: int = 0,
    ) -> None:
        self.graph = graph
        self.lists = lists
        self.master = PartialEdgeColoring(graph, lists)
        self.adjacency = line_graph_adjacency(graph)
        self.initial = dict(initial_coloring)
        self.policy = policy
        self.ledger = ledger
        self.depth = depth
        self.slack_stats = SlackLoopStats()
        missing = [e for e in self.adjacency if e not in self.initial]
        if missing:
            raise InvalidInstanceError(
                f"edges without an initial color: {missing[:3]!r}"
            )

    # ------------------------------------------------------------------
    # Instance measurements
    # ------------------------------------------------------------------

    def _uncolored(self, edges: Sequence[Edge]) -> list[Edge]:
        return [e for e in edges if not self.master.is_colored(e)]

    def _induced_degrees(
        self, edges: Sequence[Edge]
    ) -> tuple[dict[Edge, list[Edge]], dict[Edge, int]]:
        """Line-graph adjacency and degrees induced by ``edges``."""
        chosen = set(edges)
        adjacency = {
            edge: [n for n in self.adjacency[edge] if n in chosen]
            for edge in edges
        }
        degrees = {edge: len(neighbors) for edge, neighbors in adjacency.items()}
        return adjacency, degrees

    def _effective_list(
        self, edge: Edge, work_lists: Mapping[Edge, frozenset[int]]
    ) -> frozenset[int]:
        """Colors usable right now: narrowed list minus neighbor-used."""
        return work_lists[edge] & self.master.residual_list(edge)

    # ------------------------------------------------------------------
    # Base case: Linial + (optional KW) + greedy class sweep
    # ------------------------------------------------------------------

    def _base_case(
        self,
        edges: Sequence[Edge],
        work_lists: Mapping[Edge, frozenset[int]],
        reason: str,
    ) -> None:
        """Color ``edges`` by a class sweep; defer infeasible edges.

        Cost: ``O(log* X)`` (Linial from the ambient X-coloring) plus
        ``O(Δ̄ log Δ̄)`` (optional KW compression) plus one round per
        class — the paper's ``O(log* X)`` base case for constant Δ̄.
        """
        current = self._uncolored(edges)
        if not current:
            return
        self.ledger.bump(f"base_case/{reason}")
        adjacency, degrees = self._induced_degrees(current)
        dbar = max(degrees.values(), default=0)

        seed = {edge: self.initial[edge] for edge in current}
        linial = linial_reduce(adjacency, seed)
        classes = linial.colors
        class_count = linial.palette_size
        rounds = linial.rounds

        if (
            self.policy.use_kw_in_base
            and dbar >= 1
            and class_count > 2 * (dbar + 2)
        ):
            reduction = kuhn_wattenhofer_reduction(adjacency, classes)
            classes = reduction.colors
            class_count = reduction.palette_size
            rounds += reduction.rounds

        with self.ledger.sequential(f"base case [{reason}]"):
            self.ledger.charge("class-count reduction", rounds)
            by_class: dict[int, list[Edge]] = {}
            for edge in current:
                by_class.setdefault(classes[edge], []).append(edge)
            for class_value in range(class_count):
                for edge in by_class.get(class_value, []):
                    effective = self._effective_list(edge, work_lists)
                    if effective:
                        self.master.assign(edge, min(effective))
                    else:
                        self.ledger.bump("deferred_edges")
            self.ledger.charge("greedy class sweep", class_count)

    # ------------------------------------------------------------------
    # Lemma 4.2: slack-1 -> slack-β via defective colorings
    # ------------------------------------------------------------------

    def _solve_slack1(
        self,
        edges: Sequence[Edge],
        work_lists: Mapping[Edge, frozenset[int]],
        palette: Palette,
        depth: int,
    ) -> None:
        """Solve a slack-1 instance (Lemma 4.2's driving loop)."""
        current = self._uncolored(edges)
        if not current:
            return
        _adjacency, degrees = self._induced_degrees(current)
        dbar = max(degrees.values(), default=0)
        iteration_cap = 2 * math.ceil(math.log2(dbar + 2)) + 4

        for _iteration in range(iteration_cap):
            current = self._uncolored(current)
            if not current:
                return
            _adjacency, degrees = self._induced_degrees(current)
            dbar = max(degrees.values(), default=0)
            if (
                dbar <= self.policy.base_degree_threshold
                or len(palette) <= self.policy.base_palette_threshold
                or depth >= self.policy.max_depth
            ):
                self._base_case(current, work_lists, "slack1 bottom")
                return

            beta = self.policy.beta(dbar, len(palette))
            self.slack_stats.dbar_trajectory.append(dbar)
            self.slack_stats.betas.append(beta)
            self.ledger.bump("lem42/iterations")
            self.ledger.record_max("max_depth_seen", depth)

            subgraph = nx.Graph()
            subgraph.add_edges_from(current)
            seed = {edge: self.initial[edge] for edge in current}
            defective = defective_edge_coloring(subgraph, beta, seed)
            self.ledger.charge(
                f"Lemma 4.2 defective coloring (β={beta})", defective.rounds
            )

            by_class: dict[int, list[Edge]] = {}
            for edge in current:
                by_class.setdefault(defective.colors[edge], []).append(edge)

            inactive_total = 0
            idle_classes = 0
            with self.ledger.sequential(
                f"Lemma 4.2 classes (β={beta}, Δ̄={dbar})"
            ):
                for class_value in range(defective.color_count):
                    members = self._uncolored(by_class.get(class_value, []))
                    selection = select_active_edges(
                        members,
                        lambda e: len(self._effective_list(e, work_lists)),
                        degrees,
                    )
                    inactive_total += len(selection.inactive)
                    if not selection.active:
                        # Empty / all-inactive classes still cost one
                        # lockstep round each; batched into one leaf to
                        # keep the ledger readable.
                        idle_classes += 1
                        continue
                    self.slack_stats.relaxed_invocations += 1
                    with self.ledger.sequential(f"class {class_value}"):
                        self.ledger.charge("activity check", 1)
                        self._solve_relaxed(
                            list(selection.active),
                            work_lists,
                            palette,
                            beta,
                            depth + 1,
                        )
                if idle_classes:
                    self.ledger.charge(
                        f"{idle_classes} idle classes (lockstep rounds)",
                        idle_classes,
                    )
            self.slack_stats.inactive_edges.append(inactive_total)

            remaining = self._uncolored(current)
            if not remaining:
                return
            _adjacency, new_degrees = self._induced_degrees(remaining)
            new_dbar = max(new_degrees.values(), default=0)
            if new_dbar >= dbar and len(remaining) >= len(current):
                # No progress: the theory regime did not engage; finish
                # deterministically rather than looping.
                self.ledger.bump("lem42/no_progress_fallbacks")
                self._base_case(remaining, work_lists, "slack1 no-progress")
                return
            current = remaining

        self._base_case(
            self._uncolored(current), work_lists, "slack1 iteration cap"
        )

    # ------------------------------------------------------------------
    # Lemma 4.3 / 4.5: relaxed instances via color space reduction
    # ------------------------------------------------------------------

    def _solve_relaxed(
        self,
        edges: Sequence[Edge],
        work_lists: Mapping[Edge, frozenset[int]],
        palette: Palette,
        slack_beta: int,
        depth: int,
    ) -> None:
        """Solve a relaxed (slack > 1) instance by splitting the palette."""
        current = self._uncolored(edges)
        if not current:
            return
        adjacency, degrees = self._induced_degrees(current)
        dbar = max(degrees.values(), default=0)
        if (
            dbar <= self.policy.base_degree_threshold
            or len(palette) <= self.policy.base_palette_threshold
            or depth >= self.policy.max_depth
        ):
            self._base_case(current, work_lists, "relaxed bottom")
            return

        p = self.policy.split(dbar, len(palette))
        if p < 2 or p > len(palette) // 2:
            self._base_case(current, work_lists, "relaxed p infeasible")
            return

        effective = {
            edge: self._effective_list(edge, work_lists) for edge in current
        }
        self.ledger.bump("lem43/reductions")
        self.ledger.record_max("max_depth_seen", depth)

        def solve_index_instance(
            instance_graph: nx.Graph,
            instance_lists: ListAssignment,
            instance_initial: Mapping[Edge, int],
            tag: str,
        ) -> dict[Edge, int]:
            with self.ledger.sequential(f"Lemma 4.3 {tag}"):
                self.ledger.charge("menu computation", 1)
                child = RecursiveSolver(
                    instance_graph,
                    instance_lists,
                    instance_initial,
                    self.policy,
                    self.ledger,
                    depth=depth + 1,
                )
                chosen = child.solve_internal(depth=depth + 1)
                if len(chosen) != instance_graph.number_of_edges():
                    raise AlgorithmInvariantError(
                        f"index instance '{tag}' left edges unassigned"
                    )
                self._merge_child_stats(child)
                return chosen

        outcome = reduce_color_space(
            current,
            effective,
            palette,
            p,
            adjacency,
            degrees,
            self.initial,
            solve_index_instance,
        )
        self.ledger.bump("lem43/deferred", len(outcome.deferred))
        self.ledger.bump("lem43/eq2_violations", outcome.eq2_violations)

        with self.ledger.parallel(f"Lemma 4.3 subspaces (p={p})"):
            for index, subspace in enumerate(outcome.subspaces):
                sub_edges = [
                    edge
                    for edge in current
                    if outcome.assignment.get(edge) == index
                ]
                if not sub_edges:
                    continue
                narrowed = {
                    edge: work_lists[edge] & subspace.as_set
                    for edge in sub_edges
                }
                with self.ledger.sequential(f"subspace {index}"):
                    self._solve_relaxed(
                        sub_edges, narrowed, subspace, slack_beta, depth + 1
                    )

        # Deferred edges (and any sub-instance leftovers) are finished
        # from the *wide* lists of this invocation — still a valid step
        # because narrowing only ever shrank the allowed sets.
        remaining = self._uncolored(current)
        if remaining:
            self._base_case(remaining, work_lists, "relaxed leftovers")

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def solve_internal(self, depth: int | None = None) -> dict[Edge, int]:
        """Solve this solver's whole instance; returns edge -> color."""
        start_depth = self.depth if depth is None else depth
        all_edges = edge_set(self.graph)
        work_lists = {edge: self.lists.list_of(edge) for edge in all_edges}
        self._solve_slack1(all_edges, work_lists, self.lists.palette, start_depth)

        # Final cleanup: anything deferred is colored from full residual
        # lists — always feasible by the residual invariant.
        for _attempt in range(len(all_edges) + 1):
            remaining = self.master.uncolored_edges()
            if not remaining:
                break
            before = len(remaining)
            self._base_case(remaining, work_lists, "final cleanup")
            if len(self.master.uncolored_edges()) >= before:
                raise AlgorithmInvariantError(
                    "final cleanup failed to make progress; "
                    "the instance was not (deg+1)-feasible"
                )
        return self.master.as_dict()

    def _merge_child_stats(self, child: "RecursiveSolver") -> None:
        self.slack_stats.relaxed_invocations += child.slack_stats.relaxed_invocations


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


def compute_initial_edge_coloring(
    graph: nx.Graph,
    *,
    seed: int | None = None,
    ledger: RoundLedger | None = None,
) -> tuple[dict[Edge, int], int, int]:
    """Compute the initial ``O(Δ̄²)``-edge coloring (Section 4.3, step 1).

    Runs the Linial reduction on the line graph, seeded by edge IDs
    derived from node IDs.  Returns ``(coloring, palette_size, rounds)``
    and charges the rounds to ``ledger`` if given.  Round count is
    ``O(log* n)``.
    """
    ids = assign_unique_ids(graph, seed=seed)
    max_id = max(ids.values(), default=0)
    adjacency = line_graph_adjacency(graph)
    edge_ids = {
        edge: edge_identifier(edge, ids, max_id) for edge in adjacency
    }
    result = linial_reduce(adjacency, edge_ids)
    if ledger is not None:
        ledger.charge("initial Linial edge coloring (O(log* n))", result.rounds)
    return result.colors, result.palette_size, result.rounds


def solve_list_edge_coloring(
    graph: nx.Graph,
    lists: ListAssignment,
    *,
    policy: ParameterPolicy | None = None,
    seed: int | None = None,
    initial_coloring: Mapping[Edge, int] | None = None,
    initial_palette: int | None = None,
) -> SolveResult:
    """Solve a ``(deg(e)+1)``-list edge coloring instance (Theorem 4.1).

    Parameters
    ----------
    graph:
        A simple graph.
    lists:
        Lists with ``|L_e| >= deg(e) + 1`` for every edge (validated).
    policy:
        Parameter policy; defaults to :func:`scaled_policy`.
    seed:
        Seed for the adversarial ID assignment (``None`` = sorted IDs).
    initial_coloring / initial_palette:
        Optionally supply a precomputed proper edge coloring to skip
        the Linial stage (used by benchmarks that sweep policies on a
        fixed instance).

    Returns
    -------
    SolveResult
        With a coloring already validated against the instance.
    """
    lists.validate_deg_plus_one(graph)
    if policy is None:
        policy = scaled_policy()
    ledger = RoundLedger()

    if initial_coloring is None:
        initial_coloring, initial_palette, _rounds = compute_initial_edge_coloring(
            graph, seed=seed, ledger=ledger
        )
    elif initial_palette is None:
        initial_palette = (
            max(initial_coloring.values()) + 1 if initial_coloring else 0
        )

    solver = RecursiveSolver(
        graph, lists, initial_coloring, policy, ledger, depth=0
    )
    coloring = solver.solve_internal()
    check_list_edge_coloring(graph, lists, coloring)

    stats: dict[str, object] = dict(ledger.counters())
    stats["dbar_trajectory"] = list(solver.slack_stats.dbar_trajectory)
    stats["betas"] = list(solver.slack_stats.betas)
    stats["relaxed_invocations"] = solver.slack_stats.relaxed_invocations
    return SolveResult(
        name="bko20",
        coloring=coloring,
        rounds=ledger.total_rounds(),
        ledger=ledger,
        initial_palette=initial_palette or 0,
        palette_size=len(lists.palette),
        policy_name=policy.name,
        stats=stats,
    )


def solve_edge_coloring(
    graph: nx.Graph,
    *,
    policy: ParameterPolicy | None = None,
    seed: int | None = None,
) -> SolveResult:
    """Solve the classic ``(2Δ - 1)``-edge coloring problem.

    The corollary of Theorem 4.1: run the list solver with every edge
    holding the full ``{1, ..., 2Δ-1}`` palette.
    """
    delta = max_degree(graph)
    palette = Palette.of_size(max(1, 2 * delta - 1))
    lists = uniform_lists(graph, palette)
    return solve_list_edge_coloring(graph, lists, policy=policy, seed=seed)
